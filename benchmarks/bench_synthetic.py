"""E12 — synthetic-traffic workloads: generation cost and saturation.

Two properties worth tracking: (1) generating a parametric workload is
cheap — the generator must never dominate the simulations it feeds; and
(2) the load-vs-latency curve on a contended fabric saturates the way
queueing theory says it should: flat under light load, sharply rising
near capacity, with realised load tracking offered load until the knee.
"""

import pytest

from benchmarks.conftest import REPORT_LINES
from repro.apps.synthetic import TrafficSpec, generate_programs, synthetic_flow

N_CORES = 4
LOADS = [0.1, 0.3, 0.5, 0.7, 0.9]


@pytest.mark.benchmark(group="synthetic")
def test_generation_throughput(benchmark):
    spec = TrafficSpec(n_cores=N_CORES, pattern="uniform", load=0.5,
                       transactions=500, seed=7)
    programs = benchmark(generate_programs, spec)
    instructions = sum(len(p) for p in programs.values())
    REPORT_LINES.append(
        f"[synthetic] generated {instructions} instructions for "
        f"{N_CORES} cores x 500 transactions")


@pytest.mark.benchmark(group="synthetic")
def test_saturation_curve(benchmark):
    def sweep():
        rows = []
        for load in LOADS:
            spec = TrafficSpec(n_cores=N_CORES, pattern="uniform",
                               load=load, transactions=100, seed=7)
            rows.append(synthetic_flow(spec, "tlm"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    latencies = [r.latency_avg for r in rows]
    # light-load latency must not exceed heavy-load latency: the curve
    # may only saturate, never improve under pressure
    assert latencies[0] <= latencies[-1] + 1e-9
    REPORT_LINES.append(
        "[synthetic] uniform/tlm saturation: " + ", ".join(
            f"{r.offered_load:.1f}->{r.latency_avg:.1f}" for r in rows))
