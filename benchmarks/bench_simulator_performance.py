"""Simulator-performance microbenchmarks (not a paper experiment).

Tracks the raw speed of the layers everything else is built on, so
regressions in the kernel or the bus model show up in benchmark history:

* event throughput of the bare kernel;
* process context-switch rate;
* watchdog-churn (schedule+cancel per transaction) and notify-storm
  kernel workloads — the standalone profile in ``kernel_perf.py`` runs
  the same factories and writes ``BENCH_kernel.json`` for the CI gate;
* AHB transactions per second under contention;
* armlet instructions per second.
"""

import pytest

from benchmarks.kernel_perf import wl_notify_storm, wl_watchdog_churn
from repro.kernel import Simulator
from repro.platform import MparmPlatform, PlatformConfig


@pytest.mark.benchmark(group="simulator-performance")
def test_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = 20_000

        def chain():
            for _ in range(count):
                yield 1

        sim.spawn(chain())
        sim.run()
        return sim.events_fired

    events = benchmark(run_events)
    assert events >= 20_000


@pytest.mark.benchmark(group="simulator-performance")
def test_signal_notify_throughput(benchmark):
    def run_signals():
        sim = Simulator()
        sig = sim.signal()
        rounds = 5_000

        def waiter():
            for _ in range(rounds):
                yield sig

        def notifier():
            for _ in range(rounds):
                yield 1
                sig.notify()

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        return sim.now

    benchmark(run_signals)


@pytest.mark.benchmark(group="simulator-performance")
def test_watchdog_churn_throughput(benchmark):
    """The PR-1 resilience pattern: a guard event per transaction,
    cancelled on response.  Tombstone compaction keeps the heap near its
    live size; this tracks that the pattern stays cheap."""
    def run_churn():
        sim = wl_watchdog_churn(transactions=8_000)
        return sim

    sim = benchmark(run_churn)
    assert sim.events_cancelled == 8_000
    assert sim.heap_compactions >= 1


@pytest.mark.benchmark(group="simulator-performance")
def test_notify_storm_throughput(benchmark):
    """A popular signal notified every cycle with many waiters."""
    def run_storm():
        sim = wl_notify_storm(rounds=2_000, waiters=32)
        return sim.events_fired

    events = benchmark(run_storm)
    assert events > 60_000


@pytest.mark.benchmark(group="simulator-performance")
def test_ahb_transaction_rate(benchmark):
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                           / "tests"))
    from helpers import MEM_BASE, TinySystem

    def run_bus():
        system = TinySystem("ahb", masters=4)

        def hammer(port, base):
            for i in range(250):
                yield from port.write(base + (i % 64) * 4, i)

        for master_id, port in enumerate(system.ports):
            system.sim.spawn(hammer(port, MEM_BASE + master_id * 0x400))
        system.run()
        return system.fabric.stats.transactions

    transactions = benchmark(run_bus)
    assert transactions == 1000


@pytest.mark.benchmark(group="simulator-performance")
def test_armlet_instruction_rate(benchmark):
    from repro.apps import cacheloop

    def run_core():
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        core = platform.add_core(cacheloop.source(0, 1, iters=2_000))
        platform.run()
        return core.cpu.instructions_executed

    instructions = benchmark(run_core)
    assert instructions > 10_000
