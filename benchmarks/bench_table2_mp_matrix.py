"""E5 — Table 2, MP matrix block: contention-heavy accuracy and speedup.

Paper rows: 2P-12P, error 0.00%-1.52% (worst around 8P, improving again as
the saturated bus dominates), gain 2.64x-3.20x shrinking at high counts.
We reproduce the error band and the congestion-driven gain shrink.
"""

import pytest

from repro.apps import mp_matrix
from benchmarks.common import record_row, table2_measurement
from repro.harness import build_tg_platform

import os

CORE_COUNTS = [2, 4, 6, 8, 10, 12]
#: REPRO_SCALE enlarges the matrices toward paper-scale runs (N = 8·k).
SCALE = int(os.environ.get("REPRO_SCALE", "1"))
N = 8 * SCALE


@pytest.mark.benchmark(group="table2-mp-matrix")
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_mp_matrix_row(benchmark, n_cores):
    measurement = table2_measurement(mp_matrix, n_cores, {"n": N})
    record_row(benchmark, "MP matrix", measurement)
    programs = measurement["programs"]

    def tg_run():
        platform = build_tg_platform(programs, n_cores)
        platform.run()
        return platform

    benchmark(tg_run)
    assert measurement["error"] < 0.05
    assert measurement["event_gain"] > 1.0
