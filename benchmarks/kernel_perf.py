"""Kernel perf profile: measure event-loop throughput, write BENCH_kernel.json.

Unlike the pytest-benchmark suite (``bench_simulator_performance.py``),
this is a plain script so CI can run it, archive the numbers, and fail on
regression against the committed baseline::

    python benchmarks/kernel_perf.py --quick --backend both --out BENCH_kernel.json
    python benchmarks/kernel_perf.py --quick --backend both \
        --check BENCH_kernel.json --gate-speedup 3.0

Workloads (all deterministic — same event sequence every run, and the
same under either backend):

* ``event_chain``      — one process sleeping 1 cycle at a time: the bare
  cost of schedule + dispatch + generator resume.
* ``watchdog_churn``   — the PR-1 resilient-TG pattern: every transaction
  schedules a watchdog guard and cancels it on response, so the queue
  fills with tombstones.  This is the workload lazy-deletion targets.
* ``notify_storm``     — a popular signal notified every cycle with many
  waiters: waiter bookkeeping and zero-delay scheduling (the calendar
  queue's batched same-cycle dispatch shines here).
* ``timeout_churn``    — processes blocking on ``timeout()`` signals that
  are notified early: the waiter-removal + event-cancel path.
* ``snapshot_churn``   — one quiescent warm-up capture, then repeated
  codec round-trip + cross-platform restore: the per-point cost of a
  warm-up-shared sweep (gated separately via ``BENCH_snapshot.json``).

``--workloads a,b`` restricts a run to a subset, so CI can gate the
snapshot path against its own committed baseline without re-measuring
the event-loop workloads.

``--backend both`` runs every workload under the classic heap engine and
the fast calendar-queue engine, records the ``speedup`` ratio per
workload, and verifies both engines fired identical event counts.

Regression checking is **machine-relative**: ``--check`` compares each
workload's fast/classic *speedup ratio* against the baseline's ratio and
fails when it shrinks by more than ``--max-regress``.  Absolute events/sec
are recorded and printed but never gated on — they vary machine to
machine, so a committed baseline from one host would spuriously fail (or
spuriously pass) on another.  ``--gate-speedup X`` additionally enforces
an absolute floor on the ratio for the gated workloads (``event_chain``,
``notify_storm``) — the fast backend's reason to exist.
"""

import argparse
import json
import platform as _platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kernel import KERNEL_BACKENDS, Simulator  # noqa: E402

#: Workloads whose fast/classic speedup --gate-speedup enforces.
GATED_WORKLOADS = ("event_chain", "notify_storm")


def _noop() -> None:
    pass


def wl_event_chain(n_events: int = 200_000,
                   backend: str = "classic") -> Simulator:
    sim = Simulator(backend=backend)

    def chain():
        for _ in range(n_events):
            yield 1

    sim.spawn(chain(), name="chain")
    sim.run()
    return sim


def wl_watchdog_churn(transactions: int = 40_000, watchdog: int = 1_000,
                      masters: int = 8,
                      backend: str = "classic") -> Simulator:
    """Schedule-then-cancel per transaction, as the resilient TG does."""
    sim = Simulator(backend=backend)
    per_master = transactions // masters

    def master():
        for _ in range(per_master):
            guard = sim.schedule_after(watchdog, _noop)
            yield 1                       # "response" arrives next cycle
            guard.cancel()
            yield 1

    for mid in range(masters):
        sim.spawn(master(), name=f"master{mid}")
    sim.run()
    return sim


def wl_notify_storm(rounds: int = 15_000, waiters: int = 32,
                    backend: str = "classic") -> Simulator:
    sim = Simulator(backend=backend)
    sig = sim.signal("storm")

    def waiter():
        for _ in range(rounds):
            yield sig

    def notifier():
        for _ in range(rounds):
            yield 1
            sig.notify()

    for wid in range(waiters):
        sim.spawn(waiter(), name=f"waiter{wid}")
    sim.spawn(notifier(), name="notifier")
    sim.run()
    return sim


def wl_timeout_churn(rounds: int = 15_000, deadline: int = 500,
                     backend: str = "classic") -> Simulator:
    """Waiters on cancellable timeouts that are always woken early."""
    from repro.kernel.simulator import timeout

    sim = Simulator(backend=backend)
    sig = sim.signal("early")

    def guarded_waiter():
        for _ in range(rounds):
            guard = timeout(sim, deadline)
            yield sig                     # woken before `guard` fires
            guard.cancel()

    def waker():
        for _ in range(rounds):
            yield 1
            sig.notify()

    sim.spawn(guarded_waiter(), name="guarded")
    sim.spawn(waker(), name="waker")
    sim.run()
    return sim


def wl_snapshot_churn(rounds: int = 40, warmup: int = 400,
                      backend: str = "classic") -> Simulator:
    """The warm-up-sharing hot path: restore N platforms from one snap.

    Captures one quiescent warm-up snapshot of a small synthetic
    workload, then repeatedly codec-round-trips it (the worker reads
    the ``.snap`` from disk) and fast-forwards a fresh platform from
    it — exactly what every point of a warm-up-shared sweep does.  The
    last restored platform is run to completion so the backends'
    events/cycles equality check still applies (restore overwrites the
    kernel counters with the captured values, so the totals are
    deterministic).
    """
    from repro.apps.synthetic import TrafficSpec, synthetic_programs
    from repro.artifacts.snap import dump_snap, load_snap_bytes
    from repro.harness.checkpoint import fast_forward, warmup_snapshot

    spec = TrafficSpec.from_dict({"n_cores": 2, "pattern": "uniform",
                                  "load": 0.4, "transactions": 30,
                                  "seed": 11})
    programs, _ = synthetic_programs(spec)
    overrides = {"backend": backend}
    payload = warmup_snapshot(programs, 2, warmup, "tlm", overrides)
    text = dump_snap(payload).encode("utf-8")
    platform = None
    for _ in range(rounds):
        restored = load_snap_bytes(text).value
        platform = fast_forward(restored, interconnect="tlm",
                                config_overrides=overrides)
    platform.run()
    return platform.sim


#: name -> (factory, {param overrides for --quick})
WORKLOADS = {
    "event_chain": (wl_event_chain, {"n_events": 60_000}),
    "watchdog_churn": (wl_watchdog_churn, {"transactions": 12_000}),
    "notify_storm": (wl_notify_storm, {"rounds": 4_000}),
    "timeout_churn": (wl_timeout_churn, {"rounds": 5_000}),
    "snapshot_churn": (wl_snapshot_churn, {"rounds": 12}),
}


def _kernel_counters(sim: Simulator) -> dict:
    getter = getattr(sim, "kernel_counters", None)
    if getter is not None:
        return getter()
    return {"events_fired": sim.events_fired}


def run_profile(quick: bool = False, repeats: int = 3,
                backends=("classic",), workloads=None) -> dict:
    results = {}
    selected = {name: WORKLOADS[name] for name in (workloads or WORKLOADS)}
    for name, (factory, quick_params) in selected.items():
        kwargs = quick_params if quick else {}
        per_backend = {}
        for backend in backends:
            best = float("inf")
            sim = None
            for _ in range(repeats):
                start = time.perf_counter()
                sim = factory(backend=backend, **kwargs)
                best = min(best, time.perf_counter() - start)
            per_backend[backend] = {
                "events": sim.events_fired,
                "sim_cycles": sim.now,
                "wall_s": round(best, 6),
                "events_per_sec": round(sim.events_fired / best, 1),
                "counters": _kernel_counters(sim),
            }
        row = {"backends": per_backend}
        if "classic" in per_backend and "fast" in per_backend:
            classic = per_backend["classic"]
            fast = per_backend["fast"]
            # the backends must simulate the *same* run before their
            # wall-clocks are comparable at all
            for field in ("events", "sim_cycles"):
                if classic[field] != fast[field]:
                    raise AssertionError(
                        f"{name}: backend divergence — classic {field} "
                        f"{classic[field]} != fast {field} {fast[field]}")
            row["speedup"] = round(
                fast["events_per_sec"] / classic["events_per_sec"], 3)
        results[name] = row
    return {
        "schema": 2,
        "profile": "quick" if quick else "full",
        "repeats": repeats,
        "backends": list(backends),
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "workloads": results,
    }


def check_regression(current: dict, baseline: dict,
                     max_regress: float) -> list:
    """Machine-relative regression check; returns failure strings.

    Compares the fast/classic speedup *ratio* per workload — a property
    of the code, not the host — so a baseline committed from one machine
    gates runs on any other.  Workloads without a ratio on either side
    (single-backend profiles, pre-schema-2 baselines) are skipped; the
    absolute events/sec numbers in the baseline are informational only.
    """
    failures = []
    base_wl = baseline.get("workloads", {})
    for name, row in current["workloads"].items():
        speedup = row.get("speedup")
        base_speedup = (base_wl.get(name) or {}).get("speedup")
        if speedup is None or base_speedup is None:
            continue
        if speedup < base_speedup * (1.0 - max_regress):
            failures.append(
                f"{name}: fast/classic speedup {speedup:.2f}x is "
                f"{1.0 - speedup / base_speedup:.0%} below baseline "
                f"{base_speedup:.2f}x (budget {max_regress:.0%})")
    return failures


def check_gate(current: dict, threshold: float) -> list:
    """Absolute speedup floor on the gated workloads."""
    failures = []
    for name in GATED_WORKLOADS:
        row = current["workloads"].get(name, {})
        speedup = row.get("speedup")
        if speedup is None:
            failures.append(
                f"{name}: no fast/classic speedup measured — run with "
                f"--backend both to gate")
        elif speedup < threshold:
            failures.append(
                f"{name}: fast backend is {speedup:.2f}x classic, "
                f"below the {threshold:.1f}x gate")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="kernel perf profile -> BENCH_kernel.json")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI smoke profile)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N wall time per workload")
    parser.add_argument("--backend", default="classic",
                        choices=sorted(KERNEL_BACKENDS) + ["both"],
                        help="kernel engine(s) to profile; 'both' also "
                             "records the per-workload speedup ratio")
    parser.add_argument("--out", metavar="FILE",
                        help="write the profile as JSON")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare the fast/classic speedup ratio "
                             "against a baseline JSON (machine-relative; "
                             "absolute ev/s is informational only)")
    parser.add_argument("--max-regress", type=float, default=0.30,
                        help="fail --check when a workload's speedup "
                             "ratio shrinks by more than this fraction "
                             "(default 0.30)")
    parser.add_argument("--gate-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the fast backend is at least "
                             "X times the classic one on "
                             + " and ".join(GATED_WORKLOADS))
    parser.add_argument("--workloads", metavar="LIST", default=None,
                        help="comma-separated subset of workloads to run "
                             "(default: all of "
                             + ",".join(WORKLOADS) + ")")
    args = parser.parse_args(argv)

    workloads = None
    if args.workloads is not None:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
        unknown = sorted(set(workloads) - set(WORKLOADS))
        if unknown:
            parser.error(f"unknown workload(s) {', '.join(unknown)}; "
                         f"choose from {', '.join(WORKLOADS)}")

    backends = ("classic", "fast") if args.backend == "both" \
        else (args.backend,)
    profile = run_profile(quick=args.quick, repeats=args.repeats,
                          backends=backends, workloads=workloads)
    width = max(len(name) for name in profile["workloads"])
    for name, row in profile["workloads"].items():
        for backend, stats in row["backends"].items():
            print(f"{name:<{width}}  {backend:<7}  "
                  f"{stats['events']:>9,} events  "
                  f"{stats['wall_s'] * 1000:8.1f} ms  "
                  f"{stats['events_per_sec']:>12,.0f} ev/s")
        speedup = row.get("speedup")
        if speedup is not None:
            print(f"{name:<{width}}  speedup  fast = {speedup:.2f}x classic")

    if args.out:
        Path(args.out).write_text(json.dumps(profile, indent=2) + "\n")
        print(f"profile written to {args.out}")

    status = 0
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check_regression(profile, baseline, args.max_regress)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"regression check OK against {args.check} "
                  f"(speedup-ratio budget {args.max_regress:.0%})")

    if args.gate_speedup is not None:
        failures = check_gate(profile, args.gate_speedup)
        if failures:
            for failure in failures:
                print(f"GATE {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"speedup gate OK: fast >= {args.gate_speedup:.1f}x "
                  f"classic on {', '.join(GATED_WORKLOADS)}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
