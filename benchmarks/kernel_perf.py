"""Kernel perf profile: measure event-loop throughput, write BENCH_kernel.json.

Unlike the pytest-benchmark suite (``bench_simulator_performance.py``),
this is a plain script so CI can run it, archive the numbers, and fail on
gross regression against the committed baseline::

    python benchmarks/kernel_perf.py --quick --out BENCH_kernel.json
    python benchmarks/kernel_perf.py --quick --check BENCH_kernel.json

Workloads (all deterministic — same event sequence every run):

* ``event_chain``      — one process sleeping 1 cycle at a time: the bare
  cost of schedule + heappop + generator resume.
* ``watchdog_churn``   — the PR-1 resilient-TG pattern: every transaction
  schedules a watchdog guard and cancels it on response, so the heap fills
  with tombstones.  This is the workload tombstone compaction targets.
* ``notify_storm``     — a popular signal notified every cycle with many
  waiters: waiter bookkeeping and zero-delay scheduling.
* ``timeout_churn``    — processes blocking on ``timeout()`` signals that
  are notified early: the waiter-removal + event-cancel path.

The regression check compares events/sec per workload and fails when any
drops by more than ``--max-regress`` (default 30%).  Wall-clock numbers
are machine-dependent; compare runs from the same machine (CI runners are
close enough for the 30% gate — the tombstone regressions this guards
against are 2x-class, not 10%-class).
"""

import argparse
import json
import platform as _platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kernel import Simulator  # noqa: E402


def _noop() -> None:
    pass


def wl_event_chain(n_events: int = 200_000) -> Simulator:
    sim = Simulator()

    def chain():
        for _ in range(n_events):
            yield 1

    sim.spawn(chain(), name="chain")
    sim.run()
    return sim


def wl_watchdog_churn(transactions: int = 40_000, watchdog: int = 1_000,
                      masters: int = 8) -> Simulator:
    """Schedule-then-cancel per transaction, as the resilient TG does."""
    sim = Simulator()
    per_master = transactions // masters

    def master():
        for _ in range(per_master):
            guard = sim.schedule_after(watchdog, _noop)
            yield 1                       # "response" arrives next cycle
            guard.cancel()
            yield 1

    for mid in range(masters):
        sim.spawn(master(), name=f"master{mid}")
    sim.run()
    return sim


def wl_notify_storm(rounds: int = 15_000, waiters: int = 32) -> Simulator:
    sim = Simulator()
    sig = sim.signal("storm")

    def waiter():
        for _ in range(rounds):
            yield sig

    def notifier():
        for _ in range(rounds):
            yield 1
            sig.notify()

    for wid in range(waiters):
        sim.spawn(waiter(), name=f"waiter{wid}")
    sim.spawn(notifier(), name="notifier")
    sim.run()
    return sim


def wl_timeout_churn(rounds: int = 15_000, deadline: int = 500) -> Simulator:
    """Waiters on cancellable timeouts that are always woken early."""
    from repro.kernel.simulator import timeout

    sim = Simulator()
    sig = sim.signal("early")

    def guarded_waiter():
        for _ in range(rounds):
            guard = timeout(sim, deadline)
            yield sig                     # woken before `guard` fires
            guard.cancel()

    def waker():
        for _ in range(rounds):
            yield 1
            sig.notify()

    sim.spawn(guarded_waiter(), name="guarded")
    sim.spawn(waker(), name="waker")
    sim.run()
    return sim


#: name -> (factory, {param overrides for --quick})
WORKLOADS = {
    "event_chain": (wl_event_chain, {"n_events": 60_000}),
    "watchdog_churn": (wl_watchdog_churn, {"transactions": 12_000}),
    "notify_storm": (wl_notify_storm, {"rounds": 4_000}),
    "timeout_churn": (wl_timeout_churn, {"rounds": 5_000}),
}


def _kernel_counters(sim: Simulator) -> dict:
    getter = getattr(sim, "kernel_counters", None)
    if getter is not None:
        return getter()
    return {"events_fired": sim.events_fired}


def run_profile(quick: bool = False, repeats: int = 3) -> dict:
    results = {}
    for name, (factory, quick_params) in WORKLOADS.items():
        kwargs = quick_params if quick else {}
        best = float("inf")
        sim = None
        for _ in range(repeats):
            start = time.perf_counter()
            sim = factory(**kwargs)
            best = min(best, time.perf_counter() - start)
        counters = _kernel_counters(sim)
        results[name] = {
            "events": sim.events_fired,
            "sim_cycles": sim.now,
            "wall_s": round(best, 6),
            "events_per_sec": round(sim.events_fired / best, 1),
            "counters": counters,
        }
    return {
        "schema": 1,
        "profile": "quick" if quick else "full",
        "repeats": repeats,
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "workloads": results,
    }


def check_regression(current: dict, baseline: dict,
                     max_regress: float) -> list:
    """Return a list of failure strings (empty = within budget)."""
    failures = []
    base_wl = baseline.get("workloads", {})
    for name, row in current["workloads"].items():
        base = base_wl.get(name)
        if base is None:
            continue
        base_rate = base["events_per_sec"]
        rate = row["events_per_sec"]
        if base_rate > 0 and rate < base_rate * (1.0 - max_regress):
            failures.append(
                f"{name}: {rate:,.0f} ev/s is "
                f"{1.0 - rate / base_rate:.0%} below baseline "
                f"{base_rate:,.0f} ev/s (budget {max_regress:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="kernel perf profile -> BENCH_kernel.json")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI smoke profile)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N wall time per workload")
    parser.add_argument("--out", metavar="FILE",
                        help="write the profile as JSON")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare events/sec against a baseline JSON")
    parser.add_argument("--max-regress", type=float, default=0.30,
                        help="fail --check when events/sec drops by more "
                             "than this fraction (default 0.30)")
    args = parser.parse_args(argv)

    profile = run_profile(quick=args.quick, repeats=args.repeats)
    width = max(len(name) for name in profile["workloads"])
    for name, row in profile["workloads"].items():
        print(f"{name:<{width}}  {row['events']:>9,} events  "
              f"{row['wall_s'] * 1000:8.1f} ms  "
              f"{row['events_per_sec']:>12,.0f} ev/s")

    if args.out:
        Path(args.out).write_text(json.dumps(profile, indent=2) + "\n")
        print(f"profile written to {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check_regression(profile, baseline, args.max_regress)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"regression check OK against {args.check} "
              f"(budget {args.max_regress:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
