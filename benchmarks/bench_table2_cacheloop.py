"""E4 — Table 2, Cacheloop block: speedup scaling with processor count.

Paper rows: 2P-12P, error 0.00%-0.01%, gain growing 3.36x -> 4.69x (the
bus never saturates, so replacing cores keeps paying off).  We reproduce
error ≈ 0 and monotone-ish growth of the event-gain with core count.
"""

import pytest

from repro.apps import cacheloop
from benchmarks.common import record_row, table2_measurement
from repro.harness import build_tg_platform

import os

CORE_COUNTS = [2, 4, 6, 8, 10, 12]
#: REPRO_SCALE multiplies workload sizes toward paper-scale runs.
SCALE = int(os.environ.get("REPRO_SCALE", "1"))
ITERS = 1500 * SCALE


@pytest.mark.benchmark(group="table2-cacheloop")
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_cacheloop_row(benchmark, n_cores):
    measurement = table2_measurement(cacheloop, n_cores, {"iters": ITERS})
    record_row(benchmark, "Cacheloop", measurement)
    programs = measurement["programs"]

    def tg_run():
        platform = build_tg_platform(programs, n_cores)
        platform.run()
        return platform

    benchmark(tg_run)
    # paper: 0.00-0.01% error for cacheloop
    assert measurement["error"] < 0.001
    assert measurement["gain"] > 1.0
