"""Session-level reporting: assemble and print the reproduced Table 2."""

from typing import Dict, List, Tuple

from repro.stats import Table

#: ``(section, measurement)`` rows accumulated by the Table-2 benches.
TABLE2_ROWS: List[Tuple[str, Dict]] = []

#: Free-form report lines from the other experiment benches.
REPORT_LINES: List[str] = []


def _write_csv(path: str) -> None:
    columns = ["section", "n_cores", "arm_cycles", "tg_cycles", "error",
               "arm_wall", "tg_wall", "gain", "event_gain"]
    with open(path, "w") as handle:
        handle.write(",".join(columns) + "\n")
        for section, row in TABLE2_ROWS:
            cells = [section] + [str(row[key]) for key in columns[1:]]
            handle.write(",".join(cells) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if TABLE2_ROWS:
        _write_csv("table2_results.csv")
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "Table-2 rows also written to table2_results.csv")
        table = Table(
            ["#IPs", "ARM cycles", "TG cycles", "Error",
             "ARM sim", "TG sim", "Gain", "Event gain"],
            title="Table 2 (reproduced): TG vs ARM performance with AMBA",
        )
        current_section = None
        for section, row in TABLE2_ROWS:
            if section != current_section:
                table.add_section(f"{section}:")
                current_section = section
            table.add_row(
                f"{row['n_cores']}P",
                row["arm_cycles"],
                row["tg_cycles"],
                f"{row['error']:.2%}",
                f"{row['arm_wall'] * 1000:.1f} ms",
                f"{row['tg_wall'] * 1000:.1f} ms",
                f"{row['gain']:.2f}x",
                f"{row['event_gain']:.2f}x",
            )
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
    for line in REPORT_LINES:
        terminalreporter.write_line(line)
