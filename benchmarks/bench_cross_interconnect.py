"""E7 — Section 6, first experiment: trace-translation invariance.

"We ran the same benchmarks over AMBA and ×pipes, noticing very different
execution times ... However, after translation, a check across .tgp
programs showed no difference at all."

The bench times the full validation (two reference runs + translations +
comparison) and asserts the invariance over all four fabrics.
"""

import pytest

from repro.apps import des, mp_matrix
from repro.harness import reference_run, translate_traces
from benchmarks.conftest import REPORT_LINES

FABRICS = ["ahb", "xpipes", "stbus", "tlm"]


def _programs(app, n_cores, fabric, params):
    platform, collectors, _ = reference_run(app, n_cores, fabric,
                                            app_params=params)
    return platform.cumulative_execution_time, \
        translate_traces(collectors, n_cores)


@pytest.mark.benchmark(group="cross-interconnect")
def test_mp_matrix_translation_invariance(benchmark):
    def validate():
        results = {fabric: _programs(mp_matrix, 3, fabric, {"n": 4})
                   for fabric in FABRICS}
        base_cycles, base = results["ahb"]
        identical = all(
            base[core] == programs[core]
            for _, programs in results.values() for core in range(3))
        cycles = {fabric: cycles for fabric, (cycles, _) in results.items()}
        return identical, cycles

    identical, cycles = benchmark.pedantic(validate, rounds=1, iterations=1)
    assert identical
    # the *executions* differ across fabrics; only the programs coincide
    assert len(set(cycles.values())) > 1
    REPORT_LINES.append(
        f"[E7] mp_matrix 3P: execution cycles by fabric {cycles}; "
        f".tgp identical across all fabrics: {identical}")


@pytest.mark.benchmark(group="cross-interconnect")
def test_des_translation_invariance(benchmark):
    def validate():
        results = {fabric: _programs(des, 3, fabric, {"blocks": 3})
                   for fabric in FABRICS}
        base = results["ahb"][1]
        return all(base[core] == programs[core]
                   for _, programs in results.values()
                   for core in range(3))

    assert benchmark.pedantic(validate, rounds=1, iterations=1)
