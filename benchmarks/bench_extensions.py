"""E12-E15 — beyond-paper extension experiments (paper §7 future work).

* E12: multitask TG consolidation — two traced workloads on one socket,
  timeslice vs sleep scheduling vs the 2-core reference;
* E13: out-of-order transactions — ReadNB/Fence latency hiding on the
  ×pipes NoC;
* E14: TDMA vs round-robin AHB arbitration explored with TGs (a concrete
  design-space axis beyond the paper's fabric swaps);
* E15: NoC endpoint placement explored with TGs — latency and energy of
  good vs bad mappings on the ×pipes mesh.
"""

import pytest

from repro.apps import cacheloop, mp_matrix
from repro.core import (
    MultitaskTGMaster,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
)
from repro.core.isa import ADDRREG
from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)
from repro.platform import MparmPlatform, PlatformConfig, SHARED_BASE
from benchmarks.conftest import REPORT_LINES


def I(op, **kwargs):  # noqa: E743
    return TGInstruction(op, **kwargs)


@pytest.mark.benchmark(group="extensions")
def test_e12_multitask_consolidation(benchmark):
    _, collectors, _ = reference_run(cacheloop, 2,
                                     app_params={"iters": 400})
    programs = translate_traces(collectors, 2)

    def consolidated(scheduler, **kwargs):
        platform = MparmPlatform(PlatformConfig(n_masters=2))
        multitask = MultitaskTGMaster(platform.sim, "cpu0",
                                      [programs[0], programs[1]],
                                      scheduler=scheduler, **kwargs)
        platform.add_master(multitask)
        platform.add_master(TGMaster(platform.sim, "filler", TGProgram(
            core_id=1, instructions=[I(TGOp.HALT)])))
        platform.run()
        return multitask

    timeslice = benchmark(lambda: consolidated(
        "timeslice", timeslice=64, context_switch_cycles=8))
    sleep = consolidated("sleep", sleep_threshold=32,
                         context_switch_cycles=8)
    ref_platform, _, _ = reference_run(cacheloop, 2,
                                       app_params={"iters": 400},
                                       collect=False)
    REPORT_LINES.append(
        f"[E12] consolidation: 2-core reference ends at "
        f"{ref_platform.sim.now}, 1-core timeslice "
        f"{timeslice.completion_time} ({timeslice.context_switches} "
        f"switches), 1-core sleep {sleep.completion_time} "
        f"({sleep.context_switches} switches)")
    # one core doing two cores' (compute-bound) work takes ~2x under
    # timeslice scheduling, where Idle correctly means "busy computing"
    assert timeslice.completion_time > ref_platform.sim.now * 1.5
    # sleep scheduling interprets long idles as *waits* and overlaps them
    # — for a compute-bound trace that is the optimistic bound (~1x); the
    # spread between the two policies brackets the consolidation cost
    assert sleep.completion_time < timeslice.completion_time
    assert sleep.completion_time >= ref_platform.sim.now


@pytest.mark.benchmark(group="extensions")
def test_e13_ooo_latency_hiding(benchmark):
    def run(read_op, count=12):
        platform = MparmPlatform(PlatformConfig(n_masters=1,
                                                interconnect="xpipes"))
        instrs = []
        for index in range(count):
            instrs.append(I(TGOp.SET_REGISTER, a=ADDRREG,
                            imm=SHARED_BASE + index * 4))
            instrs.append(I(read_op, a=ADDRREG))
        if read_op == TGOp.READ_NB:
            instrs.append(I(TGOp.FENCE))
        instrs.append(I(TGOp.HALT))
        tg = TGMaster(platform.sim, "tg0",
                      TGProgram(core_id=0, instructions=instrs))
        platform.add_master(tg)
        platform.run()
        return tg.completion_time

    blocking = run(TGOp.READ)
    pipelined = benchmark(lambda: run(TGOp.READ_NB))
    REPORT_LINES.append(
        f"[E13] xpipes, 12 reads: blocking {blocking} cycles, "
        f"pipelined (ReadNB+Fence) {pipelined} cycles "
        f"({blocking / pipelined:.2f}x latency hiding)")
    assert pipelined < blocking


@pytest.mark.benchmark(group="extensions")
def test_e14_arbitration_exploration(benchmark):
    """TG-driven exploration of the AHB arbitration policy."""
    n_cores = 4
    _, collectors, _ = reference_run(mp_matrix, n_cores,
                                     app_params={"n": 4})
    programs = translate_traces(collectors, n_cores)

    def evaluate(policy, **arbiter_kwargs):
        overrides = {"fabric_kwargs": {
            "arbiter_policy": policy,
            **({"arbiter_kwargs": arbiter_kwargs} if arbiter_kwargs
               else {})}}
        platform = build_tg_platform(programs, n_cores, "ahb",
                                     config_overrides=overrides)
        platform.run()
        return platform.cumulative_execution_time

    def explore():
        return {
            "round_robin": evaluate("round_robin"),
            "fixed": evaluate("fixed"),
            "tdma": evaluate("tdma",
                             slot_table=list(range(n_cores)),
                             slot_cycles=16),
        }

    results = benchmark.pedantic(explore, rounds=1, iterations=1)
    REPORT_LINES.append(f"[E14] mp_matrix 4P TG cycles by arbitration: "
                        f"{results}")
    # TDMA trades latency for guaranteed slots: slower here
    assert results["tdma"] > results["round_robin"]


@pytest.mark.benchmark(group="extensions")
def test_e15_placement_exploration(benchmark):
    """TG-driven placement exploration on the ×pipes mesh."""
    from repro.stats import estimate_energy
    n_cores = 2
    _, collectors, _ = reference_run(mp_matrix, n_cores,
                                     app_params={"n": 4})
    programs = translate_traces(collectors, n_cores)

    def evaluate(placement):
        overrides = {"fabric_kwargs": {"mesh": (3, 3),
                                       "placement": placement}}
        platform = build_tg_platform(programs, n_cores, "xpipes",
                                     config_overrides=overrides)
        platform.run()
        return (platform.cumulative_execution_time,
                estimate_energy(platform))

    def explore():
        # masters next to the shared memory vs banished to far corners
        good = evaluate({0: (1, 1), 1: (2, 1), "shared": (1, 2),
                         "sem": (2, 2), "bar": (0, 2)})
        bad = evaluate({0: (0, 0), 1: (2, 0), "shared": (2, 2),
                        "sem": (0, 2), "bar": (1, 2)})
        return good, bad

    (good_cycles, good_energy), (bad_cycles, bad_energy) = \
        benchmark.pedantic(explore, rounds=1, iterations=1)
    REPORT_LINES.append(
        f"[E15] mp_matrix 2P on xpipes 3x3: near placement "
        f"{good_cycles} cycles / {good_energy['flit_hops']} flit-hops, "
        f"far placement {bad_cycles} cycles / "
        f"{bad_energy['flit_hops']} flit-hops")
    assert good_energy["flit_hops"] < bad_energy["flit_hops"]
    assert good_cycles <= bad_cycles


@pytest.mark.benchmark(group="extensions")
def test_e17_address_register_allocation(benchmark):
    """Spending more TG registers on addresses: footprint vs accuracy."""
    from repro.apps.common import pollable_ranges
    from repro.trace import Translator, TranslatorOptions
    n_cores = 3
    platform, collectors, _ = reference_run(mp_matrix, n_cores,
                                            app_params={"n": 4})
    truth = platform.cumulative_execution_time

    def evaluate(n_regs):
        options = TranslatorOptions(
            pollable_ranges=pollable_ranges(n_cores),
            address_registers=n_regs)
        programs = {mid: Translator(options).translate_events(c.events, mid)
                    for mid, c in collectors.items()}
        instructions = sum(len(p) for p in programs.values())
        tg_platform = build_tg_platform(programs, n_cores)
        tg_platform.run()
        error = abs(tg_platform.cumulative_execution_time - truth) / truth
        return instructions, error

    def explore():
        return {n: evaluate(n) for n in (1, 4, 8)}

    results = benchmark.pedantic(explore, rounds=1, iterations=1)
    REPORT_LINES.append(
        "[E17] mp_matrix 3P, address registers: " + ", ".join(
            f"{n} regs -> {instrs} instrs / {error:.2%} error"
            for n, (instrs, error) in results.items()))
    # more registers shrink the program (fewer SetRegisters)
    assert results[8][0] < results[1][0]
    # and never blow up the error
    assert results[8][1] < 0.05
