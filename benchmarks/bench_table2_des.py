"""E6 — Table 2, DES block: pipelined synchronisation accuracy/speedup.

Paper rows: 3P-12P, error 0.00%-0.29%, gain 2.02x-3.09x shrinking with
core count as the bus saturates.  We reproduce the error band and the
gain shrink at high stage counts.
"""

import pytest

from repro.apps import des
from benchmarks.common import record_row, table2_measurement
from repro.harness import build_tg_platform

import os

CORE_COUNTS = [3, 4, 6, 8, 10, 12]
#: REPRO_SCALE multiplies the block count toward paper-scale runs.
SCALE = int(os.environ.get("REPRO_SCALE", "1"))
BLOCKS = 4 * SCALE


@pytest.mark.benchmark(group="table2-des")
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_des_row(benchmark, n_cores):
    measurement = table2_measurement(des, n_cores, {"blocks": BLOCKS})
    record_row(benchmark, "DES", measurement)
    programs = measurement["programs"]

    def tg_run():
        platform = build_tg_platform(programs, n_cores)
        platform.run()
        return platform

    benchmark(tg_run)
    assert measurement["error"] < 0.05
    assert measurement["event_gain"] > 1.0
