"""E9 — Section 3's taxonomy as an ablation: cloning vs timeshifting vs
reactive.

The measure is design-space-exploration fidelity: collect the trace on
AMBA, run the TGs on a *different* fabric, and compare the TG-predicted
cycle count with the ground truth of real cores on that fabric.  Reactive
TGs must predict best; cloning — "clearly inadequate when the variance of
network latency is taken into account" — must be the worst or tied.
"""

import pytest

from repro.apps import des, mp_matrix
from repro.core import ReplayMode
from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)
from benchmarks.conftest import REPORT_LINES

TARGET_FABRICS = ["stbus", "xpipes"]


def prediction_errors(app, n_cores, params, target):
    """{mode: relative error of TG-predicted cycles on ``target``}."""
    _, collectors, _ = reference_run(app, n_cores, "ahb",
                                     app_params=params)
    truth_platform, _, _ = reference_run(app, n_cores, target,
                                         app_params=params)
    truth = truth_platform.cumulative_execution_time
    errors = {}
    for mode in ReplayMode:
        programs = translate_traces(collectors, n_cores, mode)
        tg_platform = build_tg_platform(programs, n_cores, target)
        tg_platform.run()
        predicted = tg_platform.cumulative_execution_time
        errors[mode] = abs(predicted - truth) / truth
    return errors


@pytest.mark.benchmark(group="ablation-modes")
@pytest.mark.parametrize("target", TARGET_FABRICS)
def test_reactive_wins_des(benchmark, target):
    errors = benchmark.pedantic(
        lambda: prediction_errors(des, 3, {"blocks": 3}, target),
        rounds=1, iterations=1)
    REPORT_LINES.append(
        f"[E9] des 3P AHB->{target}: " + ", ".join(
            f"{mode.value}={error:.2%}" for mode, error in errors.items()))
    assert errors[ReplayMode.REACTIVE] <= errors[ReplayMode.TIMESHIFTING] + 1e-9
    assert errors[ReplayMode.REACTIVE] <= errors[ReplayMode.CLONING] + 1e-9


@pytest.mark.benchmark(group="ablation-modes")
def test_reactive_wins_mp_matrix(benchmark):
    errors = benchmark.pedantic(
        lambda: prediction_errors(mp_matrix, 3, {"n": 4}, "stbus"),
        rounds=1, iterations=1)
    REPORT_LINES.append(
        "[E9] mp_matrix 3P AHB->stbus: " + ", ".join(
            f"{mode.value}={error:.2%}" for mode, error in errors.items()))
    assert errors[ReplayMode.REACTIVE] <= errors[ReplayMode.CLONING] + 1e-9
    # timeshifting can tie or win by luck at small scale (both replay the
    # same transactions when contention does not reorder anything); allow
    # a small epsilon rather than demanding strict dominance
    assert (errors[ReplayMode.REACTIVE]
            <= errors[ReplayMode.TIMESHIFTING] + 0.01)
    assert errors[ReplayMode.REACTIVE] < 0.05
