"""E8 — Section 6: the one-off cost of trace collection and translation.

Paper numbers (MP matrix, 4 ARM cores on AMBA): plain run 128 s, traced
run 147 s (~15% overhead), trace parsing/elaboration 145 s for a 20 MB
trace.  We reproduce the *shape*: tracing adds a modest overhead to the
reference run, and translation is a one-off cost comparable to a run.
"""

import time

import pytest

from repro.apps import mp_matrix
from repro.harness import reference_run, translate_traces
from benchmarks.common import timed
from benchmarks.conftest import REPORT_LINES

N_CORES = 4
PARAMS = {"n": 8}


@pytest.mark.benchmark(group="tracing-overhead")
def test_tracing_overhead(benchmark):
    plain_wall, _ = timed(
        lambda: reference_run(mp_matrix, N_CORES, app_params=PARAMS,
                              collect=False)[0], repeats=3)
    traced_wall, collectors = timed(
        lambda: reference_run(mp_matrix, N_CORES, app_params=PARAMS)[1],
        repeats=3)

    def translate():
        return translate_traces(collectors, N_CORES)

    start = time.perf_counter()
    programs = translate()
    translate_wall = time.perf_counter() - start
    benchmark(translate)

    trace_bytes = sum(len(collector.to_trc().encode())
                      for collector in collectors.values())
    overhead = traced_wall / plain_wall - 1.0
    REPORT_LINES.append(
        f"[E8] mp_matrix {N_CORES}P: plain {plain_wall*1000:.1f} ms, "
        f"traced {traced_wall*1000:.1f} ms (+{overhead:.1%}), "
        f"translation {translate_wall*1000:.1f} ms, "
        f"trace size {trace_bytes/1024:.1f} KiB")
    # tracing must be a modest overhead, not a blow-up
    assert traced_wall < plain_wall * 2.0
    assert programs
