"""Shared helpers for the experiment benchmarks.

Every Table-2 bench follows the paper's measurement protocol: the same
configuration is simulated with ARM-like cores and with TGs, wall times are
averaged over repeats ("time measurements were taken by averaging over
multiple runs"), and the row reports simulated cycles (accuracy) and wall
seconds (gain).
"""

import time
from typing import Callable, Dict, Tuple

from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)


def timed(factory: Callable[[], object], repeats: int = 3
          ) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time of build+run; returns (wall, last)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = factory()
        best = min(best, time.perf_counter() - start)
    return best, result


def table2_measurement(app, n_cores: int, app_params: Dict,
                       interconnect: str = "ahb",
                       repeats: int = 3) -> Dict[str, object]:
    """One Table-2 row: ARM vs TG cycles and wall times.

    The reference (tracing) run happens once — as in the paper, its cost
    is one-off; the *untraced* ARM run and the TG run are both timed.
    """
    # one traced run provides the programs
    platform, collectors, _ = reference_run(app, n_cores, interconnect,
                                            app_params=app_params)
    ref_cycles = platform.cumulative_execution_time
    programs = translate_traces(collectors, n_cores)

    def arm_run():
        p, _, _ = reference_run(app, n_cores, interconnect,
                                app_params=app_params, collect=False)
        return p

    def tg_run():
        p = build_tg_platform(programs, n_cores, interconnect)
        p.run()
        return p

    arm_wall, arm_platform = timed(arm_run, repeats)
    tg_wall, tg_platform = timed(tg_run, repeats)
    tg_cycles = tg_platform.cumulative_execution_time
    return {
        "n_cores": n_cores,
        "arm_cycles": ref_cycles,
        "tg_cycles": tg_cycles,
        "error": abs(tg_cycles - ref_cycles) / ref_cycles,
        "arm_wall": arm_wall,
        "tg_wall": tg_wall,
        "gain": arm_wall / tg_wall if tg_wall else 0.0,
        "arm_events": arm_platform.sim.events_fired,
        "tg_events": tg_platform.sim.events_fired,
        "event_gain": (arm_platform.sim.events_fired
                       / max(1, tg_platform.sim.events_fired)),
        "programs": programs,
    }


def record_row(benchmark, section: str, measurement: Dict) -> None:
    """Push a row into the session Table 2 and pytest-benchmark extras."""
    benchmark.extra_info.update({
        key: value for key, value in measurement.items()
        if key != "programs"
    })
    from benchmarks.conftest import TABLE2_ROWS
    TABLE2_ROWS.append((section, measurement))
