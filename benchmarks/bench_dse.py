"""E11 — the motivating use case: NoC design-space exploration with TGs.

Trace once on the cheap TLM fabric (the paper notes collection "could be
performed on top of a transactional fabric model"), then evaluate each
candidate interconnect with TGs only, and check the TG-based ranking
matches the ground-truth ranking obtained with full core simulations.
"""

import time

import pytest

from repro.apps import mp_matrix
from repro.harness import (
    ResultCache,
    SweepSpec,
    build_tg_platform,
    reference_run,
    run_sweep_parallel,
    translate_traces,
)
from benchmarks.conftest import REPORT_LINES

CANDIDATES = ["ahb", "stbus", "xpipes"]
PARAMS = {"n": 4}
N_CORES = 3


@pytest.mark.benchmark(group="dse")
def test_tg_ranking_matches_truth(benchmark):
    def explore():
        _, collectors, _ = reference_run(mp_matrix, N_CORES, "tlm",
                                         app_params=PARAMS)
        programs = translate_traces(collectors, N_CORES)
        predicted = {}
        for fabric in CANDIDATES:
            platform = build_tg_platform(programs, N_CORES, fabric)
            platform.run()
            predicted[fabric] = platform.cumulative_execution_time
        return predicted

    predicted = benchmark.pedantic(explore, rounds=1, iterations=1)
    truth = {}
    for fabric in CANDIDATES:
        platform, _, _ = reference_run(mp_matrix, N_CORES, fabric,
                                       app_params=PARAMS, collect=False)
        truth[fabric] = platform.cumulative_execution_time
    predicted_rank = sorted(CANDIDATES, key=predicted.get)
    truth_rank = sorted(CANDIDATES, key=truth.get)
    REPORT_LINES.append(
        f"[E11] DSE mp_matrix {N_CORES}P: predicted {predicted} "
        f"truth {truth} — ranking match: {predicted_rank == truth_rank}")
    assert predicted_rank == truth_rank
    for fabric in CANDIDATES:
        error = abs(predicted[fabric] - truth[fabric]) / truth[fabric]
        assert error < 0.06, f"{fabric}: {error:.2%}"


@pytest.mark.benchmark(group="dse")
def test_cached_dse_sweep_warm_rerun_is_free(benchmark, tmp_path):
    """The sweep engine's pitch for DSE: re-evaluating an unchanged grid
    of design alternatives costs zero simulations and near-zero time."""
    spec = SweepSpec("mp_matrix", [N_CORES], interconnects=CANDIDATES,
                     app_params=PARAMS)
    cache = ResultCache(tmp_path / "cache")

    def cold():
        return run_sweep_parallel(spec, jobs=1, cache=cache)

    cold_start = time.perf_counter()
    cold_results = benchmark.pedantic(cold, rounds=1, iterations=1)
    cold_wall = time.perf_counter() - cold_start
    assert all(r.status == "ok" and not r.cached for r in cold_results)

    warm_start = time.perf_counter()
    warm_results = run_sweep_parallel(spec, jobs=1, cache=cache)
    warm_wall = time.perf_counter() - warm_start
    assert all(r.cached for r in warm_results), "warm run must simulate 0"
    assert [r.tg_cycles for r in warm_results] == \
        [r.tg_cycles for r in cold_results]
    REPORT_LINES.append(
        f"[E11] cached DSE sweep ({len(CANDIDATES)} fabrics): cold "
        f"{cold_wall:.3f}s, warm {warm_wall:.3f}s "
        f"({cold_wall / max(warm_wall, 1e-9):.0f}x faster, 0 simulations)")
