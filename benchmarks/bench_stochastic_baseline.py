"""E16 — the Section-2 argument, quantified: stochastic vs reactive TGs.

The paper dismisses distribution-based traffic models: "the
characteristics (functionality and timing) of the IP core are not
captured, such models are unreliable for optimizing NoC features".  We
fit the *strongest* stochastic model we can to each core's reference
trace (exact transaction count and mix, fitted injection rate, real
address pools) and measure the three ways it fails where the reactive
TG does not:

1. **unreliability** — its prediction scatters across seeds, while the
   reactive TG is deterministic;
2. **DSE fidelity** — predicting a *different* interconnect (the actual
   use case) is much worse than the reactive TG's prediction;
3. **functionality** — it corrupts system state (semaphore/barrier
   protocol, memory contents) that the reactive TG reproduces exactly.
"""

import pytest

from repro.apps import mp_matrix
from repro.apps.common import MATRIX_C_OFF
from repro.core import StochasticTGMaster, TrafficProfile
from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)
from repro.platform import MparmPlatform, PlatformConfig, SHARED_BASE
from repro.trace import group_events
from benchmarks.conftest import REPORT_LINES

N_CORES = 3
PARAMS = {"n": 4}
TARGET = "xpipes"


def stochastic_platform(collectors, seed, interconnect):
    platform = MparmPlatform(PlatformConfig(n_masters=N_CORES,
                                            interconnect=interconnect))
    for master_id in range(N_CORES):
        profile = TrafficProfile.fit(
            group_events(collectors[master_id].events))
        platform.add_master(StochasticTGMaster(
            platform.sim, f"stg{master_id}", profile,
            seed=seed + master_id))
    platform.run()
    return platform


@pytest.mark.benchmark(group="stochastic-baseline")
def test_stochastic_model_is_less_reliable(benchmark):
    _, collectors, _ = reference_run(mp_matrix, N_CORES,
                                     app_params=PARAMS)
    truth_platform, _, _ = reference_run(mp_matrix, N_CORES, TARGET,
                                         app_params=PARAMS)
    truth = truth_platform.cumulative_execution_time

    def evaluate():
        programs = translate_traces(collectors, N_CORES)
        tg_platform = build_tg_platform(programs, N_CORES, TARGET)
        tg_platform.run()
        reactive_error = abs(tg_platform.cumulative_execution_time
                             - truth) / truth
        stochastic_errors = []
        for seed in range(4):
            platform = stochastic_platform(collectors, seed * 101, TARGET)
            predicted = platform.cumulative_execution_time
            stochastic_errors.append(abs(predicted - truth) / truth)
        return reactive_error, stochastic_errors, tg_platform

    reactive_error, stochastic_errors, tg_platform = benchmark.pedantic(
        evaluate, rounds=1, iterations=1)
    mean_stochastic = sum(stochastic_errors) / len(stochastic_errors)
    spread = max(stochastic_errors) - min(stochastic_errors)
    REPORT_LINES.append(
        f"[E16] mp_matrix {N_CORES}P AHB->{TARGET}: reactive TG error "
        f"{reactive_error:.2%}; fitted stochastic errors "
        + ", ".join(f"{e:.2%}" for e in stochastic_errors)
        + f" (mean {mean_stochastic:.2%}, seed spread {spread:.2%})")
    # the reactive TG predicts the other fabric tightly...
    assert reactive_error < 0.05
    # ...while even a well-fitted stochastic model is off and scattered
    assert mean_stochastic > reactive_error
    assert spread > reactive_error


@pytest.mark.benchmark(group="stochastic-baseline")
def test_stochastic_model_breaks_functionality(benchmark):
    """Reactive TGs reproduce the system's memory state; stochastic
    traffic cannot (it fires uncorrelated reads/writes)."""
    ref_platform, collectors, _ = reference_run(mp_matrix, N_CORES,
                                                app_params=PARAMS)
    golden_c = ref_platform.shared_mem.peek_block(
        SHARED_BASE + MATRIX_C_OFF, 16)

    def evaluate():
        programs = translate_traces(collectors, N_CORES)
        tg_platform = build_tg_platform(programs, N_CORES)
        tg_platform.run()
        reactive_c = tg_platform.shared_mem.peek_block(
            SHARED_BASE + MATRIX_C_OFF, 16)
        stochastic = stochastic_platform(collectors, 7, "ahb")
        stochastic_c = stochastic.shared_mem.peek_block(
            SHARED_BASE + MATRIX_C_OFF, 16)
        return reactive_c, stochastic_c

    reactive_c, stochastic_c = benchmark.pedantic(evaluate, rounds=1,
                                                  iterations=1)
    assert reactive_c == golden_c
    assert stochastic_c != golden_c
    REPORT_LINES.append(
        "[E16] functionality: reactive TG reproduces the shared-memory "
        "result matrix exactly; the stochastic model corrupts it")
