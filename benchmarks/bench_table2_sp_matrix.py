"""E3 — Table 2, SP matrix block: single-processor accuracy and speedup.

Paper row: ``1P  ARM 6610680  TG 6610659  0.00%  73s/34s  2.15x``.
We reproduce the shape: near-zero error and a clear TG speedup.
"""

import pytest

from repro.apps import sp_matrix
from benchmarks.common import record_row, table2_measurement


import os

#: REPRO_SCALE enlarges the matrix toward paper-scale runs.
SCALE = int(os.environ.get("REPRO_SCALE", "1"))


@pytest.mark.benchmark(group="table2-sp-matrix")
def test_sp_matrix_1p(benchmark):
    measurement = table2_measurement(sp_matrix, 1, {"n": 8 * SCALE})
    record_row(benchmark, "SP matrix", measurement)
    programs = measurement["programs"]

    def tg_run():
        from repro.harness import build_tg_platform
        platform = build_tg_platform(programs, 1)
        platform.run()
        return platform

    benchmark(tg_run)
    assert measurement["error"] < 0.01
    assert measurement["gain"] > 1.0
