"""E10 — Table 2's trends as explicit series: error and gain vs #cores.

Two claims from the paper's discussion are checked:

* Cacheloop's gain does **not** degrade with core count ("the reduced
  speedup is not a property of the TG") — its event-gain at 12P is at
  least as good as at 2P;
* MP matrix saturates the bus at high core counts, which *shrinks* the
  gain (TGs cannot save simulation work while replaced cores idle-wait).
"""

import os
import time

import pytest

from repro.apps import cacheloop, mp_matrix
from benchmarks.common import table2_measurement
from repro.interconnect import AmbaAhbBus
from repro.harness import (
    SweepSpec,
    reference_run,
    run_sweep_parallel,
    sweep_csv,
)
from benchmarks.conftest import REPORT_LINES


@pytest.mark.benchmark(group="scaling")
def test_cacheloop_gain_scales(benchmark):
    def series():
        return {n: table2_measurement(cacheloop, n, {"iters": 800},
                                      repeats=2)
                for n in (2, 6, 12)}

    results = benchmark.pedantic(series, rounds=1, iterations=1)
    gains = {n: round(r["event_gain"], 2) for n, r in results.items()}
    REPORT_LINES.append(f"[E10] cacheloop event-gain by #cores: {gains}")
    assert results[12]["event_gain"] >= results[2]["event_gain"] * 0.9


@pytest.mark.benchmark(group="scaling")
def test_mp_matrix_congestion_shrinks_gain(benchmark):
    def series():
        measurements = {n: table2_measurement(mp_matrix, n, {"n": 8},
                                              repeats=2)
                        for n in (2, 12)}
        utilisation = {}
        for n in (2, 12):
            platform, _, _ = reference_run(mp_matrix, n, app_params={"n": 8},
                                           collect=False)
            assert isinstance(platform.fabric, AmbaAhbBus)
            utilisation[n] = platform.fabric.utilisation()
        return measurements, utilisation

    measurements, utilisation = benchmark.pedantic(series, rounds=1,
                                                   iterations=1)
    REPORT_LINES.append(
        f"[E10] mp_matrix: bus utilisation 2P={utilisation[2]:.2f} "
        f"12P={utilisation[12]:.2f}; event-gain "
        f"2P={measurements[2]['event_gain']:.2f}x "
        f"12P={measurements[12]['event_gain']:.2f}x")
    # congestion grows with cores...
    assert utilisation[12] > utilisation[2]
    # ...and eats into the TG's advantage
    assert measurements[12]["event_gain"] < measurements[2]["event_gain"]


def _normalised_csv(results):
    """sweep_csv with the wall-clock columns (ref_wall/tg_wall/gain)
    blanked — everything else must match between serial and parallel."""
    lines = []
    for line in sweep_csv(results).strip().splitlines():
        cells = line.split(",")
        for index in (7, 8, 9):
            cells[index] = "WALL"
        lines.append(",".join(cells))
    return "\n".join(lines)


@pytest.mark.benchmark(group="scaling")
def test_parallel_sweep_speedup(benchmark):
    """A 12-point sweep with --jobs 4 must reproduce the serial results
    byte-for-byte (modulo wall-time columns) while finishing faster."""
    spec = SweepSpec("cacheloop", [1, 2, 3],
                     interconnects=["ahb", "tlm", "stbus", "xpipes"],
                     app_params={"iters": 800})
    assert spec.points == 12

    serial_start = time.perf_counter()
    serial = run_sweep_parallel(spec, jobs=1)
    serial_wall = time.perf_counter() - serial_start

    def parallel():
        return run_sweep_parallel(spec, jobs=4)

    parallel_start = time.perf_counter()
    parallel_results = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_wall = time.perf_counter() - parallel_start

    assert all(r.status == "ok" for r in serial + parallel_results)
    assert _normalised_csv(serial) == _normalised_csv(parallel_results)
    speedup = serial_wall / max(parallel_wall, 1e-9)
    try:
        available_cpus = len(os.sched_getaffinity(0))
    except AttributeError:           # non-Linux
        available_cpus = os.cpu_count() or 1
    REPORT_LINES.append(
        f"[E12] 12-point sweep on {available_cpus} CPU(s): serial "
        f"{serial_wall:.2f}s, --jobs 4 {parallel_wall:.2f}s "
        f"({speedup:.2f}x), CSV identical modulo wall columns")
    if available_cpus >= 4:
        assert speedup > 1.5, f"expected parallel win, got {speedup:.2f}x"
    elif available_cpus >= 2:
        assert speedup > 1.0, f"expected parallel win, got {speedup:.2f}x"
