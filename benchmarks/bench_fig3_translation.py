"""E2 — Figure 3: the trace→program→binary toolchain, correctness + speed.

Checks the paper's walk-through translation on the Figure 3 trace shape
and benchmarks translator/assembler throughput on a large synthetic trace
(the paper reports 145 s for a 20 MB trace; we report the scaled figure).
"""

import pytest

from repro.core import TGOp, parse_tgp
from repro.core.assembler import assemble_binary, disassemble_binary
from repro.ocp.types import OCPCommand
from repro.trace import Phase, TraceEvent, Translator, TranslatorOptions
from repro.trace.trc_format import parse_trc, serialize_trc
from benchmarks.conftest import REPORT_LINES


def synthetic_trace(transactions=5000):
    """A large master trace alternating reads, writes and refills."""
    events = []
    time_ns = 0
    uid = 0
    for index in range(transactions):
        kind = index % 3
        if kind == 0:
            addr = 0x1000 + (index % 64) * 4
            events.append(TraceEvent(Phase.REQ, time_ns, OCPCommand.READ,
                                     addr, 1, None, uid))
            events.append(TraceEvent(Phase.ACC, time_ns + 10,
                                     OCPCommand.READ, addr, 1, None, uid))
            events.append(TraceEvent(Phase.RESP, time_ns + 25,
                                     OCPCommand.READ, addr, 1, index, uid))
            time_ns += 60
        elif kind == 1:
            addr = 0x2000 + (index % 64) * 4
            events.append(TraceEvent(Phase.REQ, time_ns, OCPCommand.WRITE,
                                     addr, 1, index, uid))
            events.append(TraceEvent(Phase.ACC, time_ns + 10,
                                     OCPCommand.WRITE, addr, 1, None, uid))
            time_ns += 40
        else:
            addr = 0x4000 + (index % 16) * 16
            events.append(TraceEvent(Phase.REQ, time_ns,
                                     OCPCommand.BURST_READ, addr, 4,
                                     None, uid))
            events.append(TraceEvent(Phase.ACC, time_ns + 10,
                                     OCPCommand.BURST_READ, addr, 4,
                                     None, uid))
            events.append(TraceEvent(Phase.RESP, time_ns + 45,
                                     OCPCommand.BURST_READ, addr, 4,
                                     [1, 2, 3, index], uid))
            time_ns += 80
        uid += 1
    return events


@pytest.mark.benchmark(group="fig3-toolchain")
def test_figure3_walkthrough(benchmark):
    """The exact idle arithmetic of the paper's Figure 3 example."""
    events = [
        TraceEvent(Phase.REQ, 55, OCPCommand.READ, 0x104, 1, None, 0),
        TraceEvent(Phase.ACC, 60, OCPCommand.READ, 0x104, 1, None, 0),
        TraceEvent(Phase.RESP, 75, OCPCommand.READ, 0x104, 1,
                   0x088000F0, 0),
        TraceEvent(Phase.REQ, 90, OCPCommand.WRITE, 0x20, 1, 0x111, 1),
        TraceEvent(Phase.ACC, 95, OCPCommand.WRITE, 0x20, 1, None, 1),
        TraceEvent(Phase.REQ, 140, OCPCommand.READ, 0xC4, 1, None, 2),
        TraceEvent(Phase.ACC, 145, OCPCommand.READ, 0xC4, 1, None, 2),
        TraceEvent(Phase.RESP, 165, OCPCommand.READ, 0xC4, 1, 0x2236, 2),
    ]
    program = benchmark(lambda: Translator().translate_events(events))
    text = program.to_tgp()
    # first instruction block: SetRegister + Idle(10) + Read, i.e. the
    # paper's "Idle(11)" minus the one-cycle register setup
    assert program.instructions[0].op == TGOp.SET_REGISTER
    assert program.instructions[1].imm == 10
    assert "Read(addr)" in text
    REPORT_LINES.append("[E2] Figure 3 trace translates to:\n"
                        + "\n".join(text.splitlines()[:14]))


@pytest.mark.benchmark(group="fig3-toolchain")
def test_translation_throughput(benchmark):
    events = synthetic_trace()
    trc_text = serialize_trc(events)
    translator = Translator(TranslatorOptions())

    def full_toolchain():
        _, parsed = parse_trc(trc_text)
        program = translator.translate_events(parsed)
        image = assemble_binary(program)
        return disassemble_binary(image)

    program = benchmark(full_toolchain)
    trace_mb = len(trc_text.encode()) / 1e6
    REPORT_LINES.append(
        f"[E2] toolchain throughput: {trace_mb:.2f} MB trace -> "
        f"{len(program)} TG instructions per round")
    assert len(program) > 5000


@pytest.mark.benchmark(group="fig3-toolchain")
def test_tgp_parse_throughput(benchmark):
    events = synthetic_trace(2000)
    program = Translator(TranslatorOptions()).translate_events(events)
    text = program.to_tgp()
    parsed = benchmark(lambda: parse_tgp(text))
    assert parsed == program
