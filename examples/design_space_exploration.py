#!/usr/bin/env python3
"""Design-space exploration — the use case that motivates the paper.

Architectural exploration "typically involves carrying out the same set of
simulations for each design alternative".  With TGs the flow becomes:

1. ONE reference simulation on a cheap transactional (TLM) fabric — the
   paper notes collection "could be performed on top of a transactional
   fabric model, further reducing the impact of the reference simulation";
2. evaluate every candidate interconnect with TGs + an accurate fabric
   model only;
3. (here) cross-check the TG predictions against full core simulations.

Run:  python examples/design_space_exploration.py
"""

import time

from repro.apps import des
from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)
from repro.stats import Table, estimate_energy

N_CORES = 4
PARAMS = {"blocks": 4}
CANDIDATES = {
    "ahb (shared bus)": ("ahb", {}),
    "ahb fixed-priority": ("ahb", {"fabric_kwargs": {
        "arbiter_policy": "fixed"}}),
    "stbus (crossbar)": ("stbus", {}),
    "xpipes (2D mesh NoC)": ("xpipes", {}),
}


def main():
    print("=== One-off: trace DES pipeline on the TLM fabric ===")
    _, collectors, wall = reference_run(des, N_CORES, "tlm",
                                        app_params=PARAMS)
    programs = translate_traces(collectors, N_CORES)
    print(f"  traced + translated in {wall * 1000:.1f} ms\n")

    table = Table(["interconnect", "TG-predicted cycles", "TG wall",
                   "energy estimate", "true cycles (cores)",
                   "prediction error"],
                  title="Interconnect exploration for the DES pipeline")
    for label, (fabric, overrides) in CANDIDATES.items():
        tg_platform = build_tg_platform(programs, N_CORES, fabric,
                                        config_overrides=overrides)
        start = time.perf_counter()
        tg_platform.run()
        tg_wall = time.perf_counter() - start
        predicted = tg_platform.cumulative_execution_time
        energy = estimate_energy(tg_platform)
        truth_platform, _, _ = reference_run(
            des, N_CORES, fabric, app_params=PARAMS,
            config_overrides=overrides, collect=False)
        truth = truth_platform.cumulative_execution_time
        table.add_row(label, predicted, f"{tg_wall * 1000:.1f} ms",
                      f"{energy['total_pj'] / 1000:.1f} nJ", truth,
                      f"{abs(predicted - truth) / truth:.2%}")
    print(table.render())
    print("\nThe TG-based exploration ranks the fabrics without ever "
          "re-simulating the cores.")


if __name__ == "__main__":
    main()
