#!/usr/bin/env python3
"""Quickstart: the complete TG flow on one benchmark.

Runs the paper's methodology end to end:

1. reference simulation (armlet cores on AMBA AHB) with trace collection;
2. trace -> TG program translation (.tgp) and assembly (.bin);
3. TG simulation on the same interconnect;
4. accuracy + speedup report, Table-2 style.

Run:  python examples/quickstart.py
"""

import time

from repro.apps import mp_matrix
from repro.core.assembler import assemble_binary
from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)
from repro.stats import Table

N_CORES = 4
PARAMS = {"n": 8}


def main():
    print("=== 1. Reference simulation (cores + trace collection) ===")
    platform, collectors, ref_wall = reference_run(
        mp_matrix, N_CORES, "ahb", app_params=PARAMS)
    ref_cycles = platform.cumulative_execution_time
    print(f"  {N_CORES} armlet cores ran MP matrix in "
          f"{platform.sim.now} cycles ({ref_wall * 1000:.1f} ms wall)")
    for master_id, collector in collectors.items():
        print(f"  core {master_id}: {len(collector)} trace events")

    print("\n=== 2. Translate traces to TG programs ===")
    programs = translate_traces(collectors, N_CORES)
    for master_id, program in programs.items():
        image = assemble_binary(program)
        print(f"  core {master_id}: {len(program)} TG instructions, "
              f".bin image {len(image)} bytes")
    print("\n  First lines of core 1's .tgp program:")
    for line in programs[1].to_tgp().splitlines()[:16]:
        print(f"    {line}")

    print("\n=== 3. TG simulation ===")
    tg_platform = build_tg_platform(programs, N_CORES, "ahb")
    start = time.perf_counter()
    tg_platform.run()
    tg_wall = time.perf_counter() - start
    tg_cycles = tg_platform.cumulative_execution_time

    print("\n=== 4. Report ===")
    table = Table(["metric", "ARM cores", "TG", "delta"])
    table.add_row("cumulative cycles", ref_cycles, tg_cycles,
                  f"{abs(tg_cycles - ref_cycles) / ref_cycles:.2%} error")
    table.add_row("wall time", f"{ref_wall * 1000:.1f} ms",
                  f"{tg_wall * 1000:.1f} ms",
                  f"{ref_wall / tg_wall:.2f}x gain")
    table.add_row("simulator events", platform.sim.events_fired,
                  tg_platform.sim.events_fired,
                  f"{platform.sim.events_fired / tg_platform.sim.events_fired:.2f}x")
    print(table.render())
    print("\nThe TG system reproduced the cores' communication within "
          f"{abs(tg_cycles - ref_cycles) / ref_cycles:.2%} "
          "of the reference cycle count.")


if __name__ == "__main__":
    main()
