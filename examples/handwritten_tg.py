#!/usr/bin/env python3
"""Hand-written TG programs — the paper's closing suggestion.

"The TG might be used in association with manually written programs to
generate traffic patterns typical of IP cores still in the design phase,
helping in the tuning of the communication performance."

This example hand-writes two TG programs — a bursty DMA-style streamer
and a latency-sensitive polling agent — runs them against two
interconnects, and reports the latency statistics a NoC architect would
look at.

Run:  python examples/handwritten_tg.py
"""

from repro.core import (
    Cond,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
)
from repro.core.isa import ADDRREG, DATAREG, RDREG, TEMPREG
from repro.ocp import LatencyMonitor
from repro.platform import (
    MparmPlatform,
    PlatformConfig,
    SEM_BASE,
    SHARED_BASE,
)
from repro.stats import Table


def I(op, **kwargs):  # noqa: E743 - terse builder
    return TGInstruction(op, **kwargs)


def bounded_dma_streamer(core_id, bursts=16, period=40):
    """Same traffic, with the loop unrolled so it terminates."""
    program = TGProgram(core_id=core_id)
    pool = program.add_pool([0xD0 + i for i in range(8)])
    base = SHARED_BASE + 0x800 + core_id * 0x400
    program.append(I(TGOp.SET_REGISTER, a=ADDRREG, imm=base))
    for _ in range(bursts):
        program.append(I(TGOp.BURST_WRITE, a=ADDRREG, b=8, imm=pool))
        program.append(I(TGOp.IDLE, imm=period))
    program.append(I(TGOp.HALT))
    return program


def polling_agent(core_id, acquisitions=8, hold=25):
    """Repeatedly acquires/releases a semaphore with idle gaps."""
    program = TGProgram(core_id=core_id)
    program.append(I(TGOp.SET_REGISTER, a=ADDRREG, imm=SEM_BASE))
    program.append(I(TGOp.SET_REGISTER, a=TEMPREG, imm=1))
    program.append(I(TGOp.SET_REGISTER, a=DATAREG, imm=1))
    for _ in range(acquisitions):
        loop = program.label_next(f"acq_{len(program.instructions)}")
        program.append(I(TGOp.READ, a=ADDRREG))
        program.append(I(TGOp.IF, a=RDREG, b=TEMPREG,
                         cond=int(Cond.NE), imm=loop))
        program.append(I(TGOp.IDLE, imm=hold))
        program.append(I(TGOp.WRITE, a=ADDRREG, b=DATAREG))
        program.append(I(TGOp.IDLE, imm=10))
    program.append(I(TGOp.HALT))
    return program


def evaluate(fabric):
    platform = MparmPlatform(PlatformConfig(n_masters=3,
                                            interconnect=fabric))
    masters = [
        TGMaster(platform.sim, "dma0", bounded_dma_streamer(0)),
        TGMaster(platform.sim, "dma1", bounded_dma_streamer(1, period=30)),
        TGMaster(platform.sim, "agent", polling_agent(2)),
    ]
    monitors = []
    for master in masters:
        monitor = LatencyMonitor()
        master.port.attach_monitor(monitor)
        platform.add_master(master)
        monitors.append(monitor)
    platform.run()
    return platform, monitors


def main():
    table = Table(["fabric", "master", "transactions",
                   "mean accept wait", "mean read latency",
                   "max read latency"],
                  title="Hand-written TG traffic on two interconnects")
    for fabric in ("ahb", "xpipes"):
        platform, monitors = evaluate(fabric)
        for name, monitor in zip(("dma0", "dma1", "polling agent"),
                                 monitors):
            table.add_row(
                fabric, name, monitor.request_count,
                f"{monitor.mean_accept_latency:.1f} cy",
                f"{monitor.mean_response_latency:.1f} cy",
                f"{monitor.max_response_latency} cy")
    print(table.render())
    print("\nThe same synthetic workload, described once as TG programs, "
          "characterises any fabric model plugged underneath.")


if __name__ == "__main__":
    main()
