#!/usr/bin/env python3
"""Figure 2 of the paper, reproduced as annotated event timelines.

(a) a master and its private slave: posted write, blocking read, and a
    read stalled behind the unfinished write at the slave interface;
(b) two masters polling a hardware semaphore: the unlock timing decides
    how many polls the loser issues — the reactive behaviour TGs must
    regenerate.

Run:  python examples/transaction_timelines.py
"""

from repro.kernel import Simulator
from repro.interconnect import AddressMap, AmbaAhbBus
from repro.memory import MemorySlave, SemaphoreBank, SlaveTimings
from repro.ocp import OCPMasterPort, OCPSlavePort, RecordingMonitor


def build_system(slave_first_beat=6):
    sim = Simulator()
    amap = AddressMap()
    slave = MemorySlave(sim, "slave", 0x0, 0x1000,
                        SlaveTimings(first_beat=slave_first_beat))
    sem = SemaphoreBank(sim, "semaphore", 0x8000, 1, SlaveTimings(1, 1))
    amap.add(slave.base, slave.size_bytes,
             OCPSlavePort(sim, "slave.port", slave), "slave")
    amap.add(sem.base, sem.size_bytes,
             OCPSlavePort(sim, "sem.port", sem), "sem")
    bus = AmbaAhbBus(sim, address_map=amap, arbiter_policy="round_robin")
    ports = []
    monitors = []
    for master_id in range(2):
        port = OCPMasterPort(sim, f"M{master_id + 1}")
        port.bind(bus, master_id)
        monitor = RecordingMonitor()
        port.attach_monitor(monitor)
        ports.append(port)
        monitors.append(monitor)
    return sim, ports, monitors


def print_timeline(title, monitor, sim_now):
    print(f"\n--- {title} ---")
    print("cycle  event")
    for event in monitor.events:
        kind, time, request = event[0], event[1], event[2]
        name = {"REQ": "command", "ACC": "accepted",
                "RESP": "response"}[kind]
        data = ""
        if kind == "RESP":
            data = f" data=0x{event[3].word:x}"
        print(f"{time:5d}  {request.cmd.value:3s} 0x{request.addr:04x} "
              f"{name}{data}")
    print(f"{sim_now:5d}  (end)")


def figure_2a():
    print("=" * 64)
    print("Figure 2(a): master <-> private slave")
    print("=" * 64)
    sim, ports, monitors = build_system()

    def master(port):
        # WR: posted — returns at accept, the slave keeps servicing
        yield from port.write(0x100, 0xAA)
        yield 3  # local processing ("Wait time")
        # RD: blocking — pays network latency + slave access both ways
        yield from port.read(0x100)
        yield 4
        # WR immediately followed by RD: the RD is stalled at the slave
        yield from port.write(0x200, 0xBB)
        yield 1
        yield from port.read(0x200)

    sim.spawn(master(ports[0]))
    sim.run()
    print_timeline("M1 OCP interface", monitors[0], sim.now)
    print("\nNote the last read's response time: it includes the "
          "preceding write still being serviced by the slave — the "
          "'stalled' case of Figure 2(a).  From the master's (and the "
          "TG's) view it is just a longer response latency.")


def figure_2b(unlock_delay):
    print("\n" + "=" * 64)
    print(f"Figure 2(b): two masters, one semaphore "
          f"(critical section = {unlock_delay} cycles)")
    print("=" * 64)
    sim, ports, monitors = build_system()
    polls = []

    def m1(port):
        yield from port.read(0x8000)        # locks (reads 1)
        yield unlock_delay                  # critical section
        yield from port.write(0x8000, 1)    # unlock

    def m2(port):
        yield 6
        while True:
            value = yield from port.read(0x8000)
            polls.append(value)
            if value == 1:
                return
            yield 3                         # poll pacing

    sim.spawn(m1(ports[0]))
    sim.spawn(m2(ports[1]))
    sim.run()
    print_timeline("M1 (locks, then unlocks)", monitors[0], sim.now)
    print_timeline("M2 (polls until granted)", monitors[1], sim.now)
    print(f"\nM2 issued {len(polls)} poll reads "
          f"({len(polls) - 1} failed, 1 successful).")
    return len(polls)


def main():
    figure_2a()
    short = figure_2b(unlock_delay=25)
    long = figure_2b(unlock_delay=90)
    print("\n" + "=" * 64)
    print(f"Reactiveness: {short} polls with a short critical section vs "
          f"{long} with a long one.\nA trace replay would always issue the "
          "recorded number — a reactive TG regenerates the right amount.")


if __name__ == "__main__":
    main()
