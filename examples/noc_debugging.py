#!/usr/bin/env python3
"""The debugging workflow: timelines, waveforms, drift analysis.

The paper promises "a fast and effective NoC development and debugging
environment".  This example exercises the debug tooling on a real
reference-vs-TG pair:

1. ASCII transaction timelines of the first synchronisation phase;
2. a VCD waveform (open ``noc_debug.vcd`` in GTKWave);
3. a per-transaction drift report comparing the TG's traffic against the
   cores' — the tool that quantifies Table 2's "Error" at transaction
   granularity.

Run:  python examples/noc_debugging.py
"""

from repro.apps import mp_matrix
from repro.harness import (
    build_tg_platform,
    reference_run,
    translate_traces,
)
from repro.stats import (
    compare_traces,
    drift_report,
    export_vcd,
    lanes_from_collectors,
    render_timeline,
)
from repro.trace import collect_traces, group_events

N_CORES = 2
PARAMS = {"n": 4}


def main():
    print("Reference simulation (cores, traced)...")
    _, ref_collectors, _ = reference_run(mp_matrix, N_CORES,
                                         app_params=PARAMS)
    print("TG simulation (traced again, for comparison)...")
    programs = translate_traces(ref_collectors, N_CORES)
    tg_platform = build_tg_platform(programs, N_CORES)
    tg_collectors = collect_traces(tg_platform)
    tg_platform.run()

    print("\n--- 1. Transaction timeline (first 300 cycles, cores) ---")
    lanes = lanes_from_collectors(ref_collectors, group_events)
    print(render_timeline(lanes, width=70, start_ns=0, end_ns=1500))

    print("\n--- 2. VCD export ---")
    export_vcd(lanes, path="noc_debug.vcd")
    print("wrote noc_debug.vcd (3 signals per master: state/addr/wait)")

    print("\n--- 3. TG-vs-core drift analysis ---")
    for core_id in range(N_CORES):
        comparison = compare_traces(
            group_events(ref_collectors[core_id].events),
            group_events(tg_collectors[core_id].events))
        summary = comparison.summary()
        print(f"core {core_id}: structure match = "
              f"{summary['structure_matches']}, aligned "
              f"{summary['aligned_transactions']} txns, final drift "
              f"{summary['final_drift_cycles']} cycles, max |drift| "
              f"{summary['max_abs_drift_cycles']}")
        curve = drift_report(comparison, buckets=6)
        print("  drift curve: "
              + "  ".join(f"{label}:{value:+d}" for label, value in curve))
    print("\nDrift stays within a handful of cycles end to end — the "
          "transaction-level view behind the sub-1% Table-2 error.")


if __name__ == "__main__":
    main()
