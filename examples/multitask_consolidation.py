#!/usr/bin/env python3
"""Future work, implemented: multiple traced tasks on one processor.

Paper §7: "Research will also include analysis of the behavior of a
system in which multiple tasks run on a single processor and are
dynamically scheduled by an OS, either based upon timeslices (preemptive
multitasking) or upon transition to a sleep state followed by awakening
on interrupt receipt."

This example traces a 2-core Cacheloop system, then asks: what happens to
total runtime if both workloads are consolidated onto a *single*
processor socket?  The two translated TG programs run as tasks of one
:class:`~repro.core.multitask.MultitaskTGMaster` under both scheduling
policies, with context-switch costs modelled.

Run:  python examples/multitask_consolidation.py
"""

from repro.apps import cacheloop
from repro.core import MultitaskTGMaster, TGInstruction, TGMaster, TGOp, TGProgram
from repro.harness import reference_run, translate_traces
from repro.platform import MparmPlatform, PlatformConfig
from repro.stats import Table


def idle_filler(sim, name):
    """A TG that immediately halts (keeps the second socket populated)."""
    return TGMaster(sim, name, TGProgram(
        core_id=1, instructions=[TGInstruction(TGOp.HALT)]))


def consolidated_run(programs, scheduler, **kwargs):
    platform = MparmPlatform(PlatformConfig(n_masters=2))
    multitask = MultitaskTGMaster(platform.sim, "cpu0",
                                  [programs[0], programs[1]],
                                  scheduler=scheduler, **kwargs)
    platform.add_master(multitask)
    platform.add_master(idle_filler(platform.sim, "empty_socket"))
    platform.run()
    return multitask


def main():
    print("Tracing the 2-core reference system...")
    platform, collectors, _ = reference_run(cacheloop, 2,
                                            app_params={"iters": 400})
    two_core_time = platform.sim.now
    programs = translate_traces(collectors, 2)
    print(f"  2 cores in parallel finish at cycle {two_core_time}\n")

    table = Table(["configuration", "total cycles", "task end times",
                   "context switches"],
                  title="Consolidating two traced workloads onto one core")
    table.add_row("2 separate cores (reference)", two_core_time,
                  str(platform.completion_times), "-")
    for scheduler, kwargs in (
            ("timeslice", {"timeslice": 64, "context_switch_cycles": 8}),
            ("timeslice", {"timeslice": 16, "context_switch_cycles": 8}),
            ("sleep", {"sleep_threshold": 32, "context_switch_cycles": 8})):
        multitask = consolidated_run(programs, scheduler, **kwargs)
        label = scheduler
        if scheduler == "timeslice":
            label += f" (quantum {kwargs['timeslice']})"
        table.add_row(f"1 core, {label}", multitask.completion_time,
                      str(multitask.task_completion_times),
                      multitask.context_switches)
    print(table.render())
    print("\nConsolidation roughly doubles the busy time (one core doing "
          "two cores' work)\nwhile the scheduler and context-switch cost "
          "decide the exact penalty —\nthe trade-off the paper's future "
          "work wanted to study.")


if __name__ == "__main__":
    main()
