#!/usr/bin/env python3
"""Fault campaign: one warm-up simulation, N branched fault scenarios.

A fault campaign sweeps many seeded fault scenarios over the *same*
workload.  Without checkpoints every scenario re-simulates the healthy
warm-up phase; with them the warm-up runs ONCE, a snapshot captures the
fully-warmed platform at a quiescent cycle, and each scenario *branches*
from that snapshot with a fresh fault injector (its own spec + seed).
All architectural state — TG registers and program counters, memory
contents, traffic counters — continues from the warm-up; only the fault
sequence differs between branches.

The script asserts the economics: the kernel event counter of every
branch starts exactly at the warm-up's count, i.e. the warm-up events
were simulated once, not once per scenario.

Run:  python examples/fault_campaign.py
"""

from repro.apps import mp_matrix
from repro.faults import RetryPolicy
from repro.harness import (
    branch,
    build_tg_platform,
    platform_recipe,
    reference_run,
    translate_traces,
)
from repro.stats import Table

WARMUP_CYCLES = 3000
SCENARIOS = {
    # scenario name -> (fault spec, seed)
    "shared-err p=2%": ({"slave_errors": [
        {"slave": "shared", "probability": 0.02}]}, 1),
    "shared-err p=5%": ({"slave_errors": [
        {"slave": "shared", "probability": 0.05}]}, 2),
    "bus jitter 0-3": ({"link_faults": [{"jitter": 3}]}, 3),
    "err + jitter": ({"slave_errors": [
        {"slave": "shared", "probability": 0.02}],
        "link_faults": [{"jitter": 2}]}, 4),
}
RETRY = RetryPolicy(max_attempts=4, backoff=2, backoff_factor=2,
                    on_exhaust="degrade")


def main():
    print("=== Warm-up: trace mp_matrix, simulate healthy to cycle "
          f"{WARMUP_CYCLES}, snapshot once ===")
    _, collectors, _ = reference_run(mp_matrix, 2, "ahb")
    programs = translate_traces(collectors, 2)
    warmup = build_tg_platform(programs, 2, "ahb", retry_policy=RETRY)
    warmup.run(until=WARMUP_CYCLES)
    recipe = platform_recipe(programs, 2, "ahb", retry_policy=RETRY)
    payload = warmup.snapshot(recipe)
    warmup_events = payload["kernel"]["events_fired"]
    print(f"snapshot at quiescent cycle {payload['cycle']} "
          f"({warmup_events} events simulated once)\n")

    table = Table(["scenario", "seed", "cycles", "faults", "retries",
                   "degraded"])
    for name, (spec, seed) in SCENARIOS.items():
        scenario = branch(payload, fault_spec=spec, fault_seed=seed)
        # the branch resumes at the snapshot, it does not re-simulate:
        assert scenario.sim.events_fired == warmup_events, \
            "branch re-simulated the warm-up"
        assert scenario.sim.now == payload["cycle"]
        scenario.run()
        counters = scenario.resilience_counters().as_dict()
        faults = scenario.fault_injector.faults_injected
        table.add_row(name, seed, scenario.sim.now, faults,
                      counters["retries"],
                      counters["degraded_transactions"])
    print(table.render())

    # a faultless branch is simply the uninterrupted healthy run
    baseline = build_tg_platform(programs, 2, "ahb", retry_policy=RETRY)
    baseline.run()
    control = branch(payload)
    assert control.sim.events_fired == warmup_events
    control.run()
    assert control.sim.now == baseline.sim.now
    assert control.stats_summary() == baseline.stats_summary()
    print(f"\ncontrol branch == uninterrupted healthy run "
          f"({control.sim.now} cycles) — warm-up cost paid once for "
          f"{len(SCENARIOS) + 1} scenarios")


if __name__ == "__main__":
    main()
