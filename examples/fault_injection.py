#!/usr/bin/env python3
"""Fault injection: replay a healthy trace on a degraded platform.

The paper's decoupling — capture behaviour once, replay it anywhere —
also covers *adverse* conditions: the trace is collected on a healthy
reference platform, then the TG replay runs against an interconnect
and memories that error, jitter and stall on purpose.  The TGs absorb
injected slave errors with exponential-backoff retries, every decision
comes from one seeded RNG (same spec + seed = byte-identical run), and
the platform reports exactly what went wrong and what it cost.

Run:  python examples/fault_injection.py
"""

from repro.apps import mp_matrix
from repro.faults import FaultSpec, RetryPolicy
from repro.harness import resilience_demo, tg_flow
from repro.stats import resilience_report

#: The shared memory errors every 5th read; every AHB hop can jitter.
DEGRADED = {
    "slave_errors": [{"slave": "shared", "nth": 5}],
    "link_faults": [{"fabric": "ahb", "jitter": 1}],
}


def main():
    print("=== TG replay under injected faults ===\n")
    demo = resilience_demo(mp_matrix, n_cores=2, app_params={"n": 4},
                           fault_spec=DEGRADED, fault_seed=1)
    print(f"benchmark          : {demo['benchmark']} "
          f"({demo['n_cores']} cores, {demo['interconnect']})")
    print(f"healthy TG cycles  : {demo['healthy_tg_cycles']}")
    print(f"degraded TG cycles : {demo['degraded_tg_cycles']} "
          f"({demo['slowdown']:.2f}x slowdown)")
    print(f"completed          : {demo['completed']}\n")

    print("Where the cycles went:\n")
    result = tg_flow(mp_matrix, 2, app_params={"n": 4},
                     fault_spec=FaultSpec.from_dict(DEGRADED), fault_seed=1,
                     retry_policy=RetryPolicy(max_attempts=4, backoff=2,
                                              backoff_factor=2,
                                              on_exhaust="degrade"),
                     watchdog_cycles=50_000)
    print(resilience_report(result.tg_platform.resilience_counters()))

    print("\nSame spec, same seed — the degradation replays identically:")
    again = tg_flow(mp_matrix, 2, app_params={"n": 4},
                    fault_spec=FaultSpec.from_dict(DEGRADED), fault_seed=1,
                    retry_policy=RetryPolicy(max_attempts=4, backoff=2,
                                             backoff_factor=2,
                                             on_exhaust="degrade"),
                    watchdog_cycles=50_000)
    print(f"  run 1: {result.tg_cycles} TG cycles   "
          f"run 2: {again.tg_cycles} TG cycles   "
          f"identical: {result.tg_cycles == again.tg_cycles}")


if __name__ == "__main__":
    main()
