#!/usr/bin/env python3
"""Figure 3 of the paper: a .trc trace and its translated TG program.

Feeds the translator the exact transaction shape of Figure 3(a) —
including the semaphore-polling sequence — and prints the .trc text next
to the generated .tgp program, then assembles it to a .bin image.  The
files are also written to ./fig3_output/.

Run:  python examples/trace_to_program.py
"""

import os

from repro.core.assembler import assemble_binary, disassemble_binary
from repro.ocp.types import OCPCommand
from repro.trace import (
    Phase,
    TraceEvent,
    Translator,
    TranslatorOptions,
    serialize_trc,
)

SEM_ADDR = 0x0000_00FC  # "polling a semaphore!!" location of Figure 3


def figure3_events():
    """The trace of Figure 3(a), with accept records added."""
    events = []
    uid = [0]

    def read(addr, req, resp, data):
        u = uid[0]
        uid[0] += 1
        events.extend([
            TraceEvent(Phase.REQ, req, OCPCommand.READ, addr, 1, None, u),
            TraceEvent(Phase.ACC, req + 5, OCPCommand.READ, addr, 1,
                       None, u),
            TraceEvent(Phase.RESP, resp, OCPCommand.READ, addr, 1,
                       data, u),
        ])

    def write(addr, req, data):
        u = uid[0]
        uid[0] += 1
        events.extend([
            TraceEvent(Phase.REQ, req, OCPCommand.WRITE, addr, 1, data, u),
            TraceEvent(Phase.ACC, req + 5, OCPCommand.WRITE, addr, 1,
                       None, u),
        ])

    # ; Simple RD/WR/WRNP
    read(0x0000_0104, 55, 75, 0x0880_00F0)
    write(0x0000_0020, 90, 0x0000_0111)
    read(0x0000_0030, 140, 165, 0x0000_2236)
    # ; polling a semaphore!!
    read(SEM_ADDR, 210, 270, 0x0000_0000)
    read(SEM_ADDR, 285, 310, 0x0000_0000)
    read(SEM_ADDR, 325, 340, 0x0000_0001)
    return events


def main():
    events = figure3_events()
    trc_text = serialize_trc(events, master_id=0,
                             header_comment="Figure 3(a) trace")
    options = TranslatorOptions(pollable_ranges=[(SEM_ADDR, 4)])
    program = Translator(options).translate_events(events, core_id=0)
    tgp_text = program.to_tgp()
    image = assemble_binary(program)

    left = trc_text.splitlines()
    right = tgp_text.splitlines()
    width = max(len(line) for line in left) + 4
    print(f"{'(a) .trc trace':<{width}}(b) .tgp program")
    print(f"{'-' * 20:<{width}}{'-' * 20}")
    for index in range(max(len(left), len(right))):
        a = left[index] if index < len(left) else ""
        b = right[index] if index < len(right) else ""
        print(f"{a:<{width}}{b}")

    print(f"\nAssembled .bin image: {len(image)} bytes "
          f"({len(program)} instructions x 2 words + header)")
    assert disassemble_binary(image) == program
    print("Round trip .bin -> program verified.")

    out_dir = "fig3_output"
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "core0.trc"), "w") as handle:
        handle.write(trc_text)
    with open(os.path.join(out_dir, "core0.tgp"), "w") as handle:
        handle.write(tgp_text)
    with open(os.path.join(out_dir, "core0.bin"), "wb") as handle:
        handle.write(image)
    print(f"Wrote {out_dir}/core0.trc, core0.tgp, core0.bin")


if __name__ == "__main__":
    main()
