#!/usr/bin/env python3
"""Load-vs-latency saturation curve from synthetic TG traffic.

Classic NoC characterisation: sweep the offered load of a synthetic
workload and watch the average transaction latency stay flat while the
fabric has headroom, then grow sharply as it saturates.  The TGs are
closed-loop — under contention a generator's next transaction waits for
the previous one, so saturation appears as rising latency (and realised
load falling behind offered load), not as dropped packets.

The same curve is available from the shell via a sweep spec with a
``loads`` axis (see docs/TRAFFIC.md):

    repro-sweep saturation.json --csv curve.csv

Run:  python examples/saturation_curve.py
"""

from repro.apps.synthetic import TrafficSpec, synthetic_flow
from repro.stats import Table

N_CORES = 4
FABRIC = "tlm"
LOADS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
PATTERNS = ["uniform", "hotspot"]


def curve(pattern: str):
    rows = []
    for load in LOADS:
        spec = TrafficSpec(n_cores=N_CORES, pattern=pattern, load=load,
                           transactions=200, seed=42)
        result = synthetic_flow(spec, FABRIC)
        rows.append(result)
    return rows


def ascii_plot(rows, width: int = 40) -> str:
    top = max(r.latency_avg for r in rows)
    lines = []
    for r in rows:
        bar = "#" * max(1, round(r.latency_avg / top * width))
        lines.append(f"  {r.offered_load:4.2f} |{bar:<{width}}| "
                     f"{r.latency_avg:6.1f}")
    return "\n".join(lines)


def main():
    for pattern in PATTERNS:
        rows = curve(pattern)
        table = Table(["load", "scheduled", "realised", "TG cycles",
                       "avg latency", "max latency", "words/kcyc"],
                      title=f"{pattern} traffic, {N_CORES} TGs on "
                            f"{FABRIC}")
        for r in rows:
            table.add_row(f"{r.offered_load:.2f}",
                          f"{r.scheduled_load:.3f}",
                          f"{r.realised_load:.3f}", r.tg_cycles,
                          f"{r.latency_avg:.1f}", r.latency_max,
                          f"{r.throughput_wpkc:.1f}")
        print(table.render())
        print()
        print("  average latency vs offered load:")
        print(ascii_plot(rows))
        print()


if __name__ == "__main__":
    main()
