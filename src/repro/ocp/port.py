"""OCP master and slave ports.

The master port is the exchange point of the whole methodology: an IP core
and a traffic generator drive the *same* port API, so swapping one for the
other (paper Figure 1) touches nothing else in the system.
"""

from typing import List, Optional

from repro.kernel import Component, Simulator
from repro.ocp.types import OCPCommand, OCPError, Request


class OCPMasterPort(Component):
    """Master-side OCP interface.

    A master drives transactions with ``yield from port.transaction(req)``.
    The generator returns when:

    * **writes** — the command (and write data) has been *accepted*
      downstream: posted-write semantics, but with back-pressure, so
      congestion delays the master exactly as it would delay a real core;
    * **reads** — the response data has arrived back at the port: blocking
      semantics, as in MPARM.

    Monitors attached with :meth:`attach_monitor` see every protocol phase.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._fabric = None
        self._master_id: Optional[int] = None
        self._monitors: List = []
        self.transactions_issued = 0

    # ----------------------------------------------------------- wiring

    def bind(self, fabric, master_id: int) -> None:
        """Connect this port to an interconnect as master ``master_id``."""
        if self._fabric is not None:
            raise OCPError(f"port {self.name!r} is already bound")
        self._fabric = fabric
        self._master_id = master_id

    @property
    def master_id(self) -> Optional[int]:
        return self._master_id

    @property
    def is_bound(self) -> bool:
        return self._fabric is not None

    def attach_monitor(self, monitor) -> None:
        """Register a :class:`~repro.ocp.monitor.PortMonitor`."""
        self._monitors.append(monitor)

    def detach_monitor(self, monitor) -> None:
        self._monitors.remove(monitor)

    # ------------------------------------------------------- transactions

    def transaction(self, request: Request):
        """Run one OCP transaction (generator; drive with ``yield from``).

        Returns the :class:`Response` for reads, ``None`` for writes.
        """
        if self._fabric is None:
            raise OCPError(f"port {self.name!r} is not bound to a fabric")
        request.master_id = self._master_id
        request.issue_time = self.sim.now
        if self._monitors:
            for monitor in self._monitors:
                monitor.on_request(self.sim.now, request)
            request.on_accept = lambda: self._notify_accept(request)
        else:
            request.on_accept = lambda: self._record_accept(request)
        self.transactions_issued += 1
        response = yield from self._fabric.transport(self._master_id, request)
        if request.cmd.is_read:
            if response is None:
                raise OCPError(f"fabric returned no response for {request!r}")
            for monitor in self._monitors:
                monitor.on_response(self.sim.now, request, response)
            return response
        return None

    # convenience wrappers -------------------------------------------------

    def read(self, addr: int):
        """Blocking single-word read; returns the data word."""
        response = yield from self.transaction(Request(OCPCommand.READ, addr))
        return response.word

    def write(self, addr: int, data: int):
        """Posted single-word write; returns once the command is accepted."""
        yield from self.transaction(Request(OCPCommand.WRITE, addr, data))

    def burst_read(self, addr: int, count: int):
        """Blocking burst read of ``count`` words; returns the data list."""
        response = yield from self.transaction(
            Request(OCPCommand.BURST_READ, addr, burst_len=count))
        return response.words

    def burst_write(self, addr: int, data: List[int]):
        """Posted burst write of ``len(data)`` words."""
        yield from self.transaction(
            Request(OCPCommand.BURST_WRITE, addr, list(data),
                    burst_len=len(data)))

    # ------------------------------------------------------------ internal

    def _record_accept(self, request: Request) -> None:
        request.accept_time = self.sim.now

    def _notify_accept(self, request: Request) -> None:
        request.accept_time = self.sim.now
        for monitor in self._monitors:
            monitor.on_accept(self.sim.now, request)


class OCPSlavePort(Component):
    """Slave-side OCP interface wrapping a slave model.

    The port serialises accesses: while one transaction is in service, later
    arrivals wait.  This reproduces the Figure 2(a) behaviour where a read
    arriving behind an unfinished write is stalled at the slave interface
    and the stall simply appears as response latency to the master.

    The wrapped slave model must provide ``access(request)`` as a generator
    yielding its internal access time and returning a :class:`Response`.
    """

    def __init__(self, sim: Simulator, name: str, slave):
        super().__init__(sim, name)
        self.slave = slave
        self._busy = False
        self._free = sim.signal(f"{name}.free")
        self.accesses_served = 0

    @property
    def busy(self) -> bool:
        return self._busy

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        return {"accesses_served": self.accesses_served}

    def load_state(self, state: dict) -> None:
        from repro.kernel.snapshot import state_get
        self.accesses_served = state_get(state, "accesses_served",
                                         self.name)
        self._busy = False

    def checkpoint_blockers(self):
        return ["access in service"] if self._busy else []

    # --------------------------------------------------------------- serve

    def access(self, request: Request):
        """Serve one request (generator); serialises concurrent accesses."""
        while self._busy:
            yield self._free
        self._busy = True
        try:
            response = yield from self.slave.access(request)
        finally:
            self._busy = False
            self._free.notify()
        self.accesses_served += 1
        return response
