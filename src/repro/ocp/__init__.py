"""OCP-style core/interconnect interface.

The paper (and MPARM) use the Open Core Protocol at the boundary between IP
cores and the interconnect, precisely so cores and traffic generators are
interchangeable (Figure 1).  This package models OCP at the transaction
level that the TG methodology needs:

* a **request phase** (master presents a command),
* a **command accept** (interconnect/slave takes the command — posted writes
  release the master here), and
* a **response phase** (read data returns to the master).

Masters own an :class:`OCPMasterPort`; slaves sit behind an
:class:`OCPSlavePort` which serialises concurrent accesses (one transaction
in service at a time — the "stalled at the slave interface" behaviour of
Figure 2(a)).  Monitors attached to a master port observe all three phases
with cycle timestamps; the trace collector in :mod:`repro.trace` is such a
monitor.
"""

from repro.ocp.types import (
    BYTE_MASK,
    WORD_BYTES,
    WORD_MASK,
    OCPCommand,
    OCPError,
    Request,
    Response,
)
from repro.ocp.port import OCPMasterPort, OCPSlavePort
from repro.ocp.monitor import LatencyMonitor, PortMonitor, RecordingMonitor
from repro.ocp.checker import ProtocolChecker, ProtocolViolation

__all__ = [
    "BYTE_MASK",
    "LatencyMonitor",
    "ProtocolChecker",
    "ProtocolViolation",
    "OCPCommand",
    "OCPError",
    "OCPMasterPort",
    "OCPSlavePort",
    "PortMonitor",
    "RecordingMonitor",
    "Request",
    "Response",
    "WORD_BYTES",
    "WORD_MASK",
]
