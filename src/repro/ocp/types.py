"""OCP transaction datatypes: commands, requests, responses."""

import enum
import itertools
from typing import Callable, List, Optional, Union

#: Bytes per data word.  The platform is a 32-bit system throughout.
WORD_BYTES = 4
#: Mask for a 32-bit data word / address.
WORD_MASK = 0xFFFFFFFF
#: Mask for a byte.
BYTE_MASK = 0xFF


class OCPError(Exception):
    """Protocol-level error: bad command, unmapped address, malformed burst."""


class OCPCommand(enum.Enum):
    """Transaction commands supported at the OCP interface.

    This mirrors the subset the TG instruction set exposes (paper Table 1):
    single and burst reads and writes.
    """

    READ = "RD"
    WRITE = "WR"
    BURST_READ = "BRD"
    BURST_WRITE = "BWR"

    @property
    def is_read(self) -> bool:
        return self in (OCPCommand.READ, OCPCommand.BURST_READ)

    @property
    def is_write(self) -> bool:
        return self in (OCPCommand.WRITE, OCPCommand.BURST_WRITE)

    @property
    def is_burst(self) -> bool:
        return self in (OCPCommand.BURST_READ, OCPCommand.BURST_WRITE)


_request_ids = itertools.count()


class Request:
    """An OCP request as presented by a master.

    Attributes:
        cmd: The :class:`OCPCommand`.
        addr: Byte address (word aligned) of the first beat.
        data: ``None`` for reads, an int for WRITE, a list of ints for
            BURST_WRITE (``len == burst_len``).
        burst_len: Number of beats; 1 for single transfers.
        master_id: Set by the master port when the request is issued.
        uid: Unique id, for tracing and debugging.
        issue_time: Cycle at which the master presented the request.
        accept_time: Cycle at which the command was accepted (wins
            arbitration and is taken by the slave); filled in by the fabric.
        on_accept: Optional callback the fabric invokes at accept time;
            used by the master port to notify monitors.
    """

    __slots__ = ("cmd", "addr", "data", "burst_len", "master_id", "uid",
                 "issue_time", "accept_time", "on_accept")

    def __init__(self, cmd: OCPCommand, addr: int,
                 data: Union[None, int, List[int]] = None,
                 burst_len: int = 1):
        if addr % WORD_BYTES != 0:
            raise OCPError(f"unaligned address 0x{addr:08x}")
        if addr < 0 or addr > WORD_MASK:
            raise OCPError(f"address 0x{addr:x} outside 32-bit space")
        if burst_len < 1:
            raise OCPError(f"burst_len must be >= 1, got {burst_len}")
        if cmd.is_burst and burst_len < 2:
            raise OCPError("burst commands need burst_len >= 2")
        if not cmd.is_burst and burst_len != 1:
            raise OCPError("single transfers must have burst_len == 1")
        if cmd == OCPCommand.WRITE:
            if not isinstance(data, int):
                raise OCPError("WRITE needs a single int data word")
        elif cmd == OCPCommand.BURST_WRITE:
            if not isinstance(data, list) or len(data) != burst_len:
                raise OCPError("BURST_WRITE needs a data list of burst_len words")
        elif data is not None:
            raise OCPError(f"{cmd.value} must not carry data")
        self.cmd = cmd
        self.addr = addr
        self.data = data
        self.burst_len = burst_len
        self.master_id: Optional[int] = None
        self.uid = next(_request_ids)
        self.issue_time: Optional[int] = None
        self.accept_time: Optional[int] = None
        self.on_accept: Optional[Callable[[], None]] = None

    @property
    def beat_addresses(self) -> List[int]:
        """Word-aligned byte address of every beat of the transfer."""
        return [self.addr + i * WORD_BYTES for i in range(self.burst_len)]

    def __repr__(self) -> str:
        return (f"<Request #{self.uid} {self.cmd.value} 0x{self.addr:08x} "
                f"len={self.burst_len}>")


class Response:
    """Response to a read (single word or list of burst beats)."""

    __slots__ = ("request", "data", "error")

    def __init__(self, request: Request,
                 data: Union[None, int, List[int]] = None,
                 error: bool = False):
        self.request = request
        self.data = data
        self.error = error

    @property
    def word(self) -> int:
        """The single data word (first beat for bursts)."""
        if isinstance(self.data, list):
            return self.data[0]
        if self.data is None:
            raise OCPError("response carries no data")
        return self.data

    @property
    def words(self) -> List[int]:
        """All data beats as a list."""
        if isinstance(self.data, list):
            return self.data
        if self.data is None:
            return []
        return [self.data]

    def __repr__(self) -> str:
        flag = " ERROR" if self.error else ""
        return f"<Response to #{self.request.uid}{flag} data={self.data!r}>"
