"""Assertion-based OCP protocol checking.

A :class:`ProtocolChecker` is a port monitor that enforces the protocol
contract every fabric must honour, raising :class:`ProtocolViolation`
the moment a rule breaks — assertion-based verification for the
transaction layer.  Rules:

1. phases per transaction occur in order: REQ → ACC (→ RESP for reads);
2. every ACC/RESP matches an outstanding REQ (no orphans, no duplicates);
3. reads get exactly one response; writes get none;
4. a blocking master has at most ``max_outstanding`` transactions in
   flight (1 for armlet cores and plain TGs; more for OOO masters);
5. timestamps never decrease;
6. read responses carry data of the right beat count.

Attach to any master port; all substrate test suites run their fabrics
under a checker, so a protocol regression fails loudly rather than as a
mysterious timing drift.
"""

from typing import Dict

from repro.ocp.monitor import PortMonitor
from repro.ocp.types import OCPError, Request, Response


class ProtocolViolation(OCPError):
    """An OCP protocol rule was broken at a master interface."""


class _Outstanding:
    __slots__ = ("request", "accepted", "req_time")

    def __init__(self, request: Request, req_time: int):
        self.request = request
        self.accepted = False
        self.req_time = req_time


class ProtocolChecker(PortMonitor):
    """Raises :class:`ProtocolViolation` on any protocol break."""

    def __init__(self, name: str = "checker", max_outstanding: int = 1):
        if max_outstanding < 1:
            raise OCPError("max_outstanding must be >= 1")
        self.name = name
        self.max_outstanding = max_outstanding
        self._in_flight: Dict[int, _Outstanding] = {}
        self._last_time: int = -1
        self.transactions_checked = 0

    # ------------------------------------------------------------- helpers

    def _check_time(self, time: int, what: str) -> None:
        if time < self._last_time:
            raise ProtocolViolation(
                f"{self.name}: {what} at cycle {time} before previous "
                f"event at {self._last_time}")
        self._last_time = time

    # --------------------------------------------------------------- hooks

    def on_request(self, time: int, request: Request) -> None:
        self._check_time(time, "request")
        if request.uid in self._in_flight:
            raise ProtocolViolation(
                f"{self.name}: duplicate request for uid {request.uid}")
        if len(self._in_flight) >= self.max_outstanding:
            raise ProtocolViolation(
                f"{self.name}: {len(self._in_flight) + 1} transactions in "
                f"flight exceeds max_outstanding={self.max_outstanding}")
        self._in_flight[request.uid] = _Outstanding(request, time)

    def on_accept(self, time: int, request: Request) -> None:
        self._check_time(time, "accept")
        entry = self._in_flight.get(request.uid)
        if entry is None:
            raise ProtocolViolation(
                f"{self.name}: accept without request (uid {request.uid})")
        if entry.accepted:
            raise ProtocolViolation(
                f"{self.name}: double accept (uid {request.uid})")
        entry.accepted = True
        if request.cmd.is_write:
            # write completes at accept from the master's view
            del self._in_flight[request.uid]
            self.transactions_checked += 1

    def on_response(self, time: int, request: Request,
                    response: Response) -> None:
        self._check_time(time, "response")
        entry = self._in_flight.get(request.uid)
        if entry is None:
            raise ProtocolViolation(
                f"{self.name}: response without outstanding read "
                f"(uid {request.uid})")
        if not request.cmd.is_read:
            raise ProtocolViolation(
                f"{self.name}: response to a write (uid {request.uid})")
        if not entry.accepted:
            raise ProtocolViolation(
                f"{self.name}: response before accept (uid {request.uid})")
        beats = len(response.words)
        if beats != request.burst_len:
            raise ProtocolViolation(
                f"{self.name}: read of {request.burst_len} beat(s) got "
                f"{beats} data word(s)")
        del self._in_flight[request.uid]
        self.transactions_checked += 1

    # ------------------------------------------------------------- queries

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def assert_quiescent(self) -> None:
        """Raise unless every observed transaction completed."""
        if self._in_flight:
            uids = sorted(self._in_flight)
            raise ProtocolViolation(
                f"{self.name}: {len(uids)} transaction(s) never "
                f"completed: uids {uids[:8]}")
