"""Monitors observing OCP master ports.

A monitor receives the three protocol phases with cycle timestamps.  The
trace collector (:mod:`repro.trace.collector`) is the production monitor;
this module provides the protocol base plus two simple implementations used
by tests and statistics.
"""

from typing import List, Tuple

from repro.ocp.types import Request, Response


class PortMonitor:
    """Interface for OCP master-port observers (all hooks optional)."""

    def on_request(self, time: int, request: Request) -> None:
        """Master presented ``request`` at cycle ``time``."""

    def on_accept(self, time: int, request: Request) -> None:
        """Command was accepted downstream at cycle ``time``."""

    def on_response(self, time: int, request: Request,
                    response: Response) -> None:
        """Read response arrived back at the port at cycle ``time``."""


class RecordingMonitor(PortMonitor):
    """Keeps every observed phase in a list of tuples (for tests)."""

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def on_request(self, time, request):
        self.events.append(("REQ", time, request))

    def on_accept(self, time, request):
        self.events.append(("ACC", time, request))

    def on_response(self, time, request, response):
        self.events.append(("RESP", time, request, response))

    def of_kind(self, kind: str) -> List[Tuple]:
        return [event for event in self.events if event[0] == kind]


class LatencyMonitor(PortMonitor):
    """Aggregates per-transaction latency statistics.

    * ``accept_latency``: request → accept (arbitration + fabric delay);
    * ``response_latency``: request → response (full round trip, reads only).
    """

    def __init__(self) -> None:
        self.accept_latencies: List[int] = []
        self.response_latencies: List[int] = []
        self.request_count = 0

    def on_request(self, time, request):
        self.request_count += 1

    def on_accept(self, time, request):
        if request.issue_time is not None:
            self.accept_latencies.append(time - request.issue_time)

    def on_response(self, time, request, response):
        if request.issue_time is not None:
            self.response_latencies.append(time - request.issue_time)

    @staticmethod
    def _mean(values: List[int]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_accept_latency(self) -> float:
        return self._mean(self.accept_latencies)

    @property
    def mean_response_latency(self) -> float:
        return self._mean(self.response_latencies)

    @property
    def max_response_latency(self) -> int:
        return max(self.response_latencies) if self.response_latencies else 0
