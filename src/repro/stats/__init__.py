"""Measurement and reporting utilities.

* :mod:`repro.stats.counters` — latency/throughput aggregation used by the
  analysis tooling (histograms, percentiles, bandwidth);
* :mod:`repro.stats.reporting` — fixed-width table rendering for the
  experiment harness (Table-2-style output) and trace summaries.
"""

from repro.stats.counters import (
    Histogram,
    LatencyStats,
    ResilienceCounters,
    trace_summary,
)
from repro.stats.compare import (
    TraceComparison,
    collapse_polls,
    compare_traces,
    drift_report,
)
from repro.stats.energy import EnergyCoefficients, estimate_energy
from repro.stats.reporting import Table, format_table, resilience_report
from repro.stats.timeline import lanes_from_collectors, render_timeline
from repro.stats.vcd import export_vcd

__all__ = [
    "EnergyCoefficients",
    "Histogram",
    "LatencyStats",
    "ResilienceCounters",
    "Table",
    "TraceComparison",
    "collapse_polls",
    "compare_traces",
    "drift_report",
    "estimate_energy",
    "export_vcd",
    "format_table",
    "lanes_from_collectors",
    "resilience_report",
    "render_timeline",
    "trace_summary",
]
