"""Fixed-width table rendering for experiment reports."""

from typing import List, Mapping, Optional, Sequence


class Table:
    """A simple column-aligned text table (Table-2-style output)."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []
        self._sections: List[int] = []  # row indices before which a rule goes

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, "
                             f"got {len(cells)}")
        self.rows.append([str(cell) for cell in cells])

    def add_section(self, label: str) -> None:
        """Start a labelled section (like Table 2's per-benchmark blocks)."""
        self._sections.append(len(self.rows))
        self.rows.append([label] + [""] * (len(self.headers) - 1))

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells):
            return "  ".join(cell.ljust(width)
                             for cell, width in zip(cells, widths)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = []
        if self.title:
            out.append(self.title)
            out.append("=" * len(self.title))
        out.append(line(self.headers))
        out.append(rule)
        for index, row in enumerate(self.rows):
            if index in self._sections:
                out.append(rule)
            out.append(line(row))
        return "\n".join(out)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """One-shot convenience wrapper over :class:`Table`."""
    table = Table(headers, title)
    for row in rows:
        table.add_row(*row)
    return table.render()


#: Display order and labels for :func:`resilience_report`.
_RESILIENCE_ROWS = (
    ("faults_injected", "faults injected (total)"),
    ("slave_errors_injected", "slave error responses injected"),
    ("hop_faults_injected", "interconnect hops perturbed"),
    ("hop_delay_cycles", "extra hop cycles injected"),
    ("hop_stalls_injected", "transient link stalls"),
    ("sem_drops_injected", "semaphore releases dropped"),
    ("sem_delays_injected", "semaphore releases delayed"),
    ("error_responses", "error responses seen by masters"),
    ("retries", "transactions retried"),
    ("retry_backoff_cycles", "backoff cycles spent"),
    ("degraded_transactions", "transactions degraded"),
    ("watchdog_trips", "watchdog trips"),
)


def resilience_report(counters: Mapping[str, int],
                      title: str = "Fault injection / resilience") -> str:
    """Render a resilience-counter mapping (or a
    :class:`~repro.stats.counters.ResilienceCounters`) as a table,
    omitting all-zero rows except the headline total."""
    if hasattr(counters, "as_dict"):
        counters = counters.as_dict()
    table = Table(["counter", "value"], title=title)
    for key, label in _RESILIENCE_ROWS:
        value = counters.get(key, 0)
        if value or key == "faults_injected":
            table.add_row(label, value)
    return table.render()
