"""First-order interconnect energy estimation.

Design-space exploration weighs latency *and* energy; this module adds an
ORION-style activity-based estimate on top of the counters the fabrics
already maintain:

* shared bus (AHB/STBus): energy per transferred beat (the long shared
  wires dominate) plus a per-grant arbitration cost;
* NoC (×pipes): energy per flit-hop (router switch + link) plus a
  per-flit network-interface cost;
* memory/device slaves: energy per accessed beat.

The per-event coefficients are configurable; the defaults are
representative 0.13 µm-era relative magnitudes (the paper's period).
Absolute joules are not the point — *relative* fabric comparisons under
identical workloads are.
"""

from typing import Dict

from repro.interconnect import (
    AmbaAhbBus,
    STBusFabric,
    TlmFabric,
    XpipesNoc,
)


class EnergyCoefficients:
    """Per-event energies in picojoules."""

    __slots__ = ("bus_beat", "bus_arbitration", "flit_hop", "ni_flit",
                 "slave_beat")

    def __init__(self, bus_beat: float = 4.0, bus_arbitration: float = 0.8,
                 flit_hop: float = 1.2, ni_flit: float = 0.6,
                 slave_beat: float = 2.5):
        self.bus_beat = bus_beat
        self.bus_arbitration = bus_arbitration
        self.flit_hop = flit_hop
        self.ni_flit = ni_flit
        self.slave_beat = slave_beat


def estimate_energy(platform,
                    coefficients: EnergyCoefficients = None
                    ) -> Dict[str, float]:
    """Estimate the interconnect + memory energy of a finished run.

    Returns a breakdown in pJ: ``fabric``, ``slaves``, ``total``, plus
    fabric-specific detail fields.
    """
    c = coefficients or EnergyCoefficients()
    fabric = platform.fabric
    detail: Dict[str, float] = {}
    if isinstance(fabric, XpipesNoc):
        hops = fabric.total_flits_routed
        # every routed flit passed one injecting and one ejecting NI; we
        # charge NI work once per flit-hop, a conservative upper bound
        fabric_pj = hops * c.flit_hop + hops * c.ni_flit
        detail["flit_hops"] = hops
    elif isinstance(fabric, (AmbaAhbBus,)):
        beats = fabric.stats.beats_transferred
        grants = fabric.arbiter.grants
        fabric_pj = beats * c.bus_beat + grants * c.bus_arbitration
        detail["bus_beats"] = beats
        detail["arbitrations"] = grants
    elif isinstance(fabric, STBusFabric):
        beats = fabric.stats.beats_transferred
        grants = sum(arb.grants for arb in fabric._slave_arbiters.values())
        fabric_pj = beats * c.bus_beat + grants * c.bus_arbitration
        detail["bus_beats"] = beats
        detail["arbitrations"] = grants
    elif isinstance(fabric, TlmFabric):
        beats = fabric.stats.beats_transferred
        fabric_pj = beats * c.bus_beat
        detail["bus_beats"] = beats
    else:  # pragma: no cover - all shipped fabrics handled
        raise TypeError(f"unknown fabric {type(fabric).__name__}")

    slave_beats = 0
    for range_ in platform.address_map.ranges:
        slave = range_.slave_port.slave
        slave_beats += slave.reads + slave.writes
    slaves_pj = slave_beats * c.slave_beat

    result = {
        "fabric_pj": round(fabric_pj, 2),
        "slaves_pj": round(slaves_pj, 2),
        "total_pj": round(fabric_pj + slaves_pj, 2),
        "slave_beats": slave_beats,
    }
    result.update(detail)
    return result
