"""VCD (Value Change Dump) export of transaction activity.

Writes IEEE-1364-style VCD files viewable in GTKWave and friends — the
natural debugging artefact for the "fast and effective NoC development
and debugging environment" the paper promises.  Each master contributes
three signals:

* ``<name>_state``  — 3-bit command code (0 idle, 1 RD, 2 WR, 3 BRD,
  4 BWR), asserted from request to unblock;
* ``<name>_addr``   — 32-bit transaction address (valid while active);
* ``<name>_wait``   — 1-bit flag set while the master is stalled waiting
  for the interconnect (request to unblock), i.e. the time DSE wants to
  minimise.

The timescale is one simulation cycle (5 ns).
"""

from typing import Dict, List, Optional

from repro.kernel.simulator import CYCLE_NS
from repro.ocp.types import OCPCommand
from repro.trace.events import Transaction

_STATE_CODE = {
    OCPCommand.READ: 1,
    OCPCommand.WRITE: 2,
    OCPCommand.BURST_READ: 3,
    OCPCommand.BURST_WRITE: 4,
}

_ID_ALPHABET = [chr(code) for code in range(33, 127)]


def _identifier(index: int) -> str:
    """Short printable VCD identifier for variable ``index``."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[digit])
    return "".join(chars)


def _bits(value: int, width: int) -> str:
    return format(value, f"0{width}b")


def export_vcd(lanes: Dict[str, List[Transaction]],
               path: Optional[str] = None,
               module: str = "system") -> str:
    """Render (and optionally write) a VCD for per-master transactions.

    Args:
        lanes: ``{master label: transactions}``.
        path: When given, the text is also written to this file.

    Returns the VCD text.
    """
    header = [
        "$date repro trace export $end",
        "$version repro 1.0 $end",
        f"$timescale {CYCLE_NS}ns $end",
        f"$scope module {module} $end",
    ]
    variables = {}
    index = 0
    for label in lanes:
        ids = {}
        for suffix, width in (("state", 3), ("addr", 32), ("wait", 1)):
            ident = _identifier(index)
            index += 1
            header.append(f"$var wire {width} {ident} "
                          f"{label}_{suffix} $end")
            ids[suffix] = ident
        variables[label] = ids
    header.append("$upscope $end")
    header.append("$enddefinitions $end")

    changes: Dict[int, List[str]] = {}

    def emit(cycle: int, text: str) -> None:
        changes.setdefault(cycle, []).append(text)

    for label, txns in lanes.items():
        ids = variables[label]
        emit(0, f"b000 {ids['state']}")
        emit(0, f"b{_bits(0, 32)} {ids['addr']}")
        emit(0, f"0{ids['wait']}")
        for txn in txns:
            start = txn.req_ns // CYCLE_NS
            end = txn.unblock_ns // CYCLE_NS
            emit(start, f"b{_bits(_STATE_CODE[txn.cmd], 3)} "
                        f"{ids['state']}")
            emit(start, f"b{_bits(txn.addr, 32)} {ids['addr']}")
            emit(start, f"1{ids['wait']}")
            emit(max(end, start + 1), f"b000 {ids['state']}")
            emit(max(end, start + 1), f"0{ids['wait']}")

    body = []
    for cycle in sorted(changes):
        body.append(f"#{cycle}")
        # last write wins per variable within one timestamp
        seen = {}
        for line in changes[cycle]:
            seen[line.split()[-1] if " " in line else line[1:]] = line
        body.extend(seen.values())
    text = "\n".join(header + body) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
