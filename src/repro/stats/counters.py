"""Latency statistics, resilience counters and trace summaries."""

from typing import Dict, List, Mapping, Optional

from repro.ocp.types import OCPCommand
from repro.trace.events import Transaction


class ResilienceCounters:
    """Error/retry/timeout/injected-fault counters for one platform run.

    Aggregates the per-component counts maintained by the
    :class:`~repro.faults.FaultInjector` and by resilient TG masters into
    one flat, stable-keyed mapping, so an experiment can assert e.g.
    "N faults injected, M retried, 0 watchdog trips" and two seeded runs
    can be compared for byte-identical degradation stats.
    """

    FIELDS = (
        # injected by the fault layer
        "slave_errors_injected",
        "hop_faults_injected",
        "hop_delay_cycles",
        "hop_stalls_injected",
        "sem_drops_injected",
        "sem_delays_injected",
        # observed / recovered at the masters
        "error_responses",
        "retries",
        "retry_backoff_cycles",
        "degraded_transactions",
        "watchdog_trips",
    )

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def update(self, counts: Mapping[str, int]) -> "ResilienceCounters":
        """Accumulate a mapping of counter name -> count (unknown keys are
        rejected so typos in a component cannot silently vanish)."""
        for key, value in counts.items():
            if key not in self.FIELDS:
                raise KeyError(f"unknown resilience counter {key!r}; "
                               f"known: {list(self.FIELDS)}")
            setattr(self, key, getattr(self, key) + value)
        return self

    @property
    def faults_injected(self) -> int:
        return (self.slave_errors_injected + self.hop_faults_injected
                + self.sem_drops_injected + self.sem_delays_injected)

    @property
    def any_activity(self) -> bool:
        return any(getattr(self, field) for field in self.FIELDS)

    def as_dict(self) -> Dict[str, int]:
        counters = {field: getattr(self, field) for field in self.FIELDS}
        counters["faults_injected"] = self.faults_injected
        return counters


class LatencyStats:
    """Streaming aggregation of integer samples (cycles)."""

    def __init__(self) -> None:
        self._samples: List[int] = []

    def add(self, value: int) -> None:
        self._samples.append(value)

    def extend(self, values) -> None:
        self._samples.extend(values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> int:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._samples else 0.0

    @property
    def minimum(self) -> int:
        return min(self._samples) if self._samples else 0

    @property
    def maximum(self) -> int:
        return max(self._samples) if self._samples else 0

    def percentile(self, q: float) -> int:
        """q in [0, 100]; nearest-rank percentile."""
        if not self._samples:
            return 0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def median(self) -> int:
        return self.percentile(50)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "min": self.minimum,
            "p50": self.median,
            "p95": self.percentile(95),
            "max": self.maximum,
        }


class Histogram:
    """Fixed-width-bin histogram over non-negative integer samples."""

    def __init__(self, bin_width: int = 1):
        if bin_width < 1:
            raise ValueError("bin width must be >= 1")
        self.bin_width = bin_width
        self.bins: Dict[int, int] = {}
        self.count = 0

    def add(self, value: int) -> None:
        index = value // self.bin_width
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1

    def items(self):
        """Sorted ``(bin_start, count)`` pairs."""
        return [(index * self.bin_width, count)
                for index, count in sorted(self.bins.items())]

    def mode_bin(self) -> Optional[int]:
        """Start of the most populated bin, or None when empty."""
        if not self.bins:
            return None
        index = max(self.bins, key=lambda i: (self.bins[i], -i))
        return index * self.bin_width


def trace_summary(transactions: List[Transaction],
                  cycle_ns: int = 5) -> Dict[str, object]:
    """Aggregate a master's trace: mix, latencies, idle time, bandwidth."""
    reads = LatencyStats()
    writes = LatencyStats()
    gaps = LatencyStats()
    counts = {cmd: 0 for cmd in OCPCommand}
    beats = 0
    previous: Optional[Transaction] = None
    for txn in transactions:
        counts[txn.cmd] += 1
        beats += txn.burst_len
        latency = (txn.unblock_ns - txn.req_ns) // cycle_ns
        (reads if txn.cmd.is_read else writes).add(latency)
        if previous is not None:
            gaps.add(max(0, (txn.req_ns - previous.unblock_ns) // cycle_ns))
        previous = txn
    duration = (transactions[-1].unblock_ns // cycle_ns
                if transactions else 0)
    return {
        "transactions": len(transactions),
        "beats": beats,
        "mix": {cmd.value: counts[cmd] for cmd in OCPCommand if counts[cmd]},
        "read_latency": reads.summary(),
        "write_latency": writes.summary(),
        "idle_gaps": gaps.summary(),
        "duration_cycles": duration,
        "beats_per_kcycle": (round(1000 * beats / duration, 2)
                             if duration else 0.0),
    }
