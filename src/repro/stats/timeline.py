"""ASCII transaction timelines: a Gantt-style view of master activity.

Renders what paper Figure 2 draws by hand: for each master, a lane of
characters over time where ``R``/``W`` mark a read/write in flight
(request → unblock), ``#`` marks burst transfers, and ``.`` is idle.
Useful when debugging why a TG's traffic diverges from its core's.
"""

from typing import Dict, List, Optional

from repro.ocp.types import OCPCommand
from repro.trace.events import Transaction

_GLYPH = {
    OCPCommand.READ: "R",
    OCPCommand.WRITE: "W",
    OCPCommand.BURST_READ: "#",
    OCPCommand.BURST_WRITE: "#",
}


def render_timeline(lanes: Dict[str, List[Transaction]],
                    width: int = 72,
                    start_ns: Optional[int] = None,
                    end_ns: Optional[int] = None,
                    cycle_ns: int = 5) -> str:
    """Render one lane per master.

    Args:
        lanes: ``{label: transactions}`` per master.
        width: Characters available for the time axis.
        start_ns / end_ns: Window to render (defaults to the full span).
    """
    all_txns = [txn for txns in lanes.values() for txn in txns]
    if not all_txns:
        return "(no transactions)"
    lo = start_ns if start_ns is not None else min(t.req_ns
                                                   for t in all_txns)
    hi = end_ns if end_ns is not None else max(t.unblock_ns
                                               for t in all_txns)
    if hi <= lo:
        hi = lo + 1
    span = hi - lo
    label_width = max(len(label) for label in lanes)

    def column(time_ns: int) -> int:
        return min(width - 1, max(0, (time_ns - lo) * width // span))

    lines = []
    header = " " * (label_width + 2) + _axis(lo, hi, width, cycle_ns)
    lines.append(header)
    for label, txns in lanes.items():
        lane = ["."] * width
        for txn in txns:
            glyph = _GLYPH[txn.cmd]
            first = column(txn.req_ns)
            last = column(txn.unblock_ns)
            for index in range(first, last + 1):
                lane[index] = glyph
        lines.append(f"{label.ljust(label_width)}  {''.join(lane)}")
    legend = (" " * (label_width + 2)
              + "R=read  W=write  #=burst  .=idle "
              + f"({span // cycle_ns} cycles shown)")
    lines.append(legend)
    return "\n".join(lines)


def _axis(lo: int, hi: int, width: int, cycle_ns: int) -> str:
    left = f"|{lo // cycle_ns}"
    right = f"{hi // cycle_ns}|"
    middle = " " * max(1, width - len(left) - len(right))
    return (left + middle + right)[:width + 2]


def lanes_from_collectors(collectors, group) -> Dict[str, List[Transaction]]:
    """Build render lanes from ``{master_id: TraceCollector}``."""
    lanes = {}
    for master_id, collector in sorted(collectors.items()):
        lanes[f"M{master_id}"] = group(collector.events)
    return lanes
