"""Trace comparison: quantify how faithfully a TG reproduced a core.

Used to debug accuracy (Table-2 "Error") at transaction granularity: align
the reference core's trace with the TG's trace and report per-transaction
timing drift.  Polling sequences are collapsed before alignment, because a
reactive TG legitimately issues a *different number* of polls — comparing
them positionally would be meaningless.
"""

from typing import Dict, List, Optional, Tuple

from repro.ocp.types import OCPCommand
from repro.stats.counters import LatencyStats
from repro.trace.events import Transaction


def collapse_polls(transactions: List[Transaction]) -> List[Transaction]:
    """Drop all but the last of consecutive single reads to one address.

    This canonicalises both a core's and a TG's stream to the same shape:
    the surviving read is the successful poll (or the lone read, for
    non-polled locations — harmless, since consecutive duplicate reads
    carry no extra alignment information either way).
    """
    collapsed: List[Transaction] = []
    for txn in transactions:
        if (collapsed
                and txn.cmd == OCPCommand.READ
                and collapsed[-1].cmd == OCPCommand.READ
                and collapsed[-1].addr == txn.addr):
            collapsed[-1] = txn
        else:
            collapsed.append(txn)
    return collapsed


class TraceComparison:
    """Result of :func:`compare_traces`."""

    def __init__(self) -> None:
        self.aligned = 0
        self.ref_total = 0
        self.tg_total = 0
        self.structure_matches = False
        self.first_mismatch: Optional[int] = None
        self.drifts = LatencyStats()       # signed, in cycles
        self.drift_series: List[int] = []

    @property
    def final_drift(self) -> int:
        return self.drift_series[-1] if self.drift_series else 0

    @property
    def max_abs_drift(self) -> int:
        return max((abs(value) for value in self.drift_series), default=0)

    def summary(self) -> Dict[str, object]:
        return {
            "structure_matches": self.structure_matches,
            "aligned_transactions": self.aligned,
            "ref_transactions": self.ref_total,
            "tg_transactions": self.tg_total,
            "first_mismatch": self.first_mismatch,
            "final_drift_cycles": self.final_drift,
            "max_abs_drift_cycles": self.max_abs_drift,
            "mean_drift_cycles": round(self.drifts.mean, 2),
        }


def compare_traces(reference: List[Transaction],
                   generated: List[Transaction],
                   cycle_ns: int = 5) -> TraceComparison:
    """Align two transaction streams and measure timing drift.

    Both streams are poll-collapsed first.  ``structure_matches`` is True
    when the collapsed streams agree on (command, address, burst length)
    at every position; drift is ``tg_request - ref_request`` in cycles for
    each aligned pair (positive = the TG ran late).
    """
    ref = collapse_polls(reference)
    gen = collapse_polls(generated)
    result = TraceComparison()
    result.ref_total = len(reference)
    result.tg_total = len(generated)
    limit = min(len(ref), len(gen))
    matches = True
    for index in range(limit):
        a, b = ref[index], gen[index]
        if (a.cmd, a.addr, a.burst_len) != (b.cmd, b.addr, b.burst_len):
            matches = False
            if result.first_mismatch is None:
                result.first_mismatch = index
            break
        drift = (b.req_ns - a.req_ns) // cycle_ns
        result.drifts.add(drift)
        result.drift_series.append(drift)
        result.aligned += 1
    if len(ref) != len(gen):
        matches = False
        if result.first_mismatch is None:
            result.first_mismatch = limit
    result.structure_matches = matches
    return result


def drift_report(comparison: TraceComparison,
                 buckets: int = 8) -> List[Tuple[str, int]]:
    """Down-sampled drift curve: ``(position label, drift)`` pairs."""
    series = comparison.drift_series
    if not series:
        return []
    step = max(1, len(series) // buckets)
    report = []
    for start in range(0, len(series), step):
        report.append((f"txn {start}", series[start]))
    report.append((f"txn {len(series) - 1}", series[-1]))
    return report
