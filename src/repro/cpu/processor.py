"""The armlet multi-cycle in-order core.

Timing model (deterministic, so inter-transaction gaps are a pure function
of the instruction stream — the property the TG translator relies on):

* 1 cycle base per instruction (fetch/decode/execute, pipelined);
* ``EXTRA_CYCLES`` for long ops (MUL);
* +1 cycle for a taken branch (pipeline refill);
* loads/stores add their memory-system time: zero extra on a cache hit,
  a full OCP transaction on misses and uncached accesses.

Uncached regions (shared memory, semaphores, barrier) are defined by the
``uncached`` predicate supplied by the platform.
"""

from typing import Callable, Dict, Optional

from repro.kernel import Component, Simulator
from repro.cpu.cache import Cache
from repro.cpu.isa import (
    BRANCH_TAKEN_PENALTY,
    EXTRA_CYCLES,
    AsmError,
    IllegalInstruction,
    Instruction,
    LR,
    NUM_REGS,
    Op,
    decode,
)
from repro.ocp import OCPMasterPort
from repro.ocp.types import OCPError, WORD_BYTES, WORD_MASK

_SIGN_BIT = 0x8000_0000


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & _SIGN_BIT else value


class CoreConfig:
    """Processor tuning knobs."""

    __slots__ = ("core_id",)

    def __init__(self, core_id: int = 0):
        self.core_id = core_id


class Processor(Component):
    """In-order armlet core executing from memory through its caches."""

    def __init__(self, sim: Simulator, name: str, port: OCPMasterPort,
                 icache: Cache, dcache: Cache,
                 uncached: Callable[[int], bool],
                 config: Optional[CoreConfig] = None):
        super().__init__(sim, name)
        self.port = port
        self.icache = icache
        self.dcache = dcache
        self.uncached = uncached
        self.config = config or CoreConfig()
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.flag_z = False
        self.flag_lt = False
        self.halted = False
        self.halt_time: Optional[int] = None
        self.instructions_executed = 0
        self.loads = 0
        self.stores = 0
        self._decode_memo: Dict[int, Instruction] = {}

    # ------------------------------------------------------------ control

    def reset(self, entry: int) -> None:
        """Prepare for execution starting at ``entry``."""
        self.regs = [0] * NUM_REGS
        self.pc = entry
        self.flag_z = False
        self.flag_lt = False
        self.halted = False
        self.halt_time = None

    def run(self):
        """Main execution process (generator for :meth:`Simulator.spawn`)."""
        while not self.halted:
            word = yield from self._fetch(self.pc)
            instr = self._decode(word)
            self.pc = (self.pc + WORD_BYTES) & WORD_MASK
            yield 1  # base cost
            extra = yield from self._execute(instr)
            if extra:
                yield extra
            self.instructions_executed += 1
        self.halt_time = self.sim.now
        return self.halt_time

    # ----------------------------------------------------------- internals

    def _decode(self, word: int) -> Instruction:
        instr = self._decode_memo.get(word)
        if instr is None:
            try:
                instr = decode(word)
            except AsmError as error:
                # a corrupted image or a wild jump landed execution on a
                # non-instruction word — report *where*, not just what
                raise IllegalInstruction(
                    f"{self.name}: illegal instruction word 0x{word:08x} "
                    f"at pc 0x{self.pc:08x}: {error}") from None
            self._decode_memo[word] = instr
        return instr

    def _fetch(self, addr: int):
        if self.uncached(addr):
            value = yield from self.port.read(addr)
            return value
        value = yield from self.icache.read(addr)
        return value

    def _load(self, addr: int):
        self.loads += 1
        if self.uncached(addr):
            value = yield from self.port.read(addr)
            return value
        value = yield from self.dcache.read(addr)
        return value

    def _store(self, addr: int, value: int):
        self.stores += 1
        if self.uncached(addr):
            yield from self.port.write(addr, value)
            return
        yield from self.dcache.write(addr, value)

    def _set_flags(self, a: int, b: int) -> None:
        self.flag_z = a == b
        self.flag_lt = _signed(a) < _signed(b)

    def _branch(self, instr: Instruction) -> int:
        """Apply a branch; returns the taken penalty (0 if not taken)."""
        op = instr.op
        take = (
            op == Op.B or op == Op.BL
            or (op == Op.BEQ and self.flag_z)
            or (op == Op.BNE and not self.flag_z)
            or (op == Op.BLT and self.flag_lt)
            or (op == Op.BGE and not self.flag_lt)
            or (op == Op.BGT and not self.flag_z and not self.flag_lt)
            or (op == Op.BLE and (self.flag_z or self.flag_lt))
        )
        if not take:
            return 0
        if op == Op.BL:
            self.regs[LR] = self.pc
        self.pc = (self.pc + instr.imm * WORD_BYTES) & WORD_MASK
        return BRANCH_TAKEN_PENALTY

    def _execute(self, instr: Instruction):
        """Execute one instruction (generator); returns extra cycles."""
        op = instr.op
        regs = self.regs
        if op == Op.LDR:
            addr = (regs[instr.rn] + instr.imm) & WORD_MASK
            regs[instr.rd] = yield from self._load(addr)
            return 0
        if op == Op.STR:
            addr = (regs[instr.rn] + instr.imm) & WORD_MASK
            yield from self._store(addr, regs[instr.rd])
            return 0
        if op == Op.ADD:
            regs[instr.rd] = (regs[instr.rn] + regs[instr.rm]) & WORD_MASK
        elif op == Op.ADDI:
            regs[instr.rd] = (regs[instr.rn] + instr.imm) & WORD_MASK
        elif op == Op.SUB:
            regs[instr.rd] = (regs[instr.rn] - regs[instr.rm]) & WORD_MASK
        elif op == Op.SUBI:
            regs[instr.rd] = (regs[instr.rn] - instr.imm) & WORD_MASK
        elif op == Op.MUL:
            regs[instr.rd] = (regs[instr.rn] * regs[instr.rm]) & WORD_MASK
        elif op == Op.AND:
            regs[instr.rd] = regs[instr.rn] & regs[instr.rm]
        elif op == Op.ANDI:
            regs[instr.rd] = regs[instr.rn] & (instr.imm & WORD_MASK)
        elif op == Op.ORR:
            regs[instr.rd] = regs[instr.rn] | regs[instr.rm]
        elif op == Op.ORRI:
            regs[instr.rd] = regs[instr.rn] | (instr.imm & WORD_MASK)
        elif op == Op.EOR:
            regs[instr.rd] = regs[instr.rn] ^ regs[instr.rm]
        elif op == Op.EORI:
            regs[instr.rd] = regs[instr.rn] ^ (instr.imm & WORD_MASK)
        elif op == Op.LSL:
            regs[instr.rd] = (regs[instr.rn] << (regs[instr.rm] & 31)) & WORD_MASK
        elif op == Op.LSLI:
            regs[instr.rd] = (regs[instr.rn] << (instr.imm & 31)) & WORD_MASK
        elif op == Op.LSR:
            regs[instr.rd] = regs[instr.rn] >> (regs[instr.rm] & 31)
        elif op == Op.LSRI:
            regs[instr.rd] = regs[instr.rn] >> (instr.imm & 31)
        elif op == Op.MOV:
            regs[instr.rd] = regs[instr.rm]
        elif op == Op.MOVI:
            regs[instr.rd] = instr.imm & 0xFFFF
        elif op == Op.MOVT:
            regs[instr.rd] = (regs[instr.rd] & 0xFFFF) | (instr.imm << 16)
        elif op == Op.CMP:
            self._set_flags(regs[instr.rn], regs[instr.rm])
        elif op == Op.CMPI:
            self._set_flags(regs[instr.rn], instr.imm & WORD_MASK)
        elif op == Op.NOP:
            pass
        elif op == Op.HALT:
            self.halted = True
        elif op == Op.RET:
            self.pc = regs[LR]
            return BRANCH_TAKEN_PENALTY
        elif op in (Op.B, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BGT, Op.BLE,
                    Op.BL):
            return self._branch(instr)
        else:  # pragma: no cover - all opcodes handled above
            raise OCPError(f"unimplemented op {op.name}")
        return EXTRA_CYCLES.get(op, 0)
        yield  # pragma: no cover - keeps _execute a generator
