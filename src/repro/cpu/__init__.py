"""The "armlet" IP-core substrate.

The paper's reference platform runs applications on ARM7 cores; a full ARM
ISS is out of scope here, so this package provides a compact 32-bit in-order
RISC — *armlet* — that reproduces everything the TG methodology cares about
at the core/interconnect boundary:

* blocking loads, posted stores, and cache-refill burst reads over an OCP
  master port;
* separate direct-mapped I- and D-caches (write-through, no write-allocate),
  so in-cache loops generate no bus traffic (the Cacheloop benchmark);
* deterministic multi-cycle instruction timing, so the gap between two
  communication events is a pure function of the executed instructions —
  the property that makes trace-derived TG programs interconnect-portable.

Layers:

* :mod:`repro.cpu.isa` — instruction set, binary encoding and decoding;
* :mod:`repro.cpu.assembler` — two-pass assembler (labels, ``.equ``,
  ``.word``, ``.space``, ``LI`` pseudo-instruction);
* :mod:`repro.cpu.cache` — the I/D cache model;
* :mod:`repro.cpu.processor` — the multi-cycle core;
* :mod:`repro.cpu.core_ip` — core + caches + OCP port, the unit a TG
  replaces.
"""

from repro.cpu.isa import (
    AsmError,
    IllegalInstruction,
    Instruction,
    Op,
    decode,
    encode,
)
from repro.cpu.assembler import AssembledProgram, assemble
from repro.cpu.cache import Cache, CacheConfig
from repro.cpu.processor import CoreConfig, Processor
from repro.cpu.core_ip import CoreIP

__all__ = [
    "AsmError",
    "IllegalInstruction",
    "AssembledProgram",
    "Cache",
    "CacheConfig",
    "CoreConfig",
    "CoreIP",
    "Instruction",
    "Op",
    "Processor",
    "assemble",
    "decode",
    "encode",
]
