"""armlet instruction set: formats, binary encoding, decoding.

A fixed 32-bit encoding with a 6-bit opcode.  Formats:

====== ======================== ===========================================
format fields                   layout (bit positions)
====== ======================== ===========================================
N      --                       op<<26
R      rd, rn, rm               op<<26 | rd<<22 | rn<<18 | rm<<14
R2     rd, rm                   op<<26 | rd<<22 | rm<<14
CR     rn, rm                   op<<26 | rn<<18 | rm<<14
I      rd, rn, simm18           op<<26 | rd<<22 | rn<<18 | imm18
CI     rn, simm18               op<<26 | rn<<18 | imm18
U16    rd, imm16                op<<26 | rd<<22 | imm16
MEM    rd, [rn, simm18]         op<<26 | rd<<22 | rn<<18 | imm18
BR     simm26 (word offset)     op<<26 | imm26
====== ======================== ===========================================

Branch offsets are in *words*, relative to the instruction after the branch
(like ARM's pipeline-relative offsets).  All immediates are two's-complement
except U16, which is zero-extended.
"""

import enum
from typing import Dict, List, NamedTuple, Optional

from repro.ocp.types import WORD_MASK

#: Number of general-purpose registers (r0..r15; r13=sp, r14=lr by convention).
NUM_REGS = 16
SP = 13
LR = 14


class AsmError(Exception):
    """Bad assembly source, encoding overflow, or undecodable word.

    ``errors`` lists every collected defect: :func:`~repro.cpu.assembler.
    assemble` reports *all* the problems of a translation unit in one
    pass, so a single raised ``AsmError`` may carry many.  For a lone
    defect it contains just the exception itself.
    """

    def __init__(self, message: str, errors: Optional[List["AsmError"]] = None):
        super().__init__(message)
        self.errors: List["AsmError"] = list(errors) if errors else [self]

    @classmethod
    def collect(cls, errors: List["AsmError"]) -> "AsmError":
        """One exception summarising every collected defect."""
        if len(errors) == 1:
            return errors[0]
        lines = [f"{len(errors)} assembly errors:"]
        lines.extend(str(error) for error in errors)
        return cls("\n".join(lines), errors=errors)


class IllegalInstruction(AsmError):
    """A fetched word that does not decode (e.g. a corrupted image)."""


class Format(enum.Enum):
    N = "none"
    R = "rd,rn,rm"
    R2 = "rd,rm"
    CR = "rn,rm"
    I = "rd,rn,imm"
    CI = "rn,imm"
    U16 = "rd,imm16"
    MEM = "rd,[rn,imm]"
    BR = "offset"


class Op(enum.IntEnum):
    """Opcodes.  The integer value is the 6-bit binary opcode."""

    NOP = 0
    HALT = 1
    ADD = 2
    SUB = 3
    MUL = 4
    AND = 5
    ORR = 6
    EOR = 7
    LSL = 8
    LSR = 9
    MOV = 10
    CMP = 11
    ADDI = 12
    SUBI = 13
    ANDI = 14
    ORRI = 15
    EORI = 16
    LSLI = 17
    LSRI = 18
    CMPI = 19
    MOVI = 20
    MOVT = 21
    LDR = 22
    STR = 23
    B = 24
    BEQ = 25
    BNE = 26
    BLT = 27
    BGE = 28
    BGT = 29
    BLE = 30
    BL = 31
    RET = 32


#: Encoding format of each opcode.
OP_FORMAT: Dict[Op, Format] = {
    Op.NOP: Format.N,
    Op.HALT: Format.N,
    Op.RET: Format.N,
    Op.ADD: Format.R,
    Op.SUB: Format.R,
    Op.MUL: Format.R,
    Op.AND: Format.R,
    Op.ORR: Format.R,
    Op.EOR: Format.R,
    Op.LSL: Format.R,
    Op.LSR: Format.R,
    Op.MOV: Format.R2,
    Op.CMP: Format.CR,
    Op.ADDI: Format.I,
    Op.SUBI: Format.I,
    Op.ANDI: Format.I,
    Op.ORRI: Format.I,
    Op.EORI: Format.I,
    Op.LSLI: Format.I,
    Op.LSRI: Format.I,
    Op.CMPI: Format.CI,
    Op.MOVI: Format.U16,
    Op.MOVT: Format.U16,
    Op.LDR: Format.MEM,
    Op.STR: Format.MEM,
    Op.B: Format.BR,
    Op.BEQ: Format.BR,
    Op.BNE: Format.BR,
    Op.BLT: Format.BR,
    Op.BGE: Format.BR,
    Op.BGT: Format.BR,
    Op.BLE: Format.BR,
    Op.BL: Format.BR,
}

#: Extra execution cycles beyond the 1-cycle base (taken branches add
#: :data:`BRANCH_TAKEN_PENALTY` dynamically).
EXTRA_CYCLES: Dict[Op, int] = {Op.MUL: 2}

#: Pipeline refill penalty for a taken branch (incl. BL, RET).
BRANCH_TAKEN_PENALTY = 1

BRANCH_OPS = (Op.B, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BGT, Op.BLE, Op.BL)

_IMM18_MIN, _IMM18_MAX = -(1 << 17), (1 << 17) - 1
_IMM26_MIN, _IMM26_MAX = -(1 << 25), (1 << 25) - 1


class Instruction(NamedTuple):
    """A decoded armlet instruction."""

    op: Op
    rd: int = 0
    rn: int = 0
    rm: int = 0
    imm: int = 0

    def __repr__(self) -> str:
        fmt = OP_FORMAT[self.op]
        name = self.op.name
        if fmt == Format.N:
            return name
        if fmt == Format.R:
            return f"{name} r{self.rd}, r{self.rn}, r{self.rm}"
        if fmt == Format.R2:
            return f"{name} r{self.rd}, r{self.rm}"
        if fmt == Format.CR:
            return f"{name} r{self.rn}, r{self.rm}"
        if fmt == Format.I:
            return f"{name} r{self.rd}, r{self.rn}, #{self.imm}"
        if fmt == Format.CI:
            return f"{name} r{self.rn}, #{self.imm}"
        if fmt == Format.U16:
            return f"{name} r{self.rd}, #0x{self.imm:04x}"
        if fmt == Format.MEM:
            return f"{name} r{self.rd}, [r{self.rn}, #{self.imm}]"
        return f"{name} #{self.imm}"


def _check_reg(value: int, what: str) -> None:
    if not 0 <= value < NUM_REGS:
        raise AsmError(f"{what} r{value} out of range (r0..r{NUM_REGS - 1})")


def _to_field(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise AsmError(f"{what} {value} outside signed {bits}-bit range")
    return value & ((1 << bits) - 1)


def _from_field(field: int, bits: int) -> int:
    if field & (1 << (bits - 1)):
        return field - (1 << bits)
    return field


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    op = instr.op
    fmt = OP_FORMAT[op]
    word = int(op) << 26
    if fmt == Format.N:
        return word
    if fmt in (Format.R, Format.R2, Format.CR):
        if fmt != Format.CR:
            _check_reg(instr.rd, "rd")
            word |= instr.rd << 22
        if fmt != Format.R2:
            _check_reg(instr.rn, "rn")
            word |= instr.rn << 18
        _check_reg(instr.rm, "rm")
        word |= instr.rm << 14
        return word
    if fmt in (Format.I, Format.MEM):
        _check_reg(instr.rd, "rd")
        _check_reg(instr.rn, "rn")
        word |= instr.rd << 22
        word |= instr.rn << 18
        word |= _to_field(instr.imm, 18, f"{op.name} immediate")
        return word
    if fmt == Format.CI:
        _check_reg(instr.rn, "rn")
        word |= instr.rn << 18
        word |= _to_field(instr.imm, 18, f"{op.name} immediate")
        return word
    if fmt == Format.U16:
        _check_reg(instr.rd, "rd")
        if not 0 <= instr.imm <= 0xFFFF:
            raise AsmError(f"{op.name} immediate 0x{instr.imm:x} not 16-bit")
        word |= instr.rd << 22
        word |= instr.imm
        return word
    if fmt == Format.BR:
        word |= _to_field(instr.imm, 26, f"{op.name} offset")
        return word
    raise AsmError(f"unhandled format {fmt}")  # pragma: no cover


_OP_BY_CODE: Dict[int, Op] = {int(op): op for op in Op}


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word <= WORD_MASK:
        raise AsmError(f"word 0x{word:x} is not 32-bit")
    code = word >> 26
    op = _OP_BY_CODE.get(code)
    if op is None:
        raise AsmError(f"unknown opcode {code} in word 0x{word:08x}")
    fmt = OP_FORMAT[op]
    rd = (word >> 22) & 0xF
    rn = (word >> 18) & 0xF
    rm = (word >> 14) & 0xF
    if fmt == Format.N:
        return Instruction(op)
    if fmt == Format.R:
        return Instruction(op, rd=rd, rn=rn, rm=rm)
    if fmt == Format.R2:
        return Instruction(op, rd=rd, rm=rm)
    if fmt == Format.CR:
        return Instruction(op, rn=rn, rm=rm)
    if fmt in (Format.I, Format.MEM):
        return Instruction(op, rd=rd, rn=rn,
                           imm=_from_field(word & 0x3FFFF, 18))
    if fmt == Format.CI:
        return Instruction(op, rn=rn, imm=_from_field(word & 0x3FFFF, 18))
    if fmt == Format.U16:
        return Instruction(op, rd=rd, imm=word & 0xFFFF)
    if fmt == Format.BR:
        return Instruction(op, imm=_from_field(word & 0x3FFFFFF, 26))
    raise AsmError(f"unhandled format {fmt}")  # pragma: no cover
