"""Set-associative write-through caches with burst-line refill.

Refills are OCP ``BurstRead`` transactions — exactly the "accurate modeling
of cache refills" the paper lists as a requirement for faithful traffic
replication.  Write policy is write-through/no-write-allocate (every store
reaches memory; a store miss does not allocate), matching the simple ARM7
cache configuration MPARM uses and keeping private memory always coherent
with the cache.

The default geometry is direct-mapped (``ways=1``); higher associativity
with LRU replacement is available as a substrate design-space knob.
"""

from collections import OrderedDict
from typing import Dict, List

from repro.kernel import Component, Simulator
from repro.ocp import OCPMasterPort
from repro.ocp.types import OCPError, WORD_BYTES


class CacheConfig:
    """Geometry of a set-associative cache.

    Args:
        lines: Total number of cache lines (power of two).
        line_words: Words per line (power of two); refill burst length.
        ways: Associativity (power of two, <= lines); LRU replacement.
        hit_cycles: Extra cycles a hit costs (0 = single-cycle pipelined).
    """

    __slots__ = ("lines", "line_words", "ways", "hit_cycles")

    def __init__(self, lines: int = 64, line_words: int = 4,
                 ways: int = 1, hit_cycles: int = 0):
        for value, what in ((lines, "lines"), (line_words, "line_words"),
                            (ways, "ways")):
            if value < 1 or value & (value - 1):
                raise OCPError(f"cache {what} must be a power of two, "
                               f"got {value}")
        if ways > lines:
            raise OCPError(f"ways ({ways}) cannot exceed lines ({lines})")
        if hit_cycles < 0:
            raise OCPError("hit_cycles must be >= 0")
        self.lines = lines
        self.line_words = line_words
        self.ways = ways
        self.hit_cycles = hit_cycles

    @property
    def sets(self) -> int:
        return self.lines // self.ways

    @property
    def line_bytes(self) -> int:
        return self.line_words * WORD_BYTES

    @property
    def size_bytes(self) -> int:
        return self.lines * self.line_bytes

    def __repr__(self) -> str:
        return (f"CacheConfig(lines={self.lines}, "
                f"line_words={self.line_words}, ways={self.ways}, "
                f"hit_cycles={self.hit_cycles})")


class Cache(Component):
    """One set-associative cache (used for both I- and D-side).

    The cache fetches misses over the supplied OCP master port with a burst
    read of one line.  ``read``/``write`` are generators (drive with
    ``yield from``).
    """

    def __init__(self, sim: Simulator, name: str, config: CacheConfig,
                 port: OCPMasterPort):
        super().__init__(sim, name)
        self.config = config
        self.port = port
        # set index -> OrderedDict(tag -> line data); LRU first
        self._sets: Dict[int, "OrderedDict[int, List[int]]"] = {}
        self.hits = 0
        self.misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions = 0

    def _split(self, addr: int):
        line_bytes = self.config.line_bytes
        line_addr = addr - (addr % line_bytes)
        line_number = line_addr // line_bytes
        index = line_number % self.config.sets
        tag = line_number // self.config.sets
        word = (addr % line_bytes) // WORD_BYTES
        return line_addr, index, tag, word

    def _lookup(self, index: int, tag: int, touch: bool = True):
        """Return the line data on hit (updating LRU), else None."""
        ways = self._sets.get(index)
        if ways is None or tag not in ways:
            return None
        if touch:
            ways.move_to_end(tag)
        return ways[tag]

    def _fill(self, index: int, tag: int, data: List[int]) -> None:
        ways = self._sets.setdefault(index, OrderedDict())
        if len(ways) >= self.config.ways:
            ways.popitem(last=False)  # evict LRU
            self.evictions += 1
        ways[tag] = data

    def contains(self, addr: int) -> bool:
        """True when ``addr`` currently hits (no LRU side effects)."""
        _, index, tag, _ = self._split(addr)
        return self._lookup(index, tag, touch=False) is not None

    def read(self, addr: int):
        """Read one word through the cache (generator)."""
        line_addr, index, tag, word = self._split(addr)
        line = self._lookup(index, tag)
        if line is not None:
            self.hits += 1
            if self.config.hit_cycles:
                yield self.config.hit_cycles
            return line[word]
        self.misses += 1
        words = yield from self.port.burst_read(line_addr,
                                                self.config.line_words)
        self._fill(index, tag, list(words))
        return words[word]

    def write(self, addr: int, value: int):
        """Write-through one word (generator); updates a hit line in place."""
        _, index, tag, word = self._split(addr)
        line = self._lookup(index, tag)
        if line is not None:
            self.write_hits += 1
            line[word] = value
        else:
            self.write_misses += 1
        yield from self.port.write(addr, value)

    def invalidate(self) -> None:
        """Drop all lines (used at system reset between runs)."""
        self._sets.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
