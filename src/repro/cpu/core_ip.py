"""The replaceable unit: processor + caches behind one OCP master port.

A :class:`CoreIP` is what Figure 1 of the paper swaps for a TG: everything
on the IP side of the OCP interface.  The platform constructs one per
master, points it at its program entry, and starts it.
"""

from typing import Callable, Optional

from repro.kernel import Component, Simulator
from repro.cpu.assembler import AssembledProgram
from repro.cpu.cache import Cache, CacheConfig
from repro.cpu.processor import CoreConfig, Processor
from repro.ocp import OCPMasterPort


class CoreIP(Component):
    """An armlet IP core: CPU, I-cache, D-cache, and the OCP master port."""

    def __init__(self, sim: Simulator, name: str, core_id: int,
                 uncached: Callable[[int], bool],
                 icache_config: Optional[CacheConfig] = None,
                 dcache_config: Optional[CacheConfig] = None):
        super().__init__(sim, name)
        self.core_id = core_id
        self.port = OCPMasterPort(sim, f"{name}.ocp")
        self.icache = Cache(sim, f"{name}.icache",
                            icache_config or CacheConfig(), self.port)
        self.dcache = Cache(sim, f"{name}.dcache",
                            dcache_config or CacheConfig(), self.port)
        self.cpu = Processor(sim, f"{name}.cpu", self.port, self.icache,
                             self.dcache, uncached, CoreConfig(core_id))
        self._process = None
        self._entry: Optional[int] = None

    def set_program(self, program: AssembledProgram) -> None:
        """Point the core at an assembled program (already loaded in RAM)."""
        self._entry = program.entry

    def set_entry(self, entry: int) -> None:
        """Point the core at a raw entry address."""
        self._entry = entry

    def start(self) -> None:
        """Reset and spawn the execution process."""
        if self._entry is None:
            raise RuntimeError(f"core {self.name!r} has no program")
        self.cpu.reset(self._entry)
        self._process = self.sim.spawn(self.cpu.run(), name=f"{self.name}.run")

    @property
    def process(self):
        return self._process

    @property
    def finished(self) -> bool:
        return self.cpu.halted

    @property
    def completion_time(self) -> Optional[int]:
        """Cycle at which HALT executed (None while running)."""
        return self.cpu.halt_time
