"""Two-pass armlet assembler.

Source syntax::

    ; full-line or trailing comment (also //)
    .equ  NPROC 4            ; named constant (usable in any later expression)
    .word 0x12345678         ; literal data word (labels allowed)
    .space 64                ; reserve bytes (zero-filled, word multiple)

    start:                   ; label (word-aligned code address)
        LI    r1, SHARED+0x40    ; pseudo: MOVI+MOVT, always two words
        MOVI  r2, 0
    loop:
        LDR   r3, [r1, #8]
        ADD   r2, r2, r3
        SUBI  r4, r4, #1
        CMPI  r4, #0
        BNE   loop
        STR   r2, [r1, #12]
        HALT

Expressions are constants, labels, and numbers combined with ``+``/``-``.
Labels evaluate to absolute byte addresses (``base`` + word offset * 4).
Register names: ``r0``..``r15`` plus aliases ``sp`` (r13) and ``lr`` (r14).
Mnemonics are case-insensitive.
"""

import re
from typing import Dict, List, Optional, Tuple

from repro.cpu.isa import (
    AsmError,
    Format,
    Instruction,
    LR,
    OP_FORMAT,
    Op,
    SP,
    decode,
    encode,
)
from repro.ocp.types import WORD_BYTES, WORD_MASK

_REG_ALIASES = {"sp": SP, "lr": LR}
_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class AssembledProgram:
    """Output of :func:`assemble`: encoded words plus symbol information."""

    def __init__(self, words: List[int], base: int,
                 symbols: Dict[str, int], source_map: List[Tuple[int, int]]):
        self.words = words
        self.base = base
        self.symbols = symbols          # label -> absolute byte address
        self.source_map = source_map    # (word index, source line number)

    @property
    def size_bytes(self) -> int:
        return len(self.words) * WORD_BYTES

    @property
    def entry(self) -> int:
        """Execution entry point (the load base)."""
        return self.base

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AsmError(f"unknown label {label!r}") from None

    def disassemble(self) -> List[str]:
        """Human-readable listing (data words shown as .word)."""
        lines = []
        for index, word in enumerate(self.words):
            addr = self.base + index * WORD_BYTES
            try:
                text = repr(decode(word))
            except AsmError:
                text = f".word 0x{word:08x}"
            lines.append(f"0x{addr:08x}: {text}")
        return lines


class _Item:
    """One pass-1 item: an instruction, pseudo-op, or data directive."""

    __slots__ = ("kind", "mnemonic", "operands", "line_no", "word_offset", "size")

    def __init__(self, kind: str, mnemonic: str, operands: List[str],
                 line_no: int, size: int):
        self.kind = kind            # "instr" | "li" | "word" | "space"
        self.mnemonic = mnemonic
        self.operands = operands
        self.line_no = line_no
        self.word_offset = 0
        self.size = size            # in words


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas (brackets kept intact)."""
    parts, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _Evaluator:
    """Evaluates constant expressions over .equ symbols and labels.

    ``.equ`` bodies are stored unevaluated as ``(expression, line)`` and
    resolved on demand with memoisation, so an ``.equ`` may reference
    constants defined later in the file.  Resolution tracks the active
    chain: a self-referential or mutually-recursive ``.equ`` raises a
    located :class:`AsmError` instead of hitting ``RecursionError``, and
    chains deeper than :data:`MAX_EQU_DEPTH` are rejected outright.
    """

    MAX_EQU_DEPTH = 64

    def __init__(self, equs: Dict[str, Tuple[str, int]],
                 labels: Dict[str, int]):
        self.equs = equs
        self.labels = labels
        self._values: Dict[str, int] = {}
        self._resolving: List[str] = []

    def resolve_equ(self, name: str) -> int:
        if name in self._values:
            return self._values[name]
        expression, def_line = self.equs[name]
        if name in self._resolving:
            chain = " -> ".join(self._resolving[
                self._resolving.index(name):] + [name])
            raise AsmError(f"line {def_line}: recursive .equ {name!r} "
                           f"({chain})")
        if len(self._resolving) >= self.MAX_EQU_DEPTH:
            raise AsmError(f"line {def_line}: .equ reference chain deeper "
                           f"than {self.MAX_EQU_DEPTH}")
        self._resolving.append(name)
        try:
            value = self.value(expression, def_line)
        finally:
            self._resolving.pop()
        self._values[name] = value
        return value

    def poison_equ(self, name: str) -> None:
        """Give a failed .equ a placeholder so each use doesn't re-raise."""
        self._values[name] = 0

    def value(self, text: str, line_no: int) -> int:
        text = text.strip()
        if text.startswith("#"):
            text = text[1:].strip()
        tokens = re.split(r"([+-])", text)
        total: Optional[int] = None
        sign = 1
        for token in tokens:
            token = token.strip()
            if token == "":
                continue
            if token == "+":
                sign = 1
                continue
            if token == "-":
                sign = -1
                continue
            term = self._term(token, line_no)
            total = (total or 0) + sign * term
            sign = 1
        if total is None:
            raise AsmError(f"line {line_no}: empty expression")
        return total

    def _term(self, token: str, line_no: int) -> int:
        # terms may be products: NAME*4, 2*WORDS
        if "*" in token:
            product = 1
            for factor in token.split("*"):
                product *= self._atom(factor.strip(), line_no)
            return product
        return self._atom(token, line_no)

    def _atom(self, token: str, line_no: int) -> int:
        try:
            return int(token, 0)
        except ValueError:
            pass
        if token in self.equs:
            return self.resolve_equ(token)
        if token in self.labels:
            return self.labels[token]
        raise AsmError(f"line {line_no}: unknown symbol {token!r}")


def _parse_reg(text: str, line_no: int) -> int:
    token = text.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        value = int(token[1:])
        if 0 <= value <= 15:
            return value
    raise AsmError(f"line {line_no}: bad register {text!r}")


def _parse_mem_operand(text: str, line_no: int) -> Tuple[str, str]:
    """``[rn]`` or ``[rn, expr]`` -> (reg text, offset expr text)."""
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AsmError(f"line {line_no}: bad memory operand {text!r}")
    inner = text[1:-1]
    parts = [p.strip() for p in inner.split(",")]
    if len(parts) == 1:
        return parts[0], "0"
    if len(parts) == 2:
        return parts[0], parts[1]
    raise AsmError(f"line {line_no}: bad memory operand {text!r}")


def assemble(source: str, base: int = 0) -> AssembledProgram:
    """Assemble armlet source text loaded at byte address ``base``.

    Defects do not stop the pass: every collectable error in the unit is
    gathered and the raised :class:`AsmError` carries the full list in
    its ``errors`` attribute (a single defect raises plainly, message
    unchanged).
    """
    if base % WORD_BYTES != 0:
        raise AsmError(f"base 0x{base:x} not word aligned")
    equs: Dict[str, Tuple[str, int]] = {}   # name -> (expression, line)
    labels: Dict[str, int] = {}             # label -> word offset
    items: List[_Item] = []
    errors: List[AsmError] = []
    evaluator = _Evaluator(equs, labels)

    # ------------------------------------------------------------- pass 1
    word_offset = 0
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        try:
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*",
                                 line)
                if not match:
                    break
                label = match.group(1)
                if label in labels or label in equs:
                    raise AsmError(
                        f"line {line_no}: duplicate symbol {label!r}")
                labels[label] = word_offset
                line = line[match.end():]
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            operands = _split_operands(rest)
            if mnemonic == ".equ":
                tokens = rest.split(None, 1)
                if len(tokens) != 2:
                    raise AsmError(f"line {line_no}: .equ needs NAME VALUE")
                name, expr = tokens
                if name in equs or name in labels:
                    raise AsmError(
                        f"line {line_no}: duplicate symbol {name!r}")
                if not _LABEL_RE.match(name):
                    raise AsmError(f"line {line_no}: bad .equ name {name!r}")
                equs[name] = (expr, line_no)
                continue
            if mnemonic == ".word":
                if len(operands) != 1:
                    raise AsmError(
                        f"line {line_no}: .word needs one expression")
                item = _Item("word", mnemonic, operands, line_no, 1)
            elif mnemonic == ".space":
                if len(operands) != 1:
                    raise AsmError(
                        f"line {line_no}: .space needs a byte count")
                nbytes = evaluator.value(operands[0], line_no)
                if nbytes < 0 or nbytes % WORD_BYTES != 0:
                    raise AsmError(f"line {line_no}: .space must be a "
                                   f"non-negative word multiple, got {nbytes}")
                item = _Item("space", mnemonic, operands, line_no,
                             nbytes // WORD_BYTES)
            elif mnemonic == ".align":
                if len(operands) != 1:
                    raise AsmError(
                        f"line {line_no}: .align needs a byte count")
                alignment = evaluator.value(operands[0], line_no)
                if alignment < WORD_BYTES or alignment % WORD_BYTES != 0:
                    raise AsmError(f"line {line_no}: .align must be a word "
                                   f"multiple >= {WORD_BYTES}, "
                                   f"got {alignment}")
                align_words = alignment // WORD_BYTES
                pad = (-word_offset) % align_words
                item = _Item("space", mnemonic, operands, line_no, pad)
            elif mnemonic == "li":
                if len(operands) != 2:
                    raise AsmError(f"line {line_no}: LI needs rd, expr")
                item = _Item("li", mnemonic, operands, line_no, 2)
            else:
                item = _Item("instr", mnemonic, operands, line_no, 1)
        except AsmError as error:
            errors.append(error)
            continue
        item.word_offset = word_offset
        word_offset += item.size
        items.append(item)

    # labels now resolve to absolute byte addresses
    abs_labels = {name: base + offset * WORD_BYTES
                  for name, offset in labels.items()}
    evaluator = _Evaluator(equs, abs_labels)

    # every .equ must resolve even if never used (and a failure must be
    # reported once, not at each use site)
    for name in equs:
        try:
            evaluator.resolve_equ(name)
        except AsmError as error:
            errors.append(error)
            evaluator.poison_equ(name)

    # ------------------------------------------------------------- pass 2
    words: List[int] = []
    source_map: List[Tuple[int, int]] = []

    def emit(word: int, line_no: int) -> None:
        source_map.append((len(words), line_no))
        words.append(word & WORD_MASK)

    for item in items:
        line_no = item.line_no
        try:
            if item.kind == "word":
                emit(evaluator.value(item.operands[0], line_no), line_no)
                continue
            if item.kind == "space":
                for _ in range(item.size):
                    emit(0, line_no)
                continue
            if item.kind == "li":
                rd = _parse_reg(item.operands[0], line_no)
                value = evaluator.value(item.operands[1], line_no) & WORD_MASK
                emit(encode(Instruction(Op.MOVI, rd=rd, imm=value & 0xFFFF)),
                     line_no)
                emit(encode(Instruction(Op.MOVT, rd=rd, imm=value >> 16)),
                     line_no)
                continue
            try:
                op = Op[item.mnemonic.upper()]
            except KeyError:
                raise AsmError(f"line {line_no}: unknown mnemonic "
                               f"{item.mnemonic!r}") from None
            instr = _build_instruction(op, item, evaluator, line_no, base)
            try:
                emit(encode(instr), line_no)
            except AsmError as error:
                raise AsmError(f"line {line_no}: {error}") from None
        except AsmError as error:
            errors.append(error)
            # keep later word offsets aligned with pass-1 layout
            while len(words) < item.word_offset + item.size:
                emit(0, line_no)

    if errors:
        raise AsmError.collect(errors)
    return AssembledProgram(words, base, abs_labels, source_map)


def _build_instruction(op: Op, item: _Item, evaluator: _Evaluator,
                       line_no: int, base: int) -> Instruction:
    fmt = OP_FORMAT[op]
    ops = item.operands

    def need(count: int) -> None:
        if len(ops) != count:
            raise AsmError(f"line {line_no}: {op.name} needs {count} "
                           f"operand(s), got {len(ops)}")

    if fmt == Format.N:
        need(0)
        return Instruction(op)
    if fmt == Format.R:
        need(3)
        return Instruction(op, rd=_parse_reg(ops[0], line_no),
                           rn=_parse_reg(ops[1], line_no),
                           rm=_parse_reg(ops[2], line_no))
    if fmt == Format.R2:
        need(2)
        return Instruction(op, rd=_parse_reg(ops[0], line_no),
                           rm=_parse_reg(ops[1], line_no))
    if fmt == Format.CR:
        need(2)
        return Instruction(op, rn=_parse_reg(ops[0], line_no),
                           rm=_parse_reg(ops[1], line_no))
    if fmt == Format.I:
        need(3)
        return Instruction(op, rd=_parse_reg(ops[0], line_no),
                           rn=_parse_reg(ops[1], line_no),
                           imm=evaluator.value(ops[2], line_no))
    if fmt == Format.CI:
        need(2)
        return Instruction(op, rn=_parse_reg(ops[0], line_no),
                           imm=evaluator.value(ops[1], line_no))
    if fmt == Format.U16:
        need(2)
        return Instruction(op, rd=_parse_reg(ops[0], line_no),
                           imm=evaluator.value(ops[1], line_no))
    if fmt == Format.MEM:
        need(2)
        reg_text, offset_text = _parse_mem_operand(ops[1], line_no)
        return Instruction(op, rd=_parse_reg(ops[0], line_no),
                           rn=_parse_reg(reg_text, line_no),
                           imm=evaluator.value(offset_text, line_no))
    if fmt == Format.BR:
        need(1)
        target = evaluator.value(ops[0], line_no)
        next_addr = base + (item.word_offset + 1) * WORD_BYTES
        delta = target - next_addr
        if delta % WORD_BYTES != 0:
            raise AsmError(
                f"line {line_no}: branch target 0x{target:x} not word aligned")
        return Instruction(op, imm=delta // WORD_BYTES)
    raise AsmError(f"line {line_no}: unhandled format {fmt}")  # pragma: no cover
