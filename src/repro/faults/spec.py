"""Declarative fault specifications.

A :class:`FaultSpec` describes *what* can go wrong in a degraded-platform
experiment; the :class:`~repro.faults.injector.FaultInjector` decides *when*
using its own seeded RNG.  Specs are plain data: built in code, from a dict,
or from a JSON file (the ``--fault-spec`` CLI flag), so an experiment's
adverse conditions are archivable alongside its traces.

Three fault families, matching where a NoC platform actually degrades:

* **slave errors** — a slave answers a transaction with ``Response.error``
  set instead of performing it (flaky memory controller, poisoned range);
* **link faults** — extra per-hop latency jitter and transient stalls in
  the interconnect (DVFS glitches, congested or marginal links);
* **semaphore faults** — a semaphore *release* write is delayed or dropped
  (lost wakeup), the failure mode that turns into livelock at system level.
"""

import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FaultSpecError",
    "SlaveErrorRule",
    "LinkFaultRule",
    "SemaphoreFaultRule",
    "FaultSpec",
]


class FaultSpecError(ValueError):
    """A fault specification is malformed."""


def _check_probability(value, field: str) -> float:
    try:
        probability = float(value)
    except (TypeError, ValueError):
        raise FaultSpecError(f"{field} must be a number, got {value!r}")
    if not 0.0 <= probability <= 1.0:
        raise FaultSpecError(f"{field} must be in [0, 1], got {probability}")
    return probability


def _check_non_negative(value, field: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise FaultSpecError(f"{field} must be a non-negative int, "
                             f"got {value!r}")
    return value


def _check_optional_limit(value, field: str) -> Optional[int]:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise FaultSpecError(f"{field} must be a positive int or null, "
                             f"got {value!r}")
    return value


def _reject_unknown(data: Dict, allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise FaultSpecError(f"unknown key(s) {unknown} in {where}; "
                             f"allowed: {sorted(allowed)}")


class SlaveErrorRule:
    """Make a slave answer some transactions with an error response.

    Args:
        slave: Slave name to match (e.g. ``"shared"``), or ``None`` for any.
        base/size: Optional address window the faulty access must fall in.
        probability: Chance an eligible access errors (seeded RNG).
        nth: Additionally fault every ``nth`` eligible access
            deterministically (1 = every access); ``None`` disables.
        reads_only: Fault only read transactions (default True — posted
            writes carry no error feedback to the master).
        max_faults: Stop injecting after this many faults (``None`` =
            unlimited); keeps a scenario recoverable by construction.
    """

    FIELDS = ("slave", "base", "size", "probability", "nth", "reads_only",
              "max_faults")

    def __init__(self, slave: Optional[str] = None,
                 base: Optional[int] = None, size: Optional[int] = None,
                 probability: float = 0.0, nth: Optional[int] = None,
                 reads_only: bool = True, max_faults: Optional[int] = None):
        self.slave = slave
        self.base = base
        self.size = size
        self.probability = _check_probability(probability, "probability")
        self.nth = _check_optional_limit(nth, "nth")
        self.reads_only = bool(reads_only)
        self.max_faults = _check_optional_limit(max_faults, "max_faults")
        if (base is None) != (size is None):
            raise FaultSpecError("slave-error rule needs both base and size "
                                 "(or neither)")
        if base is not None:
            _check_non_negative(base, "base")
            if not isinstance(size, int) or size < 1:
                raise FaultSpecError(f"size must be a positive int, "
                                     f"got {size!r}")
        if self.probability == 0.0 and self.nth is None:
            raise FaultSpecError("slave-error rule would never fire: give a "
                                 "probability > 0 or an nth")

    def matches(self, slave_name: str, addr: int, is_read: bool) -> bool:
        if self.reads_only and not is_read:
            return False
        if self.slave is not None and self.slave != slave_name:
            return False
        if self.base is not None:
            if not self.base <= addr < self.base + self.size:
                return False
        return True

    @classmethod
    def from_dict(cls, data: Dict) -> "SlaveErrorRule":
        _reject_unknown(data, cls.FIELDS, "slave_errors rule")
        return cls(**data)

    def to_dict(self) -> Dict:
        return {field: getattr(self, field) for field in self.FIELDS}


class LinkFaultRule:
    """Perturb interconnect hop timing.

    Args:
        fabric: Fabric name to match (``"ahb"``, ``"xpipes"``...), or
            ``None`` for any.
        jitter: Maximum extra cycles added per hop, drawn uniformly from
            ``[0, jitter]``.
        stall_probability: Chance a hop additionally suffers a transient
            stall of ``stall_cycles``.
        stall_cycles: Length of one transient stall.
        max_faults: Stop perturbing after this many non-zero injections.
    """

    FIELDS = ("fabric", "jitter", "stall_probability", "stall_cycles",
              "max_faults")

    def __init__(self, fabric: Optional[str] = None, jitter: int = 0,
                 stall_probability: float = 0.0, stall_cycles: int = 0,
                 max_faults: Optional[int] = None):
        self.fabric = fabric
        self.jitter = _check_non_negative(jitter, "jitter")
        self.stall_probability = _check_probability(stall_probability,
                                                    "stall_probability")
        self.stall_cycles = _check_non_negative(stall_cycles, "stall_cycles")
        self.max_faults = _check_optional_limit(max_faults, "max_faults")
        if self.stall_probability > 0.0 and self.stall_cycles == 0:
            raise FaultSpecError("stall_probability set but stall_cycles "
                                 "is 0")
        if self.jitter == 0 and self.stall_probability == 0.0:
            raise FaultSpecError("link rule would never fire: give jitter "
                                 "or a stall")

    def matches(self, fabric_name: str) -> bool:
        return self.fabric is None or self.fabric == fabric_name

    @classmethod
    def from_dict(cls, data: Dict) -> "LinkFaultRule":
        _reject_unknown(data, cls.FIELDS, "link_faults rule")
        return cls(**data)

    def to_dict(self) -> Dict:
        return {field: getattr(self, field) for field in self.FIELDS}


class SemaphoreFaultRule:
    """Delay or drop semaphore release writes (lost/late wakeups).

    Args:
        drop_probability: Chance a release write is silently discarded.
        max_drops: Hard cap on drops (default 1) — an unbounded drop rate
            livelocks every poller forever, which is only useful when
            testing the livelock watchdog itself.
        delay_probability: Chance the release lands late.
        delay_cycles: How late a delayed release lands.
    """

    FIELDS = ("drop_probability", "max_drops", "delay_probability",
              "delay_cycles")

    def __init__(self, drop_probability: float = 0.0,
                 max_drops: Optional[int] = 1,
                 delay_probability: float = 0.0, delay_cycles: int = 0):
        self.drop_probability = _check_probability(drop_probability,
                                                   "drop_probability")
        self.max_drops = _check_optional_limit(max_drops, "max_drops") \
            if max_drops is not None else None
        self.delay_probability = _check_probability(delay_probability,
                                                    "delay_probability")
        self.delay_cycles = _check_non_negative(delay_cycles, "delay_cycles")
        if self.delay_probability > 0.0 and self.delay_cycles == 0:
            raise FaultSpecError("delay_probability set but delay_cycles "
                                 "is 0")
        if self.drop_probability == 0.0 and self.delay_probability == 0.0:
            raise FaultSpecError("semaphore rule would never fire: give a "
                                 "drop or delay probability")

    @classmethod
    def from_dict(cls, data: Dict) -> "SemaphoreFaultRule":
        _reject_unknown(data, cls.FIELDS, "semaphore_faults rule")
        return cls(**data)

    def to_dict(self) -> Dict:
        return {field: getattr(self, field) for field in self.FIELDS}


class FaultSpec:
    """The complete declarative description of a degraded platform."""

    KEYS = ("slave_errors", "link_faults", "semaphore_faults")

    def __init__(self,
                 slave_errors: Optional[List[SlaveErrorRule]] = None,
                 link_faults: Optional[List[LinkFaultRule]] = None,
                 semaphore_faults: Optional[List[SemaphoreFaultRule]] = None):
        self.slave_errors = list(slave_errors or [])
        self.link_faults = list(link_faults or [])
        self.semaphore_faults = list(semaphore_faults or [])

    @property
    def empty(self) -> bool:
        """True when the spec contains no rule at all."""
        return not (self.slave_errors or self.link_faults
                    or self.semaphore_faults)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultSpecError(f"fault spec must be a dict, "
                                 f"got {type(data).__name__}")
        _reject_unknown(data, cls.KEYS, "fault spec")
        def rules(key, rule_cls):
            entries = data.get(key, [])
            if not isinstance(entries, list):
                raise FaultSpecError(f"{key} must be a list of rules")
            return [rule_cls.from_dict(entry) for entry in entries]
        return cls(slave_errors=rules("slave_errors", SlaveErrorRule),
                   link_faults=rules("link_faults", LinkFaultRule),
                   semaphore_faults=rules("semaphore_faults",
                                          SemaphoreFaultRule))

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"fault spec is not valid JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultSpec":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict:
        return {
            "slave_errors": [rule.to_dict() for rule in self.slave_errors],
            "link_faults": [rule.to_dict() for rule in self.link_faults],
            "semaphore_faults": [rule.to_dict()
                                 for rule in self.semaphore_faults],
        }

    def __repr__(self) -> str:
        return (f"<FaultSpec slave_errors={len(self.slave_errors)} "
                f"link_faults={len(self.link_faults)} "
                f"semaphore_faults={len(self.semaphore_faults)}>")
