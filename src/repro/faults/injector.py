"""The deterministic fault injector.

One :class:`FaultInjector` instance is shared by every instrumented
component of a platform (slaves, fabrics, semaphore bank).  All randomness
comes from its *own* ``random.Random`` seeded at construction — never the
global RNG — so a ``(spec, seed)`` pair replays the exact same fault
sequence on every run.  Because the simulation kernel fires events in a
deterministic total order, the injector is queried in a deterministic order
too, which makes whole degraded simulations byte-reproducible.

Components hold a ``fault_injector`` attribute that defaults to ``None``;
the disabled path adds no RNG draws, no extra yields and no extra events,
so a fault-free platform is bit-identical to one built before this
subsystem existed.
"""

import random
from typing import Dict, Tuple

from repro.faults.spec import FaultSpec

#: Data word carried by injected error responses (recognisably bogus).
ERROR_DATA = 0xDEADBEEF

#: Counter keys maintained by the injector (see also
#: :class:`repro.stats.counters.ResilienceCounters`).
INJECTOR_COUNTERS = (
    "slave_errors_injected",
    "hop_faults_injected",
    "hop_delay_cycles",
    "hop_stalls_injected",
    "sem_drops_injected",
    "sem_delays_injected",
)


class FaultInjector:
    """Seeded, deterministic decision point for every fault family."""

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self.counters: Dict[str, int] = {key: 0 for key in INJECTOR_COUNTERS}
        self._slave_accesses = [0] * len(spec.slave_errors)
        self._slave_faults = [0] * len(spec.slave_errors)
        self._link_faults = [0] * len(spec.link_faults)
        self._sem_drops = [0] * len(spec.semaphore_faults)

    # ------------------------------------------------------------ decisions

    def slave_error(self, slave_name: str, request) -> bool:
        """Should this slave access answer with an error response?"""
        if not self.spec.slave_errors:
            return False
        is_read = request.cmd.is_read
        for index, rule in enumerate(self.spec.slave_errors):
            if not rule.matches(slave_name, request.addr, is_read):
                continue
            if (rule.max_faults is not None
                    and self._slave_faults[index] >= rule.max_faults):
                continue
            self._slave_accesses[index] += 1
            fire = (rule.nth is not None
                    and self._slave_accesses[index] % rule.nth == 0)
            if not fire and rule.probability > 0.0:
                fire = self.rng.random() < rule.probability
            if fire:
                self._slave_faults[index] += 1
                self.counters["slave_errors_injected"] += 1
                return True
        return False

    def hop_delay(self, fabric_name: str) -> int:
        """Extra cycles this interconnect hop suffers (0 = unperturbed)."""
        if not self.spec.link_faults:
            return 0
        total = 0
        for index, rule in enumerate(self.spec.link_faults):
            if not rule.matches(fabric_name):
                continue
            if (rule.max_faults is not None
                    and self._link_faults[index] >= rule.max_faults):
                continue
            extra = 0
            if rule.jitter:
                extra += self.rng.randint(0, rule.jitter)
            if (rule.stall_probability > 0.0
                    and self.rng.random() < rule.stall_probability):
                extra += rule.stall_cycles
                self.counters["hop_stalls_injected"] += 1
            if extra:
                self._link_faults[index] += 1
                self.counters["hop_faults_injected"] += 1
                self.counters["hop_delay_cycles"] += extra
            total += extra
        return total

    def semaphore_release(self, offset: int) -> Tuple[bool, int]:
        """Fate of a semaphore release write: ``(dropped, delay_cycles)``."""
        if not self.spec.semaphore_faults:
            return False, 0
        delay = 0
        for index, rule in enumerate(self.spec.semaphore_faults):
            if rule.drop_probability > 0.0 and (
                    rule.max_drops is None
                    or self._sem_drops[index] < rule.max_drops):
                if self.rng.random() < rule.drop_probability:
                    self._sem_drops[index] += 1
                    self.counters["sem_drops_injected"] += 1
                    return True, 0
            if (rule.delay_probability > 0.0 and rule.delay_cycles > delay
                    and self.rng.random() < rule.delay_probability):
                delay = rule.delay_cycles
        if delay:
            self.counters["sem_delays_injected"] += 1
        return False, delay

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Counters, rule occurrence tallies and the full RNG state.

        ``random.Random.getstate()`` is ``(version, tuple_of_ints,
        gauss_next)`` — JSON-safe once the inner tuple becomes a list.
        """
        version, internal, gauss_next = self.rng.getstate()
        return {
            "rng_state": [version, list(internal), gauss_next],
            "counters": dict(self.counters),
            "slave_accesses": list(self._slave_accesses),
            "slave_faults": list(self._slave_faults),
            "link_faults": list(self._link_faults),
            "sem_drops": list(self._sem_drops),
        }

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        rng_state = state_get(state, "rng_state", "injector")
        try:
            version, internal, gauss_next = rng_state
            self.rng.setstate((version, tuple(internal), gauss_next))
        except (TypeError, ValueError) as error:
            raise SnapshotError(
                f"snapshot carries an invalid injector RNG state "
                f"({error})") from None
        counters = state_get(state, "counters", "injector")
        if not isinstance(counters, dict) \
                or set(counters) != set(INJECTOR_COUNTERS):
            raise SnapshotError(
                "snapshot injector counters do not match this version")
        self.counters = {key: counters[key] for key in INJECTOR_COUNTERS}
        for attr, key in (("_slave_accesses", "slave_accesses"),
                          ("_slave_faults", "slave_faults"),
                          ("_link_faults", "link_faults"),
                          ("_sem_drops", "sem_drops")):
            values = state_get(state, key, "injector")
            if not isinstance(values, list) \
                    or len(values) != len(getattr(self, attr)):
                raise SnapshotError(
                    f"snapshot injector tally {key!r} does not match the "
                    f"fault spec",
                    hint="the snapshot was taken with a different fault "
                         "spec; restore with a matching spec or branch "
                         "with fresh=['injector']")
            setattr(self, attr, list(values))

    # ------------------------------------------------------------ reporting

    @property
    def faults_injected(self) -> int:
        """Total faults of every family injected so far."""
        return (self.counters["slave_errors_injected"]
                + self.counters["hop_faults_injected"]
                + self.counters["sem_drops_injected"]
                + self.counters["sem_delays_injected"])

    def __repr__(self) -> str:
        return (f"<FaultInjector seed={self.seed} "
                f"injected={self.faults_injected}>")
