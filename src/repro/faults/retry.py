"""TG-side retry policy for error responses.

Kept free of any repro-internal imports: :mod:`repro.core.tg_master` pulls
this in, and ``repro.core`` sits below ``repro.trace``/``repro.stats`` in
the import graph.
"""

from typing import Dict, Optional

__all__ = ["RetryPolicy"]

#: Allowed values of :attr:`RetryPolicy.on_exhaust`.
ON_EXHAUST = ("raise", "degrade")


class RetryPolicy:
    """How a TG master reacts to ``Response.error``.

    Args:
        max_attempts: Total tries per transaction (first attempt included).
        backoff: Idle cycles before the first retry.
        backoff_factor: Multiplier applied to the backoff per further retry
            (exponential backoff in cycles; 1 = constant).
        on_exhaust: ``"raise"`` aborts the simulation with a fail-fast error
            once attempts run out; ``"degrade"`` accepts the error response
            and lets the program continue on its bogus data, counting the
            transaction as degraded.
    """

    def __init__(self, max_attempts: int = 3, backoff: int = 2,
                 backoff_factor: int = 2, on_exhaust: str = "raise"):
        if not isinstance(max_attempts, int) or max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not isinstance(backoff, int) or backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if not isinstance(backoff_factor, int) or backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1, got {backoff_factor}")
        if on_exhaust not in ON_EXHAUST:
            raise ValueError(f"on_exhaust must be one of {ON_EXHAUST}, "
                             f"got {on_exhaust!r}")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.on_exhaust = on_exhaust

    @property
    def fail_fast(self) -> bool:
        return self.on_exhaust == "raise"

    def backoff_cycles(self, failures: int) -> int:
        """Idle cycles after the ``failures``-th failed attempt (1-based)."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        return self.backoff * self.backoff_factor ** (failures - 1)

    @classmethod
    def from_dict(cls, data: Optional[Dict]) -> Optional["RetryPolicy"]:
        """Build from a plain dict (``None`` passes through)."""
        if data is None:
            return None
        if isinstance(data, RetryPolicy):
            return data
        return cls(**data)

    def to_dict(self) -> Dict:
        return {"max_attempts": self.max_attempts, "backoff": self.backoff,
                "backoff_factor": self.backoff_factor,
                "on_exhaust": self.on_exhaust}

    def __repr__(self) -> str:
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"backoff={self.backoff}, "
                f"backoff_factor={self.backoff_factor}, "
                f"on_exhaust={self.on_exhaust!r})")
