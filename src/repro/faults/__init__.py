"""Deterministic fault injection for degraded-platform experiments.

The paper's decoupling claim — collect a trace once, replay it against any
interconnect — is only useful for design-space exploration if the
interconnects explored can also be *degraded*: slow links, flaky slaves,
lost wakeups.  This package provides that as a first-class, reproducible
subsystem:

* :class:`FaultSpec` — declarative description of what can go wrong
  (parsed from dicts/JSON, archivable with an experiment);
* :class:`FaultInjector` — the seeded decision point every instrumented
  component consults; deterministic given ``(spec, seed)``;
* :class:`RetryPolicy` — how a TG master reacts to error responses
  (bounded retries with exponential backoff, fail-fast or degrade).

With no spec configured nothing is instrumented: the disabled path adds no
events, no RNG draws and no cycles, so fault-free runs stay bit-identical
to the pre-fault-subsystem behaviour.
"""

from repro.faults.injector import ERROR_DATA, FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.spec import (
    FaultSpec,
    FaultSpecError,
    LinkFaultRule,
    SemaphoreFaultRule,
    SlaveErrorRule,
)

__all__ = [
    "ERROR_DATA",
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "LinkFaultRule",
    "RetryPolicy",
    "SemaphoreFaultRule",
    "SlaveErrorRule",
]
