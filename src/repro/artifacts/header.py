"""Versioned, checksummed artifact headers.

Text formats (``.trc``, ``.tgp``) get a first-line comment header — old
parsers skip it as a comment, new loaders verify it before parsing::

    ;#ARTIFACT trc v1 producer=1.0.0 len=1234 crc32=0a1b2c3d

``len`` is the byte length and ``crc32`` the zlib CRC32 of the UTF-8
payload (everything after the header line's newline), so truncation and
bit rot are told apart before the format parser ever runs.

The ``.bin`` image gets an outer container in front of the legacy
``TGP1`` payload::

    offset  0   magic  b"RTGA"
    offset  4   u32    container version (1)
    offset  8   u32    payload length in bytes
    offset 12   u32    CRC32 of the payload
    offset 16   16s    producer package version, UTF-8, NUL padded
    offset 32   ...    payload (the legacy image, unchanged)

Files that start with neither header are *legacy* artifacts: loaders
accept them byte-for-byte as before, with a ``DeprecationWarning``.
"""

import re
import struct
import zlib
from typing import Optional, Tuple

from repro.artifacts.errors import (
    ChecksumMismatch,
    ParseDiagnostic,
    TruncatedArtifact,
    VersionMismatch,
)

TEXT_MAGIC = ";#ARTIFACT"
#: Supported format version per text artifact kind.
TEXT_FORMAT_VERSIONS = {"trc": 1, "tgp": 1, "snap": 1}

BIN_MAGIC = b"RTGA"
BIN_CONTAINER_VERSION = 1
_BIN_HEADER = struct.Struct("<4sIII16s")
BIN_HEADER_BYTES = _BIN_HEADER.size
#: First four bytes of a legacy (headerless) image: '<I' of 0x54475031.
LEGACY_BIN_MAGIC = struct.pack("<I", 0x54475031)

_TEXT_HEADER_RE = re.compile(
    r"^;#ARTIFACT\s+(\w+)\s+v(\d+)((?:\s+[\w.]+=\S+)*)\s*$")
_FIELD_RE = re.compile(r"([\w.]+)=(\S+)")


def producer_version() -> str:
    from repro import __version__
    return __version__


def crc32_hex(data: bytes) -> str:
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


# ------------------------------------------------------------------ text

def add_text_header(kind: str, payload: str) -> str:
    """Prefix ``payload`` with its verified-on-load header line."""
    data = payload.encode("utf-8")
    return (f"{TEXT_MAGIC} {kind} v{TEXT_FORMAT_VERSIONS[kind]} "
            f"producer={producer_version()} len={len(data)} "
            f"crc32={crc32_hex(data)}\n") + payload


def split_text_header(data: bytes, kind: str,
                      path=None) -> Tuple[Optional[dict], str]:
    """Verify and strip a text artifact's header.

    Returns ``(header, payload)``; ``header`` is None for legacy
    (headerless) text, which is returned unmodified.
    """
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ParseDiagnostic(
            f"not valid UTF-8 text ({error.reason} at byte {error.start})",
            path=path, line=None,
            hint="binary corruption — restore the file from its source"
        ) from None
    if not text.startswith(TEXT_MAGIC):
        return None, text
    line, _, payload = text.partition("\n")
    match = _TEXT_HEADER_RE.match(line)
    if not match:
        raise ParseDiagnostic(
            "malformed artifact header", path=path, line=1, column=1,
            text=line,
            hint="expected ';#ARTIFACT <kind> v<N> producer=... len=... "
                 "crc32=...'")
    found_kind = match.group(1)
    found_version = int(match.group(2))
    fields = dict(_FIELD_RE.findall(match.group(3)))
    if found_kind != kind:
        raise ParseDiagnostic(
            f"artifact is a {found_kind!r}, expected {kind!r}",
            path=path, line=1, text=line,
            hint=f"pass this file to the {found_kind} tool instead")
    supported = TEXT_FORMAT_VERSIONS[kind]
    if found_version != supported:
        raise VersionMismatch(
            f"{kind} format v{found_version} not supported "
            f"(this build reads v{supported})",
            path=path, found=found_version, supported=supported,
            hint="re-export the artifact with a matching repro version")
    for required in ("len", "crc32"):
        if required not in fields:
            raise ParseDiagnostic(
                f"artifact header missing {required!r} field",
                path=path, line=1, text=line,
                hint="re-save the artifact to regenerate its header")
    try:
        declared_len = int(fields["len"])
    except ValueError:
        raise ParseDiagnostic(
            f"bad len field {fields['len']!r} in artifact header",
            path=path, line=1, text=line) from None
    declared_crc = fields["crc32"].lower()
    if not re.fullmatch(r"[0-9a-f]{8}", declared_crc):
        raise ParseDiagnostic(
            f"bad crc32 field {fields['crc32']!r} in artifact header",
            path=path, line=1, text=line)
    payload_bytes = payload.encode("utf-8")
    if len(payload_bytes) < declared_len:
        raise TruncatedArtifact(
            f"payload is {len(payload_bytes)} bytes, header declares "
            f"{declared_len}", path=path,
            hint="the file was cut short — re-copy or regenerate it")
    if len(payload_bytes) > declared_len:
        raise ChecksumMismatch(
            f"payload is {len(payload_bytes)} bytes, header declares "
            f"{declared_len} — trailing data", path=path,
            hint="the file grew after it was written — regenerate it")
    actual_crc = crc32_hex(payload_bytes)
    if actual_crc != declared_crc:
        raise ChecksumMismatch(
            f"payload CRC32 {actual_crc} != header {declared_crc}",
            path=path,
            hint="the file changed after it was written — regenerate it")
    header = {
        "kind": found_kind,
        "format_version": found_version,
        "producer": fields.get("producer"),
        "len": declared_len,
        "crc32": declared_crc,
    }
    return header, payload


# ---------------------------------------------------------------- binary

def wrap_binary(payload: bytes) -> bytes:
    """Prefix a legacy ``.bin`` image with the verified container header."""
    producer = producer_version().encode("utf-8")[:16].ljust(16, b"\0")
    return _BIN_HEADER.pack(BIN_MAGIC, BIN_CONTAINER_VERSION, len(payload),
                            zlib.crc32(payload) & 0xFFFFFFFF,
                            producer) + payload


def unwrap_binary(blob: bytes, path=None) -> Tuple[Optional[dict], bytes]:
    """Verify and strip a ``.bin`` container.

    Returns ``(header, payload)``; ``header`` is None for a legacy
    (bare ``TGP1``) image, which is returned unmodified.
    """
    if len(blob) < 4:
        raise TruncatedArtifact(
            f"image is only {len(blob)} bytes", path=path,
            hint="the file was cut short — regenerate it")
    magic = blob[:4]
    if magic == LEGACY_BIN_MAGIC:
        return None, blob
    if magic != BIN_MAGIC:
        raise ParseDiagnostic(
            f"bad magic {magic!r} (neither RTGA container nor legacy "
            f"TGP1 image)", path=path,
            hint="this is not a TG .bin artifact")
    if len(blob) < BIN_HEADER_BYTES:
        raise TruncatedArtifact(
            f"container header is {len(blob)} of {BIN_HEADER_BYTES} bytes",
            path=path, hint="the file was cut short — regenerate it")
    _, version, declared_len, declared_crc, producer = \
        _BIN_HEADER.unpack(blob[:BIN_HEADER_BYTES])
    if version != BIN_CONTAINER_VERSION:
        raise VersionMismatch(
            f"bin container v{version} not supported (this build reads "
            f"v{BIN_CONTAINER_VERSION})", path=path,
            found=version, supported=BIN_CONTAINER_VERSION,
            hint="re-assemble the image with a matching repro version")
    payload = blob[BIN_HEADER_BYTES:]
    if len(payload) < declared_len:
        raise TruncatedArtifact(
            f"payload is {len(payload)} bytes, header declares "
            f"{declared_len}", path=path,
            hint="the file was cut short — regenerate it")
    if len(payload) > declared_len:
        raise ChecksumMismatch(
            f"payload is {len(payload)} bytes, header declares "
            f"{declared_len} — trailing data", path=path,
            hint="the file grew after it was written — regenerate it")
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != declared_crc:
        raise ChecksumMismatch(
            f"payload CRC32 {actual_crc:08x} != header {declared_crc:08x}",
            path=path,
            hint="the file changed after it was written — regenerate it")
    header = {
        "kind": "bin",
        "format_version": version,
        "producer": producer.rstrip(b"\0").decode("utf-8", "replace"),
        "len": declared_len,
        "crc32": f"{declared_crc:08x}",
    }
    return header, payload
