"""Codec for ``.snap`` checkpoint artifacts.

A ``.snap`` file is a versioned, CRC32-checksummed text artifact (the
same ``;#ARTIFACT`` header as ``.trc``/``.tgp``) whose payload is the
canonical JSON of one simulation snapshot taken at a quiescent cycle
boundary (see :mod:`repro.kernel.snapshot` and docs/CHECKPOINT.md).

The payload is always serialised canonically (sorted keys, compact
separators, trailing newline), so re-serialising a parsed snapshot
reproduces the byte-identical payload — the round-trip property the
artifact fuzz harness checks for every verified-header mutant.

Unlike the trace/program formats there is no legacy headerless
generation of ``.snap`` files: a snapshot without a verified header is
either damaged or forged, and restoring simulation state from it would
be unsafe, so the loader refuses it outright.
"""

import json

from repro.artifacts.errors import DiagnosticReport, ParseDiagnostic, \
    SnapshotError
from repro.artifacts.header import add_text_header, crc32_hex, \
    split_text_header
from repro.artifacts.io import Artifact

#: Payload keys every well-formed snapshot carries.
SNAP_REQUIRED_KEYS = ("cycle", "kernel", "components", "pending",
                      "platform")


def canonical_snap_json(payload: dict) -> str:
    """The one true serialisation of a snapshot payload."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"


def validate_snap_payload(payload, path=None) -> dict:
    """Structural validation of a parsed snapshot payload.

    Checks shape only (the keys and types the restore machinery
    dereferences unconditionally); semantic validation — does this
    snapshot fit that platform — happens at apply time with the platform
    in hand.
    """
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload must be a JSON object",
                            path=path)
    missing = [key for key in SNAP_REQUIRED_KEYS if key not in payload]
    if missing:
        raise SnapshotError(
            f"snapshot payload is missing key(s): {', '.join(missing)}",
            path=path,
            hint="the file is not a checkpoint produced by this package")
    if not isinstance(payload["cycle"], int) \
            or isinstance(payload["cycle"], bool) \
            or payload["cycle"] < 0:
        raise SnapshotError(
            f"snapshot cycle must be a non-negative integer, "
            f"got {payload['cycle']!r}", path=path)
    if not isinstance(payload["kernel"], dict):
        raise SnapshotError("snapshot 'kernel' section must be an object",
                            path=path)
    if not isinstance(payload["components"], dict):
        raise SnapshotError(
            "snapshot 'components' section must be an object", path=path)
    if not isinstance(payload["pending"], list):
        raise SnapshotError("snapshot 'pending' section must be a list",
                            path=path)
    if not isinstance(payload["platform"], dict):
        raise SnapshotError(
            "snapshot 'platform' section must be an object", path=path)
    return payload


def load_snap_bytes(data: bytes, path=None) -> Artifact:
    """Verify + parse ``.snap`` bytes into a validated payload dict."""
    header, payload_text = split_text_header(data, "snap", path=path)
    if header is None:
        raise SnapshotError(
            "not a .snap checkpoint (missing artifact header)", path=path,
            hint="snapshots have no legacy headerless form; the file is "
                 "damaged or is not a checkpoint")
    try:
        payload = json.loads(payload_text)
    except ValueError as error:
        raise ParseDiagnostic(
            f"snapshot payload is not valid JSON: {error}", path=path,
            hint="the checksum verified, so the producer wrote a "
                 "malformed snapshot — re-take the checkpoint") from None
    payload = validate_snap_payload(payload, path=path)
    return Artifact("snap", payload, header, payload_text,
                    DiagnosticReport(path=path, kind="snap"), path=path)


def load_snap(path) -> Artifact:
    with open(path, "rb") as handle:
        return load_snap_bytes(handle.read(), path=path)


def dump_snap(payload: dict) -> str:
    """Emit headered ``.snap`` text for a snapshot payload."""
    return add_text_header("snap", canonical_snap_json(payload))


def save_snap(path, payload: dict) -> str:
    """Write a headered ``.snap`` file; returns the payload CRC32 (hex).

    Plain write — the atomic write-then-rename used for auto-checkpoints
    lives in :class:`repro.harness.checkpoint.CheckpointManager`.
    """
    text = dump_snap(payload)
    with open(path, "w") as handle:
        handle.write(text)
    body = text.partition("\n")[2]
    return crc32_hex(body.encode("utf-8"))


__all__ = [
    "SNAP_REQUIRED_KEYS",
    "canonical_snap_json",
    "dump_snap",
    "load_snap",
    "load_snap_bytes",
    "save_snap",
    "validate_snap_payload",
]
