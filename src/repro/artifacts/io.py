"""Hardened loaders/savers for the three artifact formats.

These wrap the payload-level codecs (``parse_trc`` / ``parse_tgp`` /
``disassemble_binary``) with header verification, legacy fallback and a
single failure contract: a load either succeeds or raises a typed
:class:`~repro.artifacts.errors.ArtifactError` — never a raw
``IndexError``/``struct.error``/``UnicodeDecodeError``.

Strict vs. permissive (``.trc`` only, the record-oriented format):

* **strict** (default) raises on the first defective record;
* **permissive** skips recoverably-bad records and reports every skip in
  the returned :class:`~repro.artifacts.errors.DiagnosticReport`.

Imports of the codec modules are deferred into the functions: the codecs
themselves import :mod:`repro.artifacts.errors` for the diagnostic
types, and eager imports here would close that cycle.
"""

import re
import warnings
import zlib
from typing import Optional

from repro.artifacts.errors import (
    ArtifactError,
    DiagnosticReport,
    ParseDiagnostic,
    TruncatedArtifact,
)
from repro.artifacts.header import (
    add_text_header,
    crc32_hex,
    split_text_header,
    unwrap_binary,
    wrap_binary,
)

_LINE_IN_MESSAGE_RE = re.compile(r"line (\d+)")


class Artifact:
    """One loaded artifact: parsed value plus provenance.

    Attributes:
        kind: ``"trc"`` | ``"tgp"`` | ``"bin"``.
        value: The parsed object — ``(master_id, events)`` for a trace,
            a :class:`~repro.core.program.TGProgram` otherwise.
        header: The verified header dict, or None for a legacy file.
        payload: The raw payload (str for text kinds, bytes for bin).
        report: Diagnostics collected by a permissive load (empty when
            strict or clean).
        path: Source file, when loaded from disk.
    """

    __slots__ = ("kind", "value", "header", "payload", "report", "path")

    def __init__(self, kind, value, header, payload, report, path=None):
        self.kind = kind
        self.value = value
        self.header = header
        self.payload = payload
        self.report = report
        self.path = path

    @property
    def legacy(self) -> bool:
        return self.header is None

    @property
    def checksum(self) -> str:
        """CRC32 (hex) of the payload as loaded."""
        data = self.payload if isinstance(self.payload, bytes) \
            else self.payload.encode("utf-8")
        return crc32_hex(data)

    def __repr__(self) -> str:
        state = "legacy" if self.legacy else "verified"
        return f"<Artifact {self.kind} {state} crc32={self.checksum}>"


def _warn_legacy(kind: str, path) -> None:
    where = str(path) if path is not None else "<in-memory data>"
    warnings.warn(
        f"{where}: headerless legacy .{kind} artifact; re-save it to add "
        f"the integrity header (see docs/ARTIFACTS.md)",
        DeprecationWarning, stacklevel=3)


def _wrap_codec_error(error: Exception, kind: str, path) -> ArtifactError:
    """Turn a payload-codec exception into a located ParseDiagnostic."""
    if isinstance(error, ArtifactError):
        if error.path is None and path is not None:
            error.path = str(path)
        return error
    message = str(error)
    match = _LINE_IN_MESSAGE_RE.search(message)
    line = int(match.group(1)) if match else None
    if "truncated" in message.lower():
        return TruncatedArtifact(message, path=path,
                                 hint="the image was cut short — "
                                      "re-assemble it")
    return ParseDiagnostic(message, path=path, line=line,
                           hint=f"fix the .{kind} input or regenerate it")


def file_crc32(path) -> str:
    """CRC32 (hex) of a file's raw bytes, for cache/manifest audits."""
    crc = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            crc = zlib.crc32(chunk, crc)
    return f"{crc & 0xFFFFFFFF:08x}"


# ------------------------------------------------------------------- trc

def load_trc_bytes(data: bytes, path=None, strict: bool = True) -> Artifact:
    """Verify + parse ``.trc`` bytes; see module docstring for modes."""
    from repro.trace.trc_format import parse_trc
    header, payload = split_text_header(data, "trc", path=path)
    if header is None:
        _warn_legacy("trc", path)
    report = DiagnosticReport(path=path, kind="trc")
    on_error = None if strict else report.add
    try:
        master_id, events = parse_trc(payload, on_error=on_error)
    except Exception as error:
        raise _wrap_codec_error(error, "trc", path) from None
    if not strict:
        for diagnostic in report:
            if diagnostic.path is None and path is not None:
                diagnostic.path = str(path)
    return Artifact("trc", (master_id, events), header, payload, report,
                    path=path)


def load_trc(path, strict: bool = True) -> Artifact:
    with open(path, "rb") as handle:
        return load_trc_bytes(handle.read(), path=path, strict=strict)


def dump_trc(events, master_id: int = 0,
             header_comment: Optional[str] = None) -> str:
    """Serialise events to headered ``.trc`` text."""
    from repro.trace.trc_format import serialize_trc
    payload = serialize_trc(events, master_id=master_id,
                            header_comment=header_comment)
    return add_text_header("trc", payload)


def save_trc(path, events, master_id: int = 0,
             header_comment: Optional[str] = None) -> str:
    """Write a headered ``.trc`` file; returns the payload CRC32 (hex)."""
    text = dump_trc(events, master_id=master_id,
                    header_comment=header_comment)
    with open(path, "w") as handle:
        handle.write(text)
    payload = text.partition("\n")[2]
    return crc32_hex(payload.encode("utf-8"))


# ------------------------------------------------------------------- tgp

def load_tgp_bytes(data: bytes, path=None) -> Artifact:
    """Verify + parse ``.tgp`` bytes into a validated TGProgram."""
    from repro.core.program import parse_tgp
    header, payload = split_text_header(data, "tgp", path=path)
    if header is None:
        _warn_legacy("tgp", path)
    try:
        program = parse_tgp(payload)
    except Exception as error:
        raise _wrap_codec_error(error, "tgp", path) from None
    return Artifact("tgp", program, header, payload,
                    DiagnosticReport(path=path, kind="tgp"), path=path)


def load_tgp(path) -> Artifact:
    with open(path, "rb") as handle:
        return load_tgp_bytes(handle.read(), path=path)


def dump_tgp(program) -> str:
    """Emit headered ``.tgp`` text for a program."""
    return add_text_header("tgp", program.to_tgp())


def save_tgp(path, program) -> str:
    """Write a headered ``.tgp`` file; returns the payload CRC32 (hex)."""
    text = dump_tgp(program)
    with open(path, "w") as handle:
        handle.write(text)
    payload = text.partition("\n")[2]
    return crc32_hex(payload.encode("utf-8"))


# ------------------------------------------------------------------- bin

def load_bin_bytes(data: bytes, path=None) -> Artifact:
    """Verify + decode ``.bin`` bytes into a validated TGProgram."""
    from repro.core.assembler import disassemble_binary
    header, payload = unwrap_binary(data, path=path)
    if header is None:
        _warn_legacy("bin", path)
    try:
        program = disassemble_binary(payload)
    except Exception as error:
        raise _wrap_codec_error(error, "bin", path) from None
    return Artifact("bin", program, header, payload,
                    DiagnosticReport(path=path, kind="bin"), path=path)


def load_bin(path) -> Artifact:
    with open(path, "rb") as handle:
        return load_bin_bytes(handle.read(), path=path)


def dump_bin(program) -> bytes:
    """Assemble a program into a container-wrapped ``.bin`` image."""
    from repro.core.assembler import assemble_binary
    return wrap_binary(assemble_binary(program))


def save_bin(path, program) -> str:
    """Write a wrapped ``.bin`` file; returns the payload CRC32 (hex)."""
    blob = dump_bin(program)
    with open(path, "wb") as handle:
        handle.write(blob)
    from repro.artifacts.header import BIN_HEADER_BYTES
    return crc32_hex(blob[BIN_HEADER_BYTES:])


def _load_snap_bytes(data: bytes, path=None) -> Artifact:
    # deferred: repro.artifacts.snap imports Artifact from this module
    from repro.artifacts.snap import load_snap_bytes
    return load_snap_bytes(data, path=path)


_LOADERS = {"trc": load_trc_bytes, "tgp": load_tgp_bytes,
            "bin": load_bin_bytes, "snap": _load_snap_bytes}


def load_artifact_bytes(kind: str, data: bytes, path=None,
                        strict: bool = True) -> Artifact:
    """Dispatch to the loader for ``kind`` (trc | tgp | bin | snap)."""
    if kind == "trc":
        return load_trc_bytes(data, path=path, strict=strict)
    try:
        loader = _LOADERS[kind]
    except KeyError:
        raise ValueError(f"unknown artifact kind {kind!r}") from None
    return loader(data, path=path)


def reserialize(artifact: Artifact) -> object:
    """Re-emit an artifact's payload from its parsed value.

    Used by the fuzz harness: a mutant whose header still verifies must
    reserialize to the identical payload (no silent wrong parse).
    """
    from repro.core.assembler import assemble_binary
    from repro.trace.trc_format import serialize_trc
    if artifact.kind == "trc":
        master_id, events = artifact.value
        return serialize_trc(events, master_id=master_id)
    if artifact.kind == "tgp":
        return artifact.value.to_tgp()
    if artifact.kind == "snap":
        from repro.artifacts.snap import canonical_snap_json
        return canonical_snap_json(artifact.value)
    return assemble_binary(artifact.value)


__all__ = [
    "Artifact",
    "dump_bin",
    "dump_tgp",
    "dump_trc",
    "file_crc32",
    "load_artifact_bytes",
    "load_bin",
    "load_bin_bytes",
    "load_tgp",
    "load_tgp_bytes",
    "load_trc",
    "load_trc_bytes",
    "reserialize",
    "save_bin",
    "save_tgp",
    "save_trc",
]
