"""Typed error hierarchy for the artifact pipeline.

Every artifact loader (``.trc`` / ``.tgp`` / ``.bin``) promises to raise
only :class:`ArtifactError` subclasses on bad input — never an
``IndexError``, ``struct.error`` or silent wrong parse (the contract the
seeded fuzz harness in ``tests/artifacts/fuzz.py`` enforces).  Each
subclass carries a distinct CLI exit code so shell pipelines can tell a
truncated download from a version skew without scraping stderr (the
error-code table lives in docs/ARTIFACTS.md).
"""

from typing import Iterator, List, Optional

#: CLI exit codes (see docs/ARTIFACTS.md).  0 = success, 1 = generic
#: failure (e.g. failed sweep points), 2 = argparse usage error.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_MISSING_FILE = 3
EXIT_PARSE = 4
EXIT_CHECKSUM = 5
EXIT_VERSION = 6
EXIT_TRUNCATED = 7
# 8 is EXIT_INTERRUPTED (repro.harness.supervisor): an interrupted sweep.
EXIT_SNAPSHOT = 9


class ArtifactError(Exception):
    """Base of every artifact-pipeline failure.

    Attributes:
        path: The offending file (None for in-memory data).
        hint: A one-line recovery suggestion shown to the user.
        exit_code: The CLI process exit status for this failure class.
    """

    exit_code = EXIT_FAILURE

    def __init__(self, message: str, path=None, hint: Optional[str] = None):
        super().__init__(message)
        self.message = message
        self.path = str(path) if path is not None else None
        self.hint = hint

    def __str__(self) -> str:
        parts = []
        if self.path:
            parts.append(f"{self.path}: ")
        parts.append(self.message)
        if self.hint:
            parts.append(f" (hint: {self.hint})")
        return "".join(parts)

    def as_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "message": self.message,
            "path": self.path,
            "hint": self.hint,
            "exit_code": self.exit_code,
        }


class ChecksumMismatch(ArtifactError):
    """The payload does not match the header's CRC32 — bit rot or edits."""

    exit_code = EXIT_CHECKSUM


class VersionMismatch(ArtifactError):
    """The artifact's format version is not one this loader understands."""

    exit_code = EXIT_VERSION

    def __init__(self, message: str, path=None, hint: Optional[str] = None,
                 found=None, supported=None):
        super().__init__(message, path=path, hint=hint)
        self.found = found
        self.supported = supported

    def as_dict(self) -> dict:
        data = super().as_dict()
        data["found"] = self.found
        data["supported"] = self.supported
        return data


class TruncatedArtifact(ArtifactError):
    """The file ends before the header-declared payload does."""

    exit_code = EXIT_TRUNCATED


class ParseDiagnostic(ArtifactError):
    """A located parse defect: file/line/column, offending text, hint.

    Also used as a plain record (not raised) inside a
    :class:`DiagnosticReport` when a permissive load skips a bad record.
    """

    exit_code = EXIT_PARSE

    def __init__(self, message: str, path=None, line: Optional[int] = None,
                 column: Optional[int] = None, text: Optional[str] = None,
                 hint: Optional[str] = None):
        super().__init__(message, path=path, hint=hint)
        self.line = line
        self.column = column
        self.text = text

    def __str__(self) -> str:
        location = self.path or ""
        if self.line is not None:
            location += f":{self.line}"
            if self.column is not None:
                location += f":{self.column}"
        parts = [f"{location}: " if location else "", self.message]
        if self.text:
            parts.append(f" [{self.text!r}]")
        if self.hint:
            parts.append(f" (hint: {self.hint})")
        return "".join(parts)

    def as_dict(self) -> dict:
        data = super().as_dict()
        data.update(line=self.line, column=self.column, text=self.text)
        return data


class SnapshotError(ArtifactError):
    """A ``.snap`` checkpoint cannot be taken, loaded or applied.

    Covers the *semantic* failures of the checkpoint pipeline — a
    simulation that never reaches a quiescent cycle, a snapshot applied
    to a mismatched platform, a non-checkpointable component, a
    structurally-invalid payload.  Byte-level damage (bad CRC, truncated
    payload, version skew) raises the shared header errors instead, with
    their own exit codes.
    """

    exit_code = EXIT_SNAPSHOT


class SnapshotRecipeMismatch(SnapshotError):
    """A snapshot's embedded platform recipe does not match the target.

    Raised by cross-fabric fast-forward when the workload identity
    differs between the snapshot and the platform it is being restored
    onto — different core count, different TG programs, a different
    address map or resilience configuration.  The fabric itself is
    *allowed* to differ (that is the point of mixed-fidelity restore);
    everything that defines the architectural state is not.

    Attributes:
        mismatches: One human-readable line per differing recipe field.
    """

    def __init__(self, message: str, path=None,
                 hint: Optional[str] = None,
                 mismatches: Optional[List[str]] = None):
        super().__init__(message, path=path, hint=hint)
        self.mismatches = list(mismatches or [])

    def as_dict(self) -> dict:
        data = super().as_dict()
        data["mismatches"] = self.mismatches
        return data


class DiagnosticReport:
    """Everything a permissive load skipped, machine-readable.

    Truthy when any diagnostic was recorded; serialises to the
    ``--diagnostics-json`` schema of the CLI tools.
    """

    def __init__(self, path=None, kind: Optional[str] = None):
        self.path = str(path) if path is not None else None
        self.kind = kind
        self.diagnostics: List[ParseDiagnostic] = []

    def add(self, diagnostic: ParseDiagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def skipped(self) -> int:
        """How many records the permissive load dropped."""
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def __iter__(self) -> Iterator[ParseDiagnostic]:
        return iter(self.diagnostics)

    def summary(self) -> str:
        noun = "record" if len(self.diagnostics) == 1 else "records"
        where = f" in {self.path}" if self.path else ""
        return f"skipped {len(self.diagnostics)} bad {noun}{where}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "skipped": len(self.diagnostics),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
