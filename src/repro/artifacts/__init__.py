"""Hardened I/O for the paper's three artifact formats.

The whole workflow is file-based — trace (``.trc``) → translator
(``.tgp``) → assembler (``.bin``) → TG replay — so a truncated trace or a
bit-flipped image must fail loudly, early and helpfully rather than crash
with a raw ``ValueError`` or silently replay wrong traffic.  This package
provides:

* versioned, CRC32-checksummed headers for all three formats
  (:mod:`repro.artifacts.header`), with a legacy-compat path that still
  reads today's headerless files (plus a ``DeprecationWarning``);
* a typed :class:`ArtifactError` hierarchy (:mod:`repro.artifacts.errors`)
  with per-class CLI exit codes and file/line/column diagnostics;
* strict/permissive loaders (:mod:`repro.artifacts.io`) whose only
  failure mode is a typed error — the contract enforced by the seeded
  fuzz harness in ``tests/artifacts/fuzz.py``.

Format specs, the header layout and the error-code table are documented
in docs/ARTIFACTS.md.
"""

from repro.artifacts.errors import (
    EXIT_CHECKSUM,
    EXIT_FAILURE,
    EXIT_MISSING_FILE,
    EXIT_OK,
    EXIT_PARSE,
    EXIT_SNAPSHOT,
    EXIT_TRUNCATED,
    EXIT_USAGE,
    EXIT_VERSION,
    ArtifactError,
    ChecksumMismatch,
    DiagnosticReport,
    ParseDiagnostic,
    SnapshotError,
    SnapshotRecipeMismatch,
    TruncatedArtifact,
    VersionMismatch,
)
from repro.artifacts.header import (
    add_text_header,
    crc32_hex,
    producer_version,
    split_text_header,
    unwrap_binary,
    wrap_binary,
)
from repro.artifacts.io import (
    Artifact,
    dump_bin,
    dump_tgp,
    dump_trc,
    file_crc32,
    load_artifact_bytes,
    load_bin,
    load_bin_bytes,
    load_tgp,
    load_tgp_bytes,
    load_trc,
    load_trc_bytes,
    reserialize,
    save_bin,
    save_tgp,
    save_trc,
)
from repro.artifacts.snap import (
    dump_snap,
    load_snap,
    load_snap_bytes,
    save_snap,
)

__all__ = [
    "Artifact",
    "ArtifactError",
    "ChecksumMismatch",
    "DiagnosticReport",
    "EXIT_CHECKSUM",
    "EXIT_FAILURE",
    "EXIT_MISSING_FILE",
    "EXIT_OK",
    "EXIT_PARSE",
    "EXIT_SNAPSHOT",
    "EXIT_TRUNCATED",
    "EXIT_USAGE",
    "EXIT_VERSION",
    "ParseDiagnostic",
    "SnapshotError",
    "SnapshotRecipeMismatch",
    "TruncatedArtifact",
    "VersionMismatch",
    "add_text_header",
    "crc32_hex",
    "dump_bin",
    "dump_snap",
    "dump_tgp",
    "dump_trc",
    "file_crc32",
    "load_artifact_bytes",
    "load_bin",
    "load_bin_bytes",
    "load_snap",
    "load_snap_bytes",
    "load_tgp",
    "load_tgp_bytes",
    "load_trc",
    "load_trc_bytes",
    "producer_version",
    "reserialize",
    "save_bin",
    "save_snap",
    "save_tgp",
    "save_trc",
    "split_text_header",
    "unwrap_binary",
    "wrap_binary",
]
