"""Trace event and transaction datatypes."""

import enum
from typing import List, NamedTuple, Optional, Union

from repro.ocp.types import OCPCommand, OCPError


class Phase(enum.Enum):
    """OCP protocol phases recorded in a trace."""

    REQ = "REQ"    #: master presented the command
    ACC = "ACC"    #: command accepted downstream (posted-write unblock)
    RESP = "RESP"  #: read response arrived back (read unblock)


class TraceEvent(NamedTuple):
    """One recorded protocol phase.

    ``time_ns`` is in nanoseconds (cycle × 5 ns, as in the paper's traces).
    ``data`` carries write data on REQ events and read data on RESP events
    (an int, or a list of ints for bursts).
    """

    phase: Phase
    time_ns: int
    cmd: OCPCommand
    addr: int
    burst_len: int = 1
    data: Union[None, int, List[int]] = None
    uid: int = 0

    def __repr__(self) -> str:
        data = "" if self.data is None else f" data={self.data!r}"
        return (f"<{self.phase.value} {self.cmd.value} 0x{self.addr:08x}"
                f"{data} @{self.time_ns}ns>")


class Transaction:
    """A whole transaction reassembled from its phases."""

    __slots__ = ("cmd", "addr", "burst_len", "write_data", "read_data",
                 "req_ns", "acc_ns", "resp_ns", "uid")

    def __init__(self, cmd: OCPCommand, addr: int, burst_len: int,
                 req_ns: int, uid: int = 0):
        self.cmd = cmd
        self.addr = addr
        self.burst_len = burst_len
        self.req_ns = req_ns
        self.acc_ns: Optional[int] = None
        self.resp_ns: Optional[int] = None
        self.write_data: Union[None, int, List[int]] = None
        self.read_data: Union[None, int, List[int]] = None
        self.uid = uid

    @property
    def unblock_ns(self) -> int:
        """When the master resumed: response for reads, accept for writes."""
        if self.cmd.is_read:
            if self.resp_ns is None:
                raise OCPError(f"read {self!r} has no response record")
            return self.resp_ns
        if self.acc_ns is None:
            raise OCPError(f"write {self!r} has no accept record")
        return self.acc_ns

    @property
    def complete(self) -> bool:
        if self.acc_ns is None:
            return False
        return self.resp_ns is not None if self.cmd.is_read else True

    @property
    def response_word(self) -> int:
        """Single-word read data (last beat for bursts)."""
        if isinstance(self.read_data, list):
            return self.read_data[-1]
        if self.read_data is None:
            raise OCPError(f"{self!r} carries no read data")
        return self.read_data

    def __repr__(self) -> str:
        return (f"<Txn {self.cmd.value} 0x{self.addr:08x} len={self.burst_len} "
                f"req@{self.req_ns}ns>")


def group_events(events: List[TraceEvent]) -> List[Transaction]:
    """Reassemble a master's event stream into ordered transactions."""
    transactions: List[Transaction] = []
    by_uid = {}
    for event in events:
        if event.phase == Phase.REQ:
            txn = Transaction(event.cmd, event.addr, event.burst_len,
                              event.time_ns, event.uid)
            if event.cmd.is_write:
                txn.write_data = event.data
            by_uid[event.uid] = txn
            transactions.append(txn)
            continue
        txn = by_uid.get(event.uid)
        if txn is None:
            raise OCPError(f"{event!r} has no matching request")
        if event.phase == Phase.ACC:
            txn.acc_ns = event.time_ns
        else:
            txn.resp_ns = event.time_ns
            txn.read_data = event.data
    for txn in transactions:
        if not txn.complete:
            raise OCPError(f"incomplete transaction {txn!r} in trace")
    return transactions
