"""Trace collection and trace→TG-program translation (the TG flow).

The simulation flow of paper Section 5:

1. attach a :class:`TraceCollector` to every master OCP port of the
   reference simulation (``collect_traces`` wires a whole platform);
2. run; each collector holds the master's communication events (request /
   accept / response, with ns timestamps, commands, addresses, data);
3. persist as ``.trc`` text (:mod:`repro.trace.trc_format`, the format of
   paper Figure 3(a) extended with accept records and bursts);
4. translate each trace into a TG program
   (:class:`~repro.trace.translator.Translator` → ``.tgp``), recognising
   polling accesses to pollable address ranges and collapsing them into
   reactive loops;
5. assemble to ``.bin`` (:mod:`repro.core.assembler`) and execute on
   :class:`~repro.core.tg_master.TGMaster` against any interconnect.
"""

from repro.trace.events import Phase, TraceEvent, Transaction, group_events
from repro.trace.trc_format import parse_trc, serialize_trc
from repro.trace.collector import TraceCollector, collect_traces
from repro.trace.translator import (
    TranslationStats,
    Translator,
    TranslatorOptions,
)
from repro.trace.manifest import (
    load_trace_set,
    save_trace_set,
    translate_trace_set,
)

__all__ = [
    "Phase",
    "TraceCollector",
    "TraceEvent",
    "Transaction",
    "TranslationStats",
    "Translator",
    "TranslatorOptions",
    "collect_traces",
    "group_events",
    "load_trace_set",
    "parse_trc",
    "save_trace_set",
    "serialize_trc",
    "translate_trace_set",
]
