"""Trace-set directories: all of a platform's traces plus metadata.

A reference simulation produces one trace per master; design-space
exploration wants to archive them together with everything needed to
re-translate later (pollable ranges, benchmark identity, the fabric they
were collected on).  A *trace set* is a directory::

    traceset/
      manifest.json      metadata + file index
      core0.trc
      core1.trc
      ...

and, after :func:`translate_trace_set`, the derived programs::

      core0.tgp  core0.bin  ...
"""

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.core import TGProgram
from repro.core.assembler import assemble_binary
from repro.core.modes import ReplayMode
from repro.trace.collector import TraceCollector
from repro.trace.events import TraceEvent
from repro.trace.translator import Translator, TranslatorOptions
from repro.trace.trc_format import parse_trc

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def save_trace_set(directory, collectors: Dict[int, TraceCollector],
                   benchmark: str = "",
                   interconnect: str = "",
                   pollable_ranges: Optional[List[Tuple[int, int]]] = None,
                   extra: Optional[dict] = None) -> str:
    """Write every collector's ``.trc`` plus ``manifest.json``.

    Returns the manifest path.
    """
    os.makedirs(directory, exist_ok=True)
    files = {}
    for master_id, collector in sorted(collectors.items()):
        filename = f"core{master_id}.trc"
        collector.save(os.path.join(directory, filename),
                       header_comment=f"{benchmark} on {interconnect}"
                       if benchmark else None)
        files[str(master_id)] = filename
    manifest = {
        "version": FORMAT_VERSION,
        "benchmark": benchmark,
        "interconnect": interconnect,
        "n_masters": len(collectors),
        "pollable_ranges": [[base, size]
                            for base, size in (pollable_ranges or [])],
        "files": files,
    }
    if extra:
        manifest["extra"] = extra
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def load_trace_set(directory) -> Tuple[dict, Dict[int, List[TraceEvent]]]:
    """Read a trace set back; returns ``(manifest, {master_id: events})``."""
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace-set version "
                         f"{manifest.get('version')!r}")
    traces: Dict[int, List[TraceEvent]] = {}
    for key, filename in manifest["files"].items():
        with open(os.path.join(directory, filename)) as handle:
            master_id, events = parse_trc(handle.read())
        expected = int(key)
        if master_id != expected:
            raise ValueError(f"{filename}: header says master {master_id},"
                             f" manifest says {expected}")
        traces[expected] = events
    return manifest, traces


def translate_trace_set(directory,
                        mode: ReplayMode = ReplayMode.REACTIVE,
                        write_programs: bool = True,
                        options: Optional[TranslatorOptions] = None,
                        ) -> Dict[int, TGProgram]:
    """Translate every trace of a set; optionally write .tgp/.bin files.

    The pollable ranges default to the ones recorded in the manifest.
    """
    manifest, traces = load_trace_set(directory)
    if options is None:
        options = TranslatorOptions(
            mode=mode,
            pollable_ranges=[tuple(r)
                             for r in manifest.get("pollable_ranges", [])])
    translator = Translator(options)
    programs: Dict[int, TGProgram] = {}
    for master_id, events in sorted(traces.items()):
        program = translator.translate_events(events, master_id)
        programs[master_id] = program
        if write_programs:
            stem = os.path.join(directory, f"core{master_id}")
            with open(stem + ".tgp", "w") as handle:
                handle.write(program.to_tgp())
            with open(stem + ".bin", "wb") as handle:
                handle.write(assemble_binary(program))
    return programs
