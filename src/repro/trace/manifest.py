"""Trace-set directories: all of a platform's traces plus metadata.

A reference simulation produces one trace per master; design-space
exploration wants to archive them together with everything needed to
re-translate later (pollable ranges, benchmark identity, the fabric they
were collected on).  A *trace set* is a directory::

    traceset/
      manifest.json      metadata + file index + per-file checksums
      core0.trc
      core1.trc
      ...

and, after :func:`translate_trace_set`, the derived programs::

      core0.tgp  core0.bin  ...

Every file is written through :mod:`repro.artifacts` (versioned header +
CRC32), and the manifest records each trace's payload checksum so a
swapped or edited file is caught even when its own header still
verifies.  Loading raises typed
:class:`~repro.artifacts.errors.ArtifactError`\\ s; manifest-level
defects raise :class:`ManifestError` (also a ``ValueError``, the
exception historical callers catch).
"""

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.artifacts.errors import ArtifactError, ChecksumMismatch
from repro.artifacts.io import load_trc, save_bin, save_tgp, save_trc
from repro.core import TGProgram
from repro.core.modes import ReplayMode
from repro.trace.collector import TraceCollector
from repro.trace.events import TraceEvent
from repro.trace.translator import Translator, TranslatorOptions

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


class ManifestError(ArtifactError, ValueError):
    """A defective trace-set manifest (bad JSON, version, or file index)."""


def save_trace_set(directory, collectors: Dict[int, TraceCollector],
                   benchmark: str = "",
                   interconnect: str = "",
                   pollable_ranges: Optional[List[Tuple[int, int]]] = None,
                   extra: Optional[dict] = None) -> str:
    """Write every collector's ``.trc`` plus ``manifest.json``.

    Returns the manifest path.
    """
    os.makedirs(directory, exist_ok=True)
    files = {}
    checksums = {}
    for master_id, collector in sorted(collectors.items()):
        filename = f"core{master_id}.trc"
        checksum = save_trc(
            os.path.join(directory, filename), collector.events,
            master_id=collector.master_id,
            header_comment=f"{benchmark} on {interconnect}"
            if benchmark else None)
        files[str(master_id)] = filename
        checksums[filename] = checksum
    manifest = {
        "version": FORMAT_VERSION,
        "benchmark": benchmark,
        "interconnect": interconnect,
        "n_masters": len(collectors),
        "pollable_ranges": [[base, size]
                            for base, size in (pollable_ranges or [])],
        "files": files,
        "checksums": checksums,
    }
    if extra:
        manifest["extra"] = extra
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def load_trace_set(directory, strict: bool = True,
                   ) -> Tuple[dict, Dict[int, List[TraceEvent]]]:
    """Read a trace set back; returns ``(manifest, {master_id: events})``.

    Every trace is loaded through the verified artifact layer; when the
    manifest records checksums (new-format sets), each file's payload
    CRC32 is cross-checked against it, so swapping two intact files is
    caught.  ``strict=False`` skips recoverably-bad trace records
    instead of raising (see docs/ARTIFACTS.md).
    """
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path) as handle:
        try:
            manifest = json.load(handle)
        except ValueError as error:
            raise ManifestError(f"manifest is not valid JSON: {error}",
                                path=path,
                                hint="regenerate the trace set") from None
    if not isinstance(manifest, dict) or \
            not isinstance(manifest.get("files"), dict):
        raise ManifestError("manifest has no file index", path=path,
                            hint="regenerate the trace set")
    if manifest.get("version") != FORMAT_VERSION:
        raise ManifestError(
            f"unsupported trace-set version {manifest.get('version')!r}",
            path=path,
            hint=f"this build reads version {FORMAT_VERSION}")
    checksums = manifest.get("checksums") or {}
    traces: Dict[int, List[TraceEvent]] = {}
    for key, filename in manifest["files"].items():
        trace_path = os.path.join(directory, filename)
        artifact = load_trc(trace_path, strict=strict)
        master_id, events = artifact.value
        try:
            expected = int(key)
        except ValueError:
            raise ManifestError(f"bad master id {key!r} in file index",
                                path=path) from None
        if master_id != expected:
            raise ManifestError(
                f"{filename}: header says master {master_id}, manifest "
                f"says {expected}", path=path,
                hint="the trace files were renamed or shuffled")
        recorded = checksums.get(filename)
        if recorded is not None and artifact.checksum != recorded:
            raise ChecksumMismatch(
                f"payload CRC32 {artifact.checksum} != manifest "
                f"{recorded}", path=trace_path,
                hint="the trace changed after the set was archived — "
                     "regenerate the trace set")
        traces[expected] = events
    return manifest, traces


def translate_trace_set(directory,
                        mode: ReplayMode = ReplayMode.REACTIVE,
                        write_programs: bool = True,
                        options: Optional[TranslatorOptions] = None,
                        ) -> Dict[int, TGProgram]:
    """Translate every trace of a set; optionally write .tgp/.bin files.

    The pollable ranges default to the ones recorded in the manifest.
    """
    manifest, traces = load_trace_set(directory)
    if options is None:
        options = TranslatorOptions(
            mode=mode,
            pollable_ranges=[tuple(r)
                             for r in manifest.get("pollable_ranges", [])])
    translator = Translator(options)
    programs: Dict[int, TGProgram] = {}
    for master_id, events in sorted(traces.items()):
        program = translator.translate_events(events, master_id)
        programs[master_id] = program
        if write_programs:
            stem = os.path.join(directory, f"core{master_id}")
            save_tgp(stem + ".tgp", program)
            save_bin(stem + ".bin", program)
    return programs
