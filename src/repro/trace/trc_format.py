"""The ``.trc`` text format (paper Figure 3(a), extended).

The original trace format records request and response events with
timestamps; ours adds explicit command-accept (``ACC``) records — the OCP
``SCmdAccept`` instant — because posted-write gaps must be measured from
the accept, and burst transfers.  Example::

    ; repro .trc v1
    ; master 0
    REQ RD 0x00000104 @55ns
    ACC RD 0x00000104 @60ns
    RESP RD 0x00000104 0x088000f0 @75ns
    REQ WR 0x00000020 0x00000111 @90ns
    ACC WR 0x00000020 @95ns
    REQ BRD 0x00001000 len=4 @140ns
    ACC BRD 0x00001000 @145ns
    RESP BRD 0x00001000 0x00000001,0x00000002,0x00000003,0x00000004 @165ns
"""

import re
from typing import List, Optional, Tuple

from repro.ocp.types import OCPCommand, OCPError
from repro.trace.events import Phase, TraceEvent

_CMD_BY_CODE = {cmd.value: cmd for cmd in OCPCommand}

_LINE_RE = re.compile(
    r"^(REQ|ACC|RESP)\s+(RD|WR|BRD|BWR)\s+(0x[0-9a-fA-F]+)"
    r"(?:\s+len=(\d+))?"
    r"(?:\s+((?:0x[0-9a-fA-F]+)(?:,0x[0-9a-fA-F]+)*))?"
    r"\s+@(\d+)ns$")


def _format_data(data) -> str:
    if isinstance(data, list):
        return ",".join(f"0x{word:08x}" for word in data)
    return f"0x{data:08x}"


def serialize_trc(events: List[TraceEvent], master_id: int = 0,
                  header_comment: Optional[str] = None) -> str:
    """Serialise a master's event stream to ``.trc`` text."""
    lines = ["; repro .trc v1", f"; master {master_id}"]
    if header_comment:
        lines.append(f"; {header_comment}")
    for event in events:
        parts = [event.phase.value, event.cmd.value, f"0x{event.addr:08x}"]
        if event.cmd.is_burst and event.phase == Phase.REQ:
            parts.append(f"len={event.burst_len}")
        if event.data is not None:
            parts.append(_format_data(event.data))
        parts.append(f"@{event.time_ns}ns")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def parse_trc(text: str) -> Tuple[int, List[TraceEvent]]:
    """Parse ``.trc`` text; returns ``(master_id, events)``.

    Request/accept/response records are re-linked by transaction order
    (uids are regenerated: the *n*-th REQ gets uid *n*, and ACC/RESP
    records attach to the most recent unsatisfied transaction of matching
    address — sufficient because a master has one transaction in flight).
    """
    master_id = 0
    events: List[TraceEvent] = []
    open_uids: List[Tuple[int, OCPCommand, int, int]] = []
    next_uid = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            match = re.match(r";\s*master\s+(\d+)", line)
            if match:
                master_id = int(match.group(1))
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise OCPError(f".trc line {line_no}: cannot parse {line!r}")
        phase = Phase[match.group(1)]
        cmd = _CMD_BY_CODE[match.group(2)]
        addr = int(match.group(3), 16)
        length = int(match.group(4)) if match.group(4) else 1
        data_text = match.group(5)
        time_ns = int(match.group(6))
        data = None
        if data_text:
            words = [int(tok, 16) for tok in data_text.split(",")]
            data = words if (cmd.is_burst and len(words) > 1) else words[0]
            if cmd.is_burst and isinstance(data, int):
                data = [data]
        if phase == Phase.REQ:
            uid = next_uid
            next_uid += 1
            burst_len = length if cmd.is_burst else 1
            open_uids.append((uid, cmd, addr, burst_len))
            events.append(TraceEvent(phase, time_ns, cmd, addr, burst_len,
                                     data, uid))
            continue
        # attach to the oldest open transaction with this cmd+addr
        for slot, (uid, open_cmd, open_addr, burst_len) in enumerate(open_uids):
            if open_cmd == cmd and open_addr == addr:
                break
        else:
            raise OCPError(f".trc line {line_no}: {phase.value} without "
                           f"open request")
        events.append(TraceEvent(phase, time_ns, cmd, addr, burst_len,
                                 data, uid))
        closes = (phase == Phase.RESP) if cmd.is_read else (phase == Phase.ACC)
        if closes:
            open_uids.pop(slot)
    return master_id, events
