"""The ``.trc`` text format (paper Figure 3(a), extended).

The original trace format records request and response events with
timestamps; ours adds explicit command-accept (``ACC``) records — the OCP
``SCmdAccept`` instant — because posted-write gaps must be measured from
the accept, and burst transfers.  Example::

    ; repro .trc v1
    ; master 0
    REQ RD 0x00000104 @55ns
    ACC RD 0x00000104 @60ns
    RESP RD 0x00000104 0x088000f0 @75ns
    REQ WR 0x00000020 0x00000111 @90ns
    ACC WR 0x00000020 @95ns
    REQ BRD 0x00001000 len=4 @140ns
    ACC BRD 0x00001000 @145ns
    RESP BRD 0x00001000 0x00000001,0x00000002,0x00000003,0x00000004 @165ns
"""

import re
from typing import Callable, List, Optional, Tuple

from repro.artifacts.errors import ParseDiagnostic
from repro.ocp.types import OCPCommand, OCPError
from repro.trace.events import Phase, TraceEvent

_CMD_BY_CODE = {cmd.value: cmd for cmd in OCPCommand}

_LINE_RE = re.compile(
    r"^(REQ|ACC|RESP)\s+(RD|WR|BRD|BWR)\s+(0x[0-9a-fA-F]+)"
    r"(?:\s+len=(\d+))?"
    r"(?:\s+((?:0x[0-9a-fA-F]+)(?:,0x[0-9a-fA-F]+)*))?"
    r"\s+@(\d+)ns$")

#: Largest accepted ``; master N`` id — beyond any plausible platform.
MAX_MASTER_ID = 1023


class TrcParseError(ParseDiagnostic, OCPError):
    """A located ``.trc`` defect.

    Subclasses both :class:`~repro.artifacts.errors.ParseDiagnostic`
    (artifact-pipeline contract: file/line/column + hint + exit code) and
    :class:`~repro.ocp.types.OCPError` (the exception historical callers
    of :func:`parse_trc` catch).
    """


def _format_data(data) -> str:
    if isinstance(data, list):
        return ",".join(f"0x{word:08x}" for word in data)
    return f"0x{data:08x}"


def serialize_trc(events: List[TraceEvent], master_id: int = 0,
                  header_comment: Optional[str] = None) -> str:
    """Serialise a master's event stream to ``.trc`` text."""
    lines = ["; repro .trc v1", f"; master {master_id}"]
    if header_comment:
        lines.append(f"; {header_comment}")
    for event in events:
        parts = [event.phase.value, event.cmd.value, f"0x{event.addr:08x}"]
        if event.cmd.is_burst and event.phase == Phase.REQ:
            parts.append(f"len={event.burst_len}")
        if event.data is not None:
            parts.append(_format_data(event.data))
        parts.append(f"@{event.time_ns}ns")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def parse_trc(text: str,
              on_error: Optional[Callable[[TrcParseError], None]] = None,
              ) -> Tuple[int, List[TraceEvent]]:
    """Parse ``.trc`` text; returns ``(master_id, events)``.

    Request/accept/response records are re-linked by transaction order
    (uids are regenerated: the *n*-th REQ gets uid *n*, and ACC/RESP
    records attach to the most recent unsatisfied transaction of matching
    address — sufficient because a master has one transaction in flight).

    Defective records raise :class:`TrcParseError` (an
    :class:`~repro.ocp.types.OCPError` subclass): unparseable lines,
    orphan ACC/RESP records, out-of-range master ids, timestamps that go
    backwards, and exact duplicate records.  Pass ``on_error`` to recover
    instead: it receives each diagnostic and the offending record is
    skipped (permissive mode — see docs/ARTIFACTS.md).
    """
    master_id = 0
    events: List[TraceEvent] = []
    open_uids: List[Tuple[int, OCPCommand, int, int]] = []
    next_uid = 0
    last_time: Optional[int] = None
    last_record: Optional[Tuple] = None

    def fail(message: str, line_no: int, line: str,
             hint: Optional[str] = None) -> bool:
        """Report one defect; returns True when the caller should skip."""
        diagnostic = TrcParseError(message, line=line_no, column=1,
                                   text=line, hint=hint)
        if on_error is None:
            raise diagnostic
        on_error(diagnostic)
        return True

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            match = re.match(r";\s*master\s+(\d+)", line)
            if match:
                declared = int(match.group(1))
                if declared > MAX_MASTER_ID:
                    fail(f"master id {declared} out of range "
                         f"[0, {MAX_MASTER_ID}]", line_no, line,
                         hint="fix the '; master N' header line")
                    continue
                master_id = declared
            continue
        match = _LINE_RE.match(line)
        if not match:
            fail(f"cannot parse record {line!r}", line_no, line,
                 hint="expected 'REQ|ACC|RESP RD|WR|BRD|BWR 0xADDR "
                      "[len=N] [0xDATA,...] @Tns'")
            continue
        phase = Phase[match.group(1)]
        cmd = _CMD_BY_CODE[match.group(2)]
        addr = int(match.group(3), 16)
        length = int(match.group(4)) if match.group(4) else 1
        data_text = match.group(5)
        time_ns = int(match.group(6))
        if last_time is not None and time_ns < last_time:
            fail(f"timestamp @{time_ns}ns declines (previous record is "
                 f"@{last_time}ns)", line_no, line,
                 hint="trace records must be in non-decreasing time "
                      "order — re-capture or sort the trace")
            continue
        record = (phase, cmd, addr, time_ns)
        if record == last_record:
            fail(f"duplicate record (same phase/command/address "
                 f"@{time_ns}ns as the previous line)", line_no, line,
                 hint="remove the repeated line")
            continue
        data = None
        if data_text:
            words = [int(tok, 16) for tok in data_text.split(",")]
            data = words if (cmd.is_burst and len(words) > 1) else words[0]
            if cmd.is_burst and isinstance(data, int):
                data = [data]
        if phase == Phase.REQ:
            uid = next_uid
            next_uid += 1
            burst_len = length if cmd.is_burst else 1
            open_uids.append((uid, cmd, addr, burst_len))
            events.append(TraceEvent(phase, time_ns, cmd, addr, burst_len,
                                     data, uid))
            last_time, last_record = time_ns, record
            continue
        # attach to the oldest open transaction with this cmd+addr
        for slot, (uid, open_cmd, open_addr, burst_len) in enumerate(open_uids):
            if open_cmd == cmd and open_addr == addr:
                break
        else:
            fail(f"{phase.value} without open request", line_no, line,
                 hint="every ACC/RESP needs a preceding REQ with the "
                      "same command and address")
            continue
        events.append(TraceEvent(phase, time_ns, cmd, addr, burst_len,
                                 data, uid))
        last_time, last_record = time_ns, record
        closes = (phase == Phase.RESP) if cmd.is_read else (phase == Phase.ACC)
        if closes:
            open_uids.pop(slot)
    return master_id, events
