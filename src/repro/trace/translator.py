"""Trace → TG-program translation (paper Section 5 / Figure 3).

The translator walks a master's transactions and rebuilds the core's
*local* behaviour between them:

* the gap between a transaction's unblock point (response for reads,
  command accept for writes) and the next request is local computation —
  it becomes ``SetRegister`` instructions (when the address/data registers
  need new values) plus an ``Idle`` filling the remainder;
* consecutive reads to a **pollable** address (semaphore bank, barrier
  device, mailbox flags) are a polling sequence — in REACTIVE mode they
  collapse into the paper's ``Semchk`` pattern::

      SetRegister(addr, <location>)
      SetRegister(tempreg, <success value>)
    Semchk_1:
      Read(addr)
      Idle(<inner gap>)
      If(rdreg != tempreg) Semchk_1

  The success value is taken from the final read of the sequence (the one
  that satisfied the core), so the same mechanism covers semaphores
  (reads 1 on acquire), barriers (reads the full count) and mailbox flags
  (reads the partner's value).  The *number* of polls is decided at TG run
  time by the target interconnect — the reactive behaviour of Section 3.

The translator's cycle accounting mirrors the TG's execution cost model
(``SetRegister``/``If``/``Jump`` = 1 cycle, ``Idle(n)`` = n, OCP ops issue
instantly): an emitted idle is ``gap - instruction_overhead``, clamped at
zero.  Clamping is the "minimal timing mismatch caused by the conversion"
the paper cites as its residual error source.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.isa import (
    ADDRREG,
    Cond,
    DATAREG,
    TEMPREG,
    TGInstruction,
    TGOp,
)
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram
from repro.kernel.simulator import CYCLE_NS
from repro.ocp.types import OCPCommand, OCPError
from repro.trace.events import TraceEvent, Transaction, group_events

#: Fallback inner-loop idle when a poll succeeded first try in the
#: reference run (cycles between a poll response and the next poll request;
#: matches the armlet polling loop: CMPI + taken BNE + LDR base = 4).
DEFAULT_POLL_GAP = 4


@dataclass
class TranslationStats:
    """Timing-conversion accounting for one translated program.

    A *clamped* gap is a transaction whose setup overhead exceeded the
    trace gap before it — the TG cannot issue that early, and without
    borrowing the deficit silently vanishes (the TG cursor drifts ahead
    of the trace for the rest of the program).  With
    ``borrow_idle_debt`` the deficit is carried forward instead and
    repaid by shortening later idles (``borrowed_cycles``); whatever
    the program never manages to repay remains as ``residual_debt``.
    The clamp counters are maintained either way, so the residual
    Table-2 error is attributable even under the default behaviour.
    """

    clamped_gaps: int = 0        # transactions whose idle gap went negative
    clamped_cycles: int = 0      # total deficit cycles across those gaps
    borrowed_cycles: int = 0     # deficit repaid by shortening later idles
    residual_debt: int = 0       # deficit still unpaid at program end

    def as_dict(self) -> dict:
        return {"clamped_gaps": self.clamped_gaps,
                "clamped_cycles": self.clamped_cycles,
                "borrowed_cycles": self.borrowed_cycles,
                "residual_debt": self.residual_debt}


class TranslatorOptions:
    """Translation configuration.

    Args:
        mode: Replay fidelity (see :class:`~repro.core.modes.ReplayMode`).
        pollable_ranges: ``(base, size)`` byte ranges whose reads are
            polling accesses (the "knowledge of what addressing ranges
            represent pollable resources" of Section 3).
        default_poll_gap: Inner poll idle when the trace shows no failed
            polls to learn it from.
        cycle_ns: Trace timestamp resolution (ns per TG cycle).
        borrow_idle_debt: Carry a negative idle gap (setup overhead
            exceeding the trace gap) forward as timing debt, repaid by
            shortening later idles, instead of silently dropping it.
            Off by default: borrowing changes emitted idle values, so
            enabling it perturbs the locked Table-2 cycle counts —
            the clamp *statistics* are collected either way (see
            :class:`TranslationStats`).
    """

    def __init__(self, mode: ReplayMode = ReplayMode.REACTIVE,
                 pollable_ranges: Optional[Sequence[Tuple[int, int]]] = None,
                 default_poll_gap: int = DEFAULT_POLL_GAP,
                 cycle_ns: int = CYCLE_NS,
                 address_registers: int = 1,
                 borrow_idle_debt: bool = False):
        if not 1 <= address_registers <= 12:
            raise ValueError("address_registers must be in [1, 12]")
        self.mode = mode
        self.pollable_ranges = list(pollable_ranges or [])
        self.default_poll_gap = default_poll_gap
        self.cycle_ns = cycle_ns
        self.borrow_idle_debt = borrow_idle_debt
        #: How many TG registers to allocate to addresses.  1 reproduces
        #: the paper's minimal ``addr`` register; more registers cache
        #: the hottest addresses (LRU), saving SetRegister cycles and
        #: shrinking the clamped-idle conversion error (ablation E17).
        self.address_registers = address_registers

    def is_pollable(self, addr: int) -> bool:
        return any(base <= addr < base + size
                   for base, size in self.pollable_ranges)


class Translator:
    """Translates one master's trace into a :class:`TGProgram`."""

    def __init__(self, options: Optional[TranslatorOptions] = None):
        self.options = options or TranslatorOptions()
        #: :class:`TranslationStats` of the most recent ``translate``
        #: call (None before the first).
        self.stats: Optional[TranslationStats] = None

    # ------------------------------------------------------------- public

    def translate_events(self, events: List[TraceEvent],
                         core_id: int = 0) -> TGProgram:
        """Translate a raw event stream.

        The stream must be in non-decreasing time order (what
        :func:`~repro.trace.trc_format.parse_trc` and the collectors
        guarantee); an unordered stream would silently translate into
        wrong idle gaps, so it is rejected up front.
        """
        for previous, event in zip(events, events[1:]):
            if event.time_ns < previous.time_ns:
                from repro.trace.trc_format import TrcParseError
                raise TrcParseError(
                    f"event stream not in time order (@{event.time_ns}ns "
                    f"after @{previous.time_ns}ns)",
                    hint="re-parse the trace with parse_trc, which "
                         "validates record order")
        return self.translate(group_events(events), core_id)

    def translate(self, transactions: List[Transaction],
                  core_id: int = 0) -> TGProgram:
        """Translate reassembled transactions."""
        state = _EmitState(self.options, core_id)
        index = 0
        while index < len(transactions):
            cluster = self._poll_cluster(transactions, index)
            if cluster is not None and self.options.mode is ReplayMode.REACTIVE:
                consumed, polls, interleaved = cluster
                # A cache refill can land in the middle of the core's very
                # first loop iteration; emitting it before the collapsed
                # loop keeps the program semantically correct (the success
                # value is the value that actually ended the polling).
                for txn in interleaved:
                    state.emit_transaction(txn)
                state.emit_poll_run(polls)
                index += consumed
                continue
            state.emit_transaction(transactions[index])
            index += 1
        state.program.append(TGInstruction(TGOp.HALT))
        state.program.validate()
        state.stats.residual_debt = state.debt
        self.stats = state.stats
        return state.program

    # ------------------------------------------------------------ helpers

    #: Maximum refill-like transactions tolerated between two polls of the
    #: same location before the cluster is considered broken.
    MAX_INTERLEAVED = 2

    def _poll_cluster(self, transactions: List[Transaction], start: int
                      ) -> Optional[Tuple[int, List[Transaction],
                                          List[Transaction]]]:
        """Maximal polling cluster starting at ``start``.

        A cluster is a sequence of reads to one pollable address, possibly
        interrupted by a bounded number of refill-like reads to
        *non-pollable* addresses (instruction-cache misses inside the
        first loop iteration).  Returns ``(consumed, polls, interleaved)``
        or None when ``start`` is not a polling access.
        """
        first = transactions[start]
        if first.cmd != OCPCommand.READ:
            return None
        if not self.options.is_pollable(first.addr):
            return None
        polls = [first]
        interleaved: List[Transaction] = []
        pending: List[Transaction] = []
        consumed = 1
        index = start + 1
        while index < len(transactions):
            txn = transactions[index]
            if txn.cmd == OCPCommand.READ and txn.addr == first.addr:
                polls.append(txn)
                interleaved.extend(pending)
                pending = []
                consumed = index - start + 1
            elif (txn.cmd == OCPCommand.BURST_READ
                  and not self.options.is_pollable(txn.addr)
                  and len(pending) < self.MAX_INTERLEAVED):
                pending.append(txn)
            else:
                break
            index += 1
        return consumed, polls, interleaved


class _EmitState:
    """Accumulates instructions while tracking the TG's timing cursor."""

    def __init__(self, options: TranslatorOptions, core_id: int):
        self.options = options
        self.program = TGProgram(core_id=core_id, mode=options.mode)
        #: TG-time cursor: cycle at which the previous transaction
        #: unblocked the master (0 at program start).
        self.cursor = 0
        #: Cycles of instructions already emitted since the cursor (e.g.
        #: the If that falls through after a successful poll).
        self.pending_overhead = 0
        #: Unpaid timing debt from clamped (negative) idle gaps; only
        #: accumulates when ``options.borrow_idle_debt`` is set.
        self.debt = 0
        self.stats = TranslationStats()
        # address-register allocation: ADDRREG plus generic registers
        # r4.. as configured, LRU-replaced (maps address -> register)
        self._addr_regs = [ADDRREG] + list(
            range(4, 4 + options.address_registers - 1))
        self._addr_map: "OrderedDict[int, int]" = OrderedDict()
        self.data_value: Optional[int] = None
        self.temp_value: Optional[int] = None
        self._poll_counter = 0

    def _cycles(self, time_ns: int) -> int:
        return time_ns // self.options.cycle_ns

    # ----------------------------------------------------------- emission

    def _set_addr(self, addr: int) -> Tuple[int, int]:
        """Ensure ``addr`` is in a register; returns (register, overhead)."""
        reg = self._addr_map.get(addr)
        if reg is not None:
            self._addr_map.move_to_end(addr)
            return reg, 0
        if len(self._addr_map) < len(self._addr_regs):
            used = set(self._addr_map.values())
            reg = next(r for r in self._addr_regs if r not in used)
        else:
            _, reg = self._addr_map.popitem(last=False)  # evict LRU
        self._addr_map[addr] = reg
        self.program.append(TGInstruction(TGOp.SET_REGISTER, a=reg,
                                          imm=addr))
        return reg, 1

    def _set_data(self, data: int) -> int:
        if self.data_value != data:
            self.program.append(TGInstruction(TGOp.SET_REGISTER, a=DATAREG,
                                              imm=data))
            self.data_value = data
            return 1
        return 0

    def _set_temp(self, value: int) -> int:
        if self.temp_value != value:
            self.program.append(TGInstruction(TGOp.SET_REGISTER, a=TEMPREG,
                                              imm=value))
            self.temp_value = value
            return 1
        return 0

    def _emit_idle(self, request_cycles: int, overhead: int) -> None:
        gap = request_cycles - self.cursor - self.pending_overhead - overhead
        if gap < 0:
            # setup overhead exceeded the trace gap: the TG cannot issue
            # this early.  The deficit is counted always; with
            # borrow_idle_debt it is additionally carried forward and
            # repaid out of later idles instead of vanishing.
            self.stats.clamped_gaps += 1
            self.stats.clamped_cycles += -gap
            if self.options.borrow_idle_debt:
                self.debt += -gap
        elif gap > 0:
            if self.debt:
                repay = min(self.debt, gap)
                self.debt -= repay
                gap -= repay
                self.stats.borrowed_cycles += repay
            if gap > 0:
                self.program.append(TGInstruction(TGOp.IDLE, imm=gap))
        self.pending_overhead = 0

    def emit_transaction(self, txn: Transaction) -> None:
        """Emit one ordinary transaction (setup + idle + OCP op)."""
        addr_reg, overhead = self._set_addr(txn.addr)
        if txn.cmd == OCPCommand.WRITE:
            overhead += self._set_data(txn.write_data)
        self._emit_idle(self._cycles(txn.req_ns), overhead)
        if txn.cmd == OCPCommand.READ:
            self.program.append(TGInstruction(TGOp.READ, a=addr_reg))
        elif txn.cmd == OCPCommand.WRITE:
            self.program.append(TGInstruction(TGOp.WRITE, a=addr_reg,
                                              b=DATAREG))
        elif txn.cmd == OCPCommand.BURST_READ:
            self.program.append(TGInstruction(TGOp.BURST_READ, a=addr_reg,
                                              b=txn.burst_len))
        elif txn.cmd == OCPCommand.BURST_WRITE:
            offset = self.program.add_pool(list(txn.write_data))
            self.program.append(TGInstruction(TGOp.BURST_WRITE, a=addr_reg,
                                              b=txn.burst_len, imm=offset))
        else:  # pragma: no cover
            raise OCPError(f"cannot translate {txn!r}")
        if self.options.mode is ReplayMode.CLONING:
            # the program never blocks: its own time advances only through
            # idles, so the cursor is the issue instant
            self.cursor = self._cycles(txn.req_ns)
        else:
            self.cursor = self._cycles(txn.unblock_ns)

    def emit_poll_run(self, run: List[Transaction]) -> None:
        """Collapse a polling sequence into reactive Semchk loop(s).

        A consecutive-read run can contain *several* polling loops: if
        the core acquired a semaphore and immediately started polling to
        re-acquire it, the value sequence looks like ``1, 0, 0, 1`` —
        one loop per success.  The CPU's wanted value is the same for
        every loop over one location (same compare instruction), so the
        run is split after each occurrence of the final (success) value
        and each segment becomes its own loop.  A single merged loop
        would exit at the first success and silently drop the later
        acquisitions — corrupting device state, not just timing.
        """
        success_value = run[-1].response_word
        segment: List[Transaction] = []
        for txn in run:
            segment.append(txn)
            if txn.response_word == success_value:
                self._emit_one_poll_loop(segment)
                segment = []
        # by construction the run ends with the success value, so no
        # segment can be left over
        assert not segment

    def _emit_one_poll_loop(self, run: List[Transaction]) -> None:
        first, last = run[0], run[-1]
        success_value = last.response_word
        inner_idle = self._inner_poll_idle(run)
        addr_reg, overhead = self._set_addr(first.addr)
        overhead += self._set_temp(success_value)
        # The loop head's Idle also runs before the *first* poll, so the
        # pre-loop idle is shortened by the same amount.
        self._emit_idle(self._cycles(first.req_ns), overhead + inner_idle)
        self._poll_counter += 1
        label = f"Semchk_{self._poll_counter}"
        loop_index = self.program.label_next(label)
        if inner_idle > 0:
            self.program.append(TGInstruction(TGOp.IDLE, imm=inner_idle))
        self.program.append(TGInstruction(TGOp.READ, a=addr_reg))
        self.program.append(TGInstruction(
            TGOp.IF, a=0, b=TEMPREG, cond=int(Cond.NE), imm=loop_index))
        # after the successful read the If still executes once
        self.cursor = self._cycles(last.unblock_ns)
        self.pending_overhead = 1

    def _inner_poll_idle(self, run: List[Transaction]) -> int:
        """Idle between a failed response and the retry (minus the If)."""
        gaps = []
        for prev, nxt in zip(run, run[1:]):
            gaps.append(self._cycles(nxt.req_ns)
                        - self._cycles(prev.unblock_ns))
        if not gaps:
            return self.options.default_poll_gap - 1
        gaps.sort()
        median = gaps[len(gaps) // 2]
        return max(0, median - 1)
