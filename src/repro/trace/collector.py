"""Trace collectors: OCP port monitors that record communication events."""

from typing import Dict, List, Optional

from repro.kernel.simulator import CYCLE_NS
from repro.ocp import PortMonitor
from repro.ocp.types import Request, Response
from repro.trace.events import Phase, TraceEvent
from repro.trace.trc_format import serialize_trc


class TraceCollector(PortMonitor):
    """Records every protocol phase seen at one master OCP port.

    Timestamps are converted from cycles to nanoseconds at recording time
    (``CYCLE_NS`` = 5 ns/cycle, matching the paper's trace excerpts).
    """

    def __init__(self, master_id: int = 0):
        self.master_id = master_id
        self.events: List[TraceEvent] = []

    def on_request(self, time: int, request: Request) -> None:
        data = request.data if request.cmd.is_write else None
        if isinstance(data, list):
            data = list(data)
        self.events.append(TraceEvent(
            Phase.REQ, time * CYCLE_NS, request.cmd, request.addr,
            request.burst_len, data, request.uid))

    def on_accept(self, time: int, request: Request) -> None:
        self.events.append(TraceEvent(
            Phase.ACC, time * CYCLE_NS, request.cmd, request.addr,
            request.burst_len, None, request.uid))

    def on_response(self, time: int, request: Request,
                    response: Response) -> None:
        data = response.data
        if isinstance(data, list):
            data = list(data)
        self.events.append(TraceEvent(
            Phase.RESP, time * CYCLE_NS, request.cmd, request.addr,
            request.burst_len, data, request.uid))

    def __len__(self) -> int:
        return len(self.events)

    def to_trc(self, header_comment: Optional[str] = None) -> str:
        """Serialise to ``.trc`` text."""
        return serialize_trc(self.events, self.master_id, header_comment)

    def save(self, path, header_comment: Optional[str] = None) -> None:
        """Write the ``.trc`` file (with the verified artifact header)."""
        from repro.artifacts.io import save_trc
        save_trc(path, self.events, master_id=self.master_id,
                 header_comment=header_comment)


def collect_traces(platform) -> Dict[int, TraceCollector]:
    """Attach a collector to every master port of a platform.

    Call *before* :meth:`~repro.platform.system.MparmPlatform.run`; returns
    ``{master_id: collector}``.
    """
    collectors: Dict[int, TraceCollector] = {}
    for master_id, master in enumerate(platform.masters):
        collector = TraceCollector(master_id)
        master.port.attach_monitor(collector)
        collectors[master_id] = collector
    return collectors
