"""repro — reactive traffic generators for fast Network-on-Chip simulation.

A from-scratch reproduction of Mahadevan et al., *"A Network Traffic
Generator Model for Fast Network-on-Chip Simulation"* (DATE 2005,
DOI 10.1109/DATE.2005.22): a complete MPARM-like cycle-true MPSoC
simulation platform plus the paper's contribution — traffic-generator
processors that replay IP-core communication reactively from traces.

The most common entry points, re-exported here::

    from repro import MparmPlatform, PlatformConfig      # build systems
    from repro import tg_flow, reference_run             # run experiments
    from repro import Translator, TGMaster, TGProgram    # the TG toolchain

Package map (see docs/ARCHITECTURE.md):

=====================  ==============================================
``repro.kernel``       deterministic event-driven simulation kernel
``repro.ocp``          OCP transaction layer (ports, monitors)
``repro.interconnect`` AMBA AHB, ×pipes NoC, STBus, TLM fabrics
``repro.memory``       RAM, semaphore bank, barrier device
``repro.cpu``          the armlet RISC core, caches, assembler
``repro.apps``         the four paper benchmarks (armlet assembly)
``repro.core``         the TG: ISA, programs, master/slave models
``repro.trace``        .trc traces, collectors, trace→TG translator
``repro.platform``     MPARM-style system builder
``repro.harness``      end-to-end experiment flows
``repro.stats``        statistics, drift analysis, energy, reports
``repro.cli``          command-line toolchain
=====================  ==============================================
"""

# defined before the subpackage imports so modules imported below (e.g.
# repro.harness.cache) can read it during package initialisation
__version__ = "1.0.0"

from repro.core import TGMaster, TGProgram, parse_tgp
from repro.harness import reference_run, tg_flow, translate_traces
from repro.platform import MparmPlatform, PlatformConfig
from repro.trace import TraceCollector, Translator, collect_traces

__all__ = [
    "MparmPlatform",
    "PlatformConfig",
    "TGMaster",
    "TGProgram",
    "TraceCollector",
    "Translator",
    "collect_traces",
    "parse_tgp",
    "reference_run",
    "tg_flow",
    "translate_traces",
    "__version__",
]
