"""Exception hierarchy for the simulation kernel."""


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class SimulationError(KernelError):
    """A model did something the kernel cannot honour.

    Examples: yielding a negative delay, scheduling in the past, yielding an
    object that is not a delay, signal or process.
    """


class DeadlockError(KernelError):
    """Raised by :meth:`Simulator.run` when ``check_deadlock=True`` and the
    event queue drains while processes are still blocked on signals."""


class ProcessKilled(KernelError):
    """Thrown into a process generator when it is killed externally."""
