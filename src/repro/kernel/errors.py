"""Exception hierarchy for the simulation kernel."""


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class SimulationError(KernelError):
    """A model did something the kernel cannot honour.

    Examples: yielding a negative delay, scheduling in the past, yielding an
    object that is not a delay, signal or process.
    """


class DeadlockError(KernelError):
    """Raised by :meth:`Simulator.run` when ``check_deadlock=True`` and the
    event queue drains while processes are still blocked on signals."""


class LivelockError(KernelError):
    """Raised by :meth:`Simulator.run` when ``progress_window`` is set and
    the loop fires that many consecutive events without simulated time
    advancing — the system is busy but going nowhere (e.g. two processes
    notifying each other with zero-cycle events forever)."""


class WatchdogTimeout(KernelError):
    """A per-request watchdog expired: an operation that should complete in
    bounded simulated time (e.g. an OCP transaction) is still outstanding.
    Raised instead of letting the simulation hang or silently stall."""


class ProcessKilled(KernelError):
    """Thrown into a process generator when it is killed externally."""
