"""Checkpoint/restore of a running simulation at quiescent cycles.

The paper's core trick — replacing full cores with compact TG state
machines — means simulation state is small and *explicitly enumerable*,
which makes mid-run snapshots cheap in a way generator-based DES
normally is not.  The one thing that cannot be serialised is a live
generator frame, so snapshots are only taken at **quiescent cycle
boundaries**: cycles where every pending queue entry is a plain
payload-free process wake-up that some component *claims* (it knows the
structural position the process sleeps at and can re-create it), and
every live process is either claimed that way or parked on a structural
idle point (a router input waiting on its empty FIFO, a cloning issuer
waiting on its empty issue queue).  Nothing else — no transaction in
flight, no posted write draining in the background, no watchdog guard
armed — may exist at the snapshot cycle; the scan simply advances the
simulation event-by-event until such a cycle appears (they are frequent:
every gap between transactions is one) or a typed error reports why not.

The protocol
------------

A *checkpointable* component implements (duck-typed, no registration):

``state_dict() -> dict``
    JSON-serialisable architectural state (registers, counters, memory
    words, RNG state) — everything except scheduler entries.

``load_state(state: dict) -> None``
    The inverse, applied to a freshly-built component at cycle 0.  May
    spawn the component's permanent idle machinery (it is *settled* to
    its parked position by a ``run(until=0)`` before the clock is moved
    to the snapshot cycle).

and optionally:

``checkpoint_blockers() -> list[str]``
    Reasons this component is not quiescent right now (empty = ready).

``claim_entry(entry: PendingEntry) -> dict | None``
    If the pending queue entry belongs to this component *and* is
    re-armable, return a JSON slot describing it; else None.

``rearm(sim, slot: dict) -> None``
    Re-create the queue entry described by ``slot`` on a restored
    simulator (called at the snapshot cycle, in global firing order).

``owned_idle_processes() -> iterable[Process]``
    Live processes this component legitimately keeps parked on signals
    while quiescent (permanent router/NI readers, cloning issuers).

Restores are **bit-identical continuations**: the kernel counters are
overwritten with the captured values after settling, and re-armed
entries are pushed in the captured global firing order, so the
``(time, priority, seq)`` total order of the continuation matches the
uninterrupted run exactly — under either kernel backend, since both
fire the same events in the same order.
"""

from typing import Dict, List, Optional, Tuple

from repro.artifacts.errors import SnapshotError
from repro.kernel.event import PendingEntry  # noqa: F401  (re-export)

#: Version of the snapshot *payload* schema (the artifact header carries
#: its own format version on top).
SNAP_FORMAT = 1

#: Default bound on how many cycles past the requested cycle the
#: quiescence scan may advance before giving up with a typed error.
DEFAULT_SCAN_LIMIT = 100_000


def _require(mapping: dict, key: str, context: str):
    """Fetch a payload key or raise a typed error (never KeyError)."""
    if not isinstance(mapping, dict) or key not in mapping:
        raise SnapshotError(
            f"snapshot {context} section is missing key {key!r}",
            hint="the file is not a valid checkpoint payload")
    return mapping[key]


def state_get(state, key: str, owner: str):
    """Fetch a component-state key or raise a typed error.

    Components use this in ``load_state``/``rearm`` so a forged or
    hand-edited snapshot fails with :class:`SnapshotError` (distinct
    exit code, one stderr line) instead of a raw ``KeyError``.
    """
    if not isinstance(state, dict) or key not in state:
        raise SnapshotError(
            f"snapshot state for {owner} is missing key {key!r}",
            hint="the snapshot does not match this platform build")
    return state[key]


def quiescence_check(sim, components: Dict[str, object],
                     ) -> Tuple[List[str], List[dict]]:
    """One quiescence probe at the current cycle.

    Returns ``(blockers, claims)``: the reasons the current cycle is not
    snapshottable (empty = quiescent) and, when quiescent, the claimed
    pending-entry list in global firing order.
    """
    blockers: List[str] = []
    for name, component in components.items():
        probe = getattr(component, "checkpoint_blockers", None)
        if probe is not None:
            blockers.extend(f"{name}: {reason}" for reason in probe())

    claims: List[dict] = []
    claimed_processes = set()
    for entry in sim._queue.pending_entries():
        slot = None
        owner = None
        for name, component in components.items():
            claim = getattr(component, "claim_entry", None)
            if claim is None:
                continue
            slot = claim(entry)
            if slot is not None:
                owner = name
                break
        if slot is None:
            what = (f"wake-up of process {entry.process.name!r}"
                    if entry.process is not None
                    else "an opaque event callback")
            blockers.append(f"unclaimed queue entry at cycle "
                            f"{entry.time}: {what}")
        else:
            claims.append({"owner": owner, "slot": slot})
            if entry.process is not None:
                claimed_processes.add(id(entry.process))

    owned = set()
    for component in components.values():
        getter = getattr(component, "owned_idle_processes", None)
        if getter is not None:
            owned.update(id(process) for process in getter())
    for process in sim.live_processes:
        if id(process) in claimed_processes or id(process) in owned:
            continue
        blockers.append(f"live process {process.name!r} is neither a "
                        f"claimed wake-up nor an owned idle process")
    return blockers, claims


def advance_to_quiescence(sim, components: Dict[str, object],
                          scan_limit: int = DEFAULT_SCAN_LIMIT,
                          ) -> List[dict]:
    """Advance the simulation to the first quiescent cycle >= now.

    The scan fires whole event-time clusters (``run(until=next)``), so
    each probe happens at a cycle boundary with every same-cycle cascade
    settled.  Raises :class:`SnapshotError` if the queue drains while
    blockers remain (the simulation can never quiesce — e.g. a true
    deadlock) or the scan exceeds ``scan_limit`` cycles.
    """
    start = sim.now
    while True:
        blockers, claims = quiescence_check(sim, components)
        if not blockers:
            return claims
        next_time = sim._queue.peek_time()
        if next_time is None:
            raise SnapshotError(
                f"no quiescent cycle reachable: the event queue drained "
                f"at cycle {sim.now} with state still in flight "
                f"({'; '.join(blockers[:4])})",
                hint="the simulation is deadlocked or a component is "
                     "not checkpoint-aware")
        if next_time - start > scan_limit:
            raise SnapshotError(
                f"no quiescent cycle within {scan_limit} cycles of "
                f"{start} (stopped at {sim.now}: "
                f"{'; '.join(blockers[:4])})",
                hint="raise the scan limit or checkpoint less often")
        sim.run(until=next_time)


def capture(sim, components: Dict[str, object], platform: dict,
            scan_limit: int = DEFAULT_SCAN_LIMIT) -> dict:
    """Snapshot the simulation at the first quiescent cycle >= now.

    ``platform`` is the caller's self-contained rebuild recipe (stored
    verbatim; :mod:`repro.harness.checkpoint` uses it to rebuild the
    platform before applying the snapshot).  The returned payload is
    JSON-serialisable and round-trips through the ``.snap`` codec.
    """
    claims = advance_to_quiescence(sim, components, scan_limit)
    queue = sim._queue
    return {
        "snap_format": SNAP_FORMAT,
        "cycle": sim.now,
        "backend": sim.backend,
        "kernel": {
            "now": sim.now,
            "events_fired": sim.events_fired,
            "events_cancelled": queue.events_cancelled,
            "compactions": queue.compactions,
            "peak_size": queue.peak_size,
        },
        "components": {name: component.state_dict()
                       for name, component in components.items()},
        "pending": claims,
        "platform": platform,
    }


def restore(sim, components: Dict[str, object], payload: dict,
            fresh: Optional[List[str]] = None,
            rederive: Optional[List[str]] = None) -> None:
    """Apply a snapshot payload to a freshly-built simulation.

    The target must be untouched (cycle 0, no events fired).  Component
    ``load_state`` calls may spawn permanent idle machinery; a
    ``run(until=0)`` then *settles* every such process onto its parked
    signal, after which the kernel clock and perf counters are
    overwritten with the captured values (erasing the settle events from
    the accounting — the uninterrupted run counted its start-up events
    before the snapshot cycle the same way) and the pending entries are
    re-armed in the captured global firing order.

    ``fresh`` names components that skip state loading and keep their
    freshly-built state — the branch mechanism uses it to give a fault
    campaign a new injector at the branch point.

    ``rederive`` names components restored through
    ``load_quiescent_state`` instead of ``load_state``: they adopt only
    the portable part of the captured state and re-derive the rest from
    the quiescence invariant (nothing in flight).  Cross-fabric
    fast-forward passes ``["fabric"]`` so a snapshot captured on one
    interconnect can land on another.  A re-derived component cannot
    own pending queue entries (its captured internal machinery is
    gone), so a claim owned by one is a typed error.
    """
    if sim.now != 0 or sim.events_fired != 0:
        raise SnapshotError(
            f"restore target is not fresh (cycle {sim.now}, "
            f"{sim.events_fired} events fired)",
            hint="build a new platform for each restore")
    fresh_set = set(fresh or ())
    rederive_set = set(rederive or ())
    states = _require(payload, "components", "payload")
    missing = [name for name in components
               if name not in states and name not in fresh_set]
    if missing:
        raise SnapshotError(
            f"snapshot has no state for component(s): "
            f"{', '.join(sorted(missing))}",
            hint="the snapshot was taken on a differently-configured "
                 "platform")
    extra = [name for name in states
             if name not in components and name not in fresh_set]
    if extra:
        raise SnapshotError(
            f"snapshot carries state for unknown component(s): "
            f"{', '.join(sorted(extra))}",
            hint="the snapshot was taken on a differently-configured "
                 "platform")

    for name, component in components.items():
        if name in fresh_set:
            continue
        if name in rederive_set:
            loader = getattr(component, "load_quiescent_state", None)
            if loader is None:
                raise SnapshotError(
                    f"component {name!r} cannot re-derive quiescent "
                    f"state",
                    hint="only components implementing "
                         "load_quiescent_state support cross-recipe "
                         "restore")
            loader(states[name])
        else:
            component.load_state(states[name])

    # settle: every process spawned during load_state parks on its idle
    # signal; zero-delay cascades all fire at cycle 0
    sim.run(until=0)
    if len(sim._queue) != 0:
        raise SnapshotError(
            f"platform did not settle: {len(sim._queue)} event(s) still "
            f"queued after start-up at cycle 0",
            hint="a component's load_state scheduled work beyond the "
                 "settle boundary")

    kernel = _require(payload, "kernel", "payload")
    queue = sim._queue
    sim._now = _require(kernel, "now", "kernel")
    sim._events_fired = _require(kernel, "events_fired", "kernel")
    queue.events_cancelled = _require(kernel, "events_cancelled", "kernel")
    queue.compactions = _require(kernel, "compactions", "kernel")
    queue.peak_size = _require(kernel, "peak_size", "kernel")

    for item in _require(payload, "pending", "payload"):
        owner_name = _require(item, "owner", "pending entry")
        slot = _require(item, "slot", "pending entry")
        component = components.get(owner_name)
        if component is None:
            raise SnapshotError(
                f"pending entry owned by unknown component "
                f"{owner_name!r}")
        if owner_name in rederive_set:
            raise SnapshotError(
                f"pending entry owned by re-derived component "
                f"{owner_name!r}",
                hint="a component restored from quiescence alone "
                     "cannot re-arm captured queue entries")
        rearm = getattr(component, "rearm", None)
        if rearm is None:
            raise SnapshotError(
                f"component {owner_name!r} cannot re-arm pending "
                f"entries")
        rearm(sim, slot)


__all__ = [
    "DEFAULT_SCAN_LIMIT",
    "PendingEntry",
    "SNAP_FORMAT",
    "SnapshotError",
    "advance_to_quiescence",
    "capture",
    "quiescence_check",
    "restore",
]
