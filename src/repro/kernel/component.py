"""Base class for named model components."""

from repro.kernel.simulator import Simulator


class Component:
    """A named piece of the simulated system.

    Components hold a reference to the simulator and a hierarchical name used
    in traces, statistics and error messages.  Subclasses register their
    behaviour by spawning processes in ``start()`` (called by the platform
    once the system is fully wired) or directly in ``__init__``.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name

    def start(self) -> None:
        """Hook called after system construction; default does nothing."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
