"""Deterministic event-driven simulation kernel.

This package is the foundation of the whole platform: a discrete-event
simulator with integer *cycle* time, generator-based processes, and
deterministic event ordering.  It plays the role SystemC plays for MPARM in
the original paper, at the level of abstraction the paper's models need
(cycle-true transactions, not RTL signals).

Public API
----------

``Simulator``
    The event loop.  Owns the current time, the event queue and all
    processes.

``Process``
    A running simulation process wrapping a Python generator.  Created via
    :meth:`Simulator.spawn`.

``Signal``
    Broadcast synchronisation primitive: processes ``yield`` a signal to
    sleep until somebody calls :meth:`Signal.notify`.

``Fifo``
    Bounded blocking queue used by routers and network interfaces.

``Component``
    Convenience base class for named model components that hold a reference
    to the simulator.

Processes communicate time via the yield protocol::

    def worker(sim):
        yield 3                   # wait 3 cycles
        payload = yield signal    # wait for a signal, receive its payload
        result = yield child      # join a child process, receive its return
"""

from repro.kernel.backend import KERNEL_BACKENDS, make_backend
from repro.kernel.calendar import CalendarQueue
from repro.kernel.errors import (
    DeadlockError,
    KernelError,
    LivelockError,
    ProcessKilled,
    SimulationError,
    WatchdogTimeout,
)
from repro.kernel.event import Event, EventQueue, PendingEntry
from repro.kernel.signal import Fifo, Signal, TimeoutSignal
from repro.kernel.process import Process
from repro.kernel.simulator import Simulator
from repro.kernel.component import Component

__all__ = [
    "CalendarQueue",
    "Component",
    "DeadlockError",
    "Event",
    "EventQueue",
    "KERNEL_BACKENDS",
    "PendingEntry",
    "make_backend",
    "Fifo",
    "KernelError",
    "LivelockError",
    "Process",
    "ProcessKilled",
    "Signal",
    "SimulationError",
    "Simulator",
    "TimeoutSignal",
    "WatchdogTimeout",
]
