"""Pluggable kernel backends behind one narrow queue interface.

A *kernel backend* owns the pending-event store and the dispatch loop.
The :class:`~repro.kernel.simulator.Simulator` drives it through six
methods plus a handful of counters — everything else (processes, signals,
time base, run bounds) is backend-independent, which is what lets the two
engines produce bit-identical simulations:

==============================  ==========================================
method                          contract
==============================  ==========================================
``push(time, priority, fn)``    schedule; returns a cancellable ``Event``
``push_fn(time, fn)``           schedule an uncancellable p-0 callback
``push_resume(time, proc, v)``  schedule a process resume with payload
``pop_entry()``                 earliest live entry as ``(time, fire)``
``peek_time()``                 time of the earliest live entry
``drain(sim)``                  run-to-empty dispatch (unbounded run())
==============================  ==========================================

plus ``__len__`` (live entries), ``tombstones``, ``events_cancelled``,
``compactions`` and ``peak_size`` feeding ``kernel_counters()``, and
``_note_cancelled()`` called by :meth:`Event.cancel`.

Backends:

``"classic"``
    :class:`~repro.kernel.event.EventQueue` — one binary heap of
    ``Event`` objects, totally ordered by ``(time, priority, seq)``.
    The default; every historical result was produced on it.

``"fast"``
    :class:`~repro.kernel.calendar.CalendarQueue` — slot-indexed calendar
    queue with batched same-cycle dispatch and allocation-free process
    resumes.  Same observable behaviour (event order, times, counters
    that describe the *simulation* rather than the engine), roughly 3-5x
    the event throughput.

Both backends fire the same events in the same order at the same cycles,
so ``Simulator(backend="fast")`` reproduces classic results bit for bit
(the backend-parity suite in ``tests/integration/test_backend_parity.py``
locks this).
"""

from repro.kernel.calendar import CalendarQueue
from repro.kernel.errors import SimulationError
from repro.kernel.event import EventQueue

#: Backend names accepted by ``Simulator(backend=...)`` and every
#: ``--backend`` CLI flag.
KERNEL_BACKENDS = ("classic", "fast")


def make_backend(spec):
    """Resolve a backend spec (name, None, or instance) to a queue.

    Strings must name a registered backend; ``None`` means the default
    (classic); anything else is assumed to be a ready-made backend
    instance (useful for tests instrumenting the queue).
    """
    if spec is None:
        return EventQueue()
    if isinstance(spec, str):
        if spec == "classic":
            return EventQueue()
        if spec == "fast":
            return CalendarQueue()
        raise SimulationError(
            f"unknown kernel backend {spec!r}; choose from "
            f"{', '.join(KERNEL_BACKENDS)}")
    return spec
