"""Event queue with fully deterministic ordering.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing insertion counter, so two events scheduled for the
same cycle at the same priority fire in the order they were scheduled.  This
total order is what makes every simulation in this package reproducible
byte-for-byte — a requirement of the cross-interconnect validation experiment
(DESIGN.md, E7).
"""

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback.

    Attributes:
        time: Absolute cycle at which the event fires.
        priority: Tie-break within a cycle; lower fires first.
        seq: Insertion sequence number (unique, assigned by the queue).
        fn: Zero-argument callable run when the event fires.
        cancelled: Cancelled events are skipped by the queue.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: int, priority: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} seq={self.seq}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, priority: int, fn: Callable[[], None]) -> Event:
        """Insert a callback at an absolute time; returns a cancellable handle."""
        event = Event(time, priority, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None
