"""Event queue with fully deterministic ordering.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing insertion counter, so two events scheduled for the
same cycle at the same priority fire in the order they were scheduled.  This
total order is what makes every simulation in this package reproducible
byte-for-byte — a requirement of the cross-interconnect validation experiment
(DESIGN.md, E7).

Cancellation is lazy: :meth:`Event.cancel` marks the entry and the queue
discards it when it surfaces.  Because the sort key is a *total* order
(``seq`` is unique), the heap's internal layout never affects pop order, so
the queue is free to compact tombstones out of the heap whenever they
outnumber live events — resilient workloads that schedule-and-cancel a
watchdog per transaction (see ``repro.core.tg_master``) would otherwise
carry thousands of dead entries through every heap operation.
"""

import heapq
from typing import Callable, List, NamedTuple, Optional

#: Compact only when the heap is at least this large; below it the
#: tombstone overhead is noise and rebuilding would churn.
_COMPACT_MIN_SIZE = 64


class PendingEntry(NamedTuple):
    """One live queue entry, as reported by ``pending_entries()``.

    ``process`` is set when the entry is a plain (payload-free) resume of
    a sleeping :class:`~repro.kernel.process.Process` — the only entry
    kind a snapshot can re-arm, because the wake-up carries no captured
    state beyond the target process and the firing time.  Everything else
    (arbitrary callbacks, payload-carrying resumes) is opaque: ``process``
    is None.  For opaque *callbacks* the raw callable is exposed as
    ``fn`` so a component that scheduled it can recognise its own (e.g. a
    semaphore bank's tracked delayed-release) and claim it after all;
    payload-carrying resumes have both fields None and are never
    claimable.
    """

    time: int
    process: Optional[object]
    fn: Optional[Callable] = None


def _classify_entry(time: int, fn: Callable) -> PendingEntry:
    """Map a scheduled callable to a :class:`PendingEntry`.

    A bound ``Process._resume`` method is the signature of ``yield n`` /
    ``spawn(delay=...)`` — a payload-free sleep.  Payload resumes are
    closures (classic) or tuples (calendar) and stay opaque.
    """
    from repro.kernel.process import Process
    owner = getattr(fn, "__self__", None)
    if isinstance(owner, Process) and \
            getattr(fn, "__func__", None) is Process._resume:
        return PendingEntry(time, owner)
    if getattr(fn, "_payload_resume", False):
        # payload-carrying resume: opaque, never claimable (parity with
        # the calendar backend's tuple entries)
        return PendingEntry(time, None)
    return PendingEntry(time, None, fn)


class Event:
    """A scheduled callback.

    Attributes:
        time: Absolute cycle at which the event fires.
        priority: Tie-break within a cycle; lower fires first.
        seq: Insertion sequence number (unique, assigned by the queue).
        fn: Zero-argument callable run when the event fires.
        cancelled: Cancelled events are skipped by the queue.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "_queue")

    def __init__(self, time: int, priority: int, seq: int,
                 fn: Callable[[], None], queue: "EventQueue" = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            # still sitting in the heap: it is now a tombstone the queue
            # must account for (popped/fired events have no queue backref,
            # so a late cancel() after firing is harmless)
            self._queue = None
            queue._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} seq={self.seq}{state}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    ``len(queue)`` counts *live* (non-cancelled) events only.  Perf
    counters (:attr:`events_cancelled`, :attr:`compactions`,
    :attr:`peak_size`) are cumulative over the queue's lifetime and feed
    the simulator's ``kernel_counters()``.

    This is the ``"classic"`` kernel backend (see
    :mod:`repro.kernel.backend`): :meth:`push`, :meth:`push_fn`,
    :meth:`push_resume`, :meth:`pop_entry`, :meth:`peek_time` and
    :meth:`drain` form the narrow interface the simulator drives.
    """

    name = "classic"

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0
        self.events_cancelled = 0
        self.compactions = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return self._live

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying heap slots."""
        return len(self._heap) - self._live

    def push(self, time: int, priority: int, fn: Callable[[], None]) -> Event:
        """Insert a callback at an absolute time; returns a cancellable handle."""
        event = Event(time, priority, self._seq, fn, self)
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, event)
        self._live += 1
        if len(heap) > self.peak_size:
            self.peak_size = len(heap)
        return event

    def _note_cancelled(self) -> None:
        """One in-heap event became a tombstone (called by Event.cancel)."""
        self._live -= 1
        self.events_cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_SIZE and len(heap) > 2 * self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone and re-heapify.

        Pop order is untouched: events are totally ordered by
        ``(time, priority, seq)``, so any valid heap over the same live
        set pops the identical sequence.  The rebuild is in place (slice
        assignment) so callers holding a reference to the heap list —
        the simulator's fast run loop — stay valid.
        """
        heap = self._heap
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self.compactions += 1

    def push_fn(self, time: int, fn: Callable[[], None]) -> None:
        """Backend hook: schedule an uncancellable priority-0 callback.

        The classic engine has no cheaper representation than an
        :class:`Event`, so this is :meth:`push` with the handle dropped.
        """
        self.push(time, 0, fn)

    def push_resume(self, time: int, process, payload) -> None:
        """Backend hook: schedule a process resume at an absolute time."""
        if payload is None:
            self.push(time, 0, process._resume)
        else:
            resume = lambda: process._resume(payload)  # noqa: E731
            # mark so pending_entries() reports it opaque (fn=None),
            # matching the calendar backend's tuple entries
            resume._payload_resume = True
            self.push(time, 0, resume)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if drained."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        return None

    def pop_entry(self) -> Optional[tuple]:
        """Backend hook: earliest live entry as ``(time, fire)`` or None."""
        event = self.pop()
        if event is None:
            return None
        return event.time, event.fn

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0].time
        return None

    def pending_entries(self) -> List[PendingEntry]:
        """Backend hook: every live entry in firing order (snapshots).

        The heap is sorted (``(time, priority, seq)`` is a total order),
        tombstones dropped, and each entry classified as a re-armable
        process resume or an opaque callback.  Read-only: the queue is
        untouched.
        """
        return [_classify_entry(event.time, event.fn)
                for event in sorted(self._heap) if not event.cancelled]

    def drain(self, sim) -> None:
        """Backend hook: run-to-empty dispatch (the unbounded run() path).

        The heap pop is inlined (the list identity is stable — compaction
        rebuilds it in place), with the queue's live accounting kept exact
        per event so callbacks that cancel events or read ``len(queue)``
        see a consistent view.
        """
        heap = self._heap
        heappop = heapq.heappop
        fired = 0
        try:
            while heap:
                event = heappop(heap)
                if event.cancelled:
                    continue
                event._queue = None
                self._live -= 1
                sim._now = event.time
                event.fn()
                fired += 1
        finally:
            sim._events_fired += fired
