"""Synchronisation primitives: broadcast signals and bounded FIFOs."""

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.kernel.errors import SimulationError


class Signal:
    """Broadcast wake-up primitive.

    Processes block on a signal by yielding it (``payload = yield sig``).
    :meth:`notify` wakes *all* currently blocked processes in the order they
    started waiting, delivering ``payload`` as the value of their ``yield``
    expression.  A notify with no waiters is lost (signals are not latched);
    use a :class:`Fifo` when events must not be dropped.

    Waiters are kept in an insertion-ordered dict used as an ordered set:
    adding and removing a waiter are both O(1) (a process can only block
    on one thing at a time, so duplicates are impossible), and iteration
    at notify preserves the order waiting started — killing N waiters on
    a popular signal used to be quadratic with the old list scan.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: Dict = {}

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def _add_waiter(self, process) -> None:
        self._waiters[process] = None

    def _remove_waiter(self, process) -> None:
        self._waiters.pop(process, None)

    def notify(self, payload: Any = None) -> int:
        """Wake every waiter at the current cycle; returns how many woke."""
        waiters = self._waiters
        if not waiters:
            return 0
        self._waiters = {}
        sim = self.sim
        push_resume = sim._queue.push_resume
        now = sim._now
        for process in waiters:
            push_resume(now, process, payload)
        return len(waiters)

    def __repr__(self) -> str:
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class TimeoutSignal(Signal):
    """A one-shot signal backed by a scheduled event.

    Created by :func:`repro.kernel.simulator.timeout`.  When the last waiter
    is removed before the event fires (e.g. the waiting process is killed),
    the pending event is cancelled so it does not linger in the queue and
    keep the simulation artificially alive.
    """

    __slots__ = ("event",)

    def __init__(self, sim, name: str = "timeout"):
        super().__init__(sim, name)
        self.event = None

    def cancel(self) -> None:
        """Cancel the backing event (harmless after it has fired)."""
        if self.event is not None:
            self.event.cancel()

    def notify(self, payload: Any = None) -> int:
        self.event = None
        return super().notify(payload)

    def _remove_waiter(self, process) -> None:
        super()._remove_waiter(process)
        if not self._waiters:
            self.cancel()


class Fifo:
    """Bounded blocking queue connecting producer and consumer processes.

    Used for router input buffers and network-interface queues, where
    back-pressure (a full buffer stalling the upstream hop) is part of the
    timing model.  ``capacity=None`` means unbounded.

    Both :meth:`put` and :meth:`get` are *generators* and must be driven with
    ``yield from`` inside a simulation process::

        yield from fifo.put(flit)
        flit = yield from fifo.get()
    """

    def __init__(self, sim, capacity: Optional[int] = None, name: str = "fifo"):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"fifo capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._not_full = Signal(sim, f"{name}.not_full")
        self._not_empty = Signal(sim, f"{name}.not_empty")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def not_empty(self) -> Signal:
        """The consumer-side wait signal (see ``Process.waiting_on``)."""
        return self._not_empty

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the queue is full."""
        if self.is_full:
            return False
        self._items.append(item)
        self._not_empty.notify()
        return True

    def try_get(self) -> Any:
        """Non-blocking get; returns ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            self._not_full.notify()
            return True, item
        return False, None

    def put(self, item: Any):
        """Blocking put (generator): waits while the queue is full."""
        while self.is_full:
            yield self._not_full
        self._items.append(item)
        self._not_empty.notify()

    def get(self):
        """Blocking get (generator): waits while the queue is empty."""
        while not self._items:
            yield self._not_empty
        item = self._items.popleft()
        self._not_full.notify()
        return item

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Fifo {self.name!r} {len(self._items)}/{cap}>"
