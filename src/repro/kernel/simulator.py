"""The simulator: event loop, time base, and process management."""

from typing import Callable, Dict, Generator, List, Optional, Union

from repro.kernel.backend import make_backend
from repro.kernel.errors import DeadlockError, LivelockError, SimulationError
from repro.kernel.event import Event
from repro.kernel.process import Process
from repro.kernel.signal import Fifo, Signal, TimeoutSignal

#: Nanoseconds per simulated clock cycle.  The paper assumes a 5 ns cycle for
#: both the IP cores and the TG; trace timestamps are recorded in ns.
CYCLE_NS = 5


class Simulator:
    """Discrete-event simulator with integer cycle time.

    Typical usage::

        sim = Simulator()
        sim.spawn(my_model_process(sim), name="cpu0")
        sim.run()

    The event order is fully deterministic (see :mod:`repro.kernel.event`),
    so any two runs of the same model are identical.

    ``backend`` selects the event-dispatch engine (see
    :mod:`repro.kernel.backend`): ``"classic"`` (default, binary heap) or
    ``"fast"`` (batched calendar queue).  Both produce bit-identical
    simulations; the fast engine is several times quicker.
    """

    #: Prune dead processes from the bookkeeping list once it reaches this
    #: size (then whenever it doubles) — long-running resilient workloads
    #: spawn a short-lived process per transaction.
    _PRUNE_START = 256

    def __init__(self, backend: Union[str, object] = "classic") -> None:
        self._queue = make_backend(backend)
        self._now = 0
        self._events_fired = 0
        self._processes: List[Process] = []
        self._prune_at = self._PRUNE_START
        self._running = False

    # ------------------------------------------------------------------ time

    @property
    def backend(self) -> str:
        """Name of the kernel backend driving this simulator."""
        return self._queue.name

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def _advance_clock(self, time: int) -> None:
        """Advance the clock to ``time`` — monotonically, never backwards.

        Every clock movement outside the backend drain loops goes through
        this single helper (event fire, early-drain catch-up to ``until``,
        and the ``next_time > until`` stop), so no path can reintroduce
        the PR 2 clock-rewind bug: a ``run(until=earlier)`` after a later
        stop is a no-op, and queue invariants (events never scheduled in
        the past) make the event-fire case equivalent to plain assignment.
        The backends' run-to-drain loops assign ``_now`` directly but pop
        times in non-decreasing order, preserving the same invariant.
        """
        if time > self._now:
            self._now = time

    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds (cycle * 5 ns)."""
        return self._now * CYCLE_NS

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (a simulator-effort proxy)."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Events cancelled while still queued (watchdog guards etc.)."""
        return self._queue.events_cancelled

    @property
    def heap_compactions(self) -> int:
        """Tombstone-shedding passes: heap rebuilds on the classic
        backend, tombstone-dropping bucket sweeps on the fast one."""
        return self._queue.compactions

    @property
    def peak_heap_size(self) -> int:
        """High-water mark of resident entries (live + tombstones).

        The classic backend samples per push; the fast backend samples at
        dispatch-batch boundaries, so its value can lag by one batch.
        """
        return self._queue.peak_size

    def kernel_counters(self) -> Dict[str, int]:
        """Kernel perf counters for reports (``stats_summary()['kernel']``)."""
        queue = self._queue
        return {
            "events_fired": self._events_fired,
            "events_cancelled": queue.events_cancelled,
            "heap_compactions": queue.compactions,
            "peak_heap_size": queue.peak_size,
            "queued_live": len(queue),
            "queued_tombstones": queue.tombstones,
        }

    # ------------------------------------------------------------- scheduling

    def schedule_after(self, delay: int, fn: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        return self._queue.push(self._now + delay, priority, fn)

    def schedule_at(self, time: int, fn: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``fn`` at an absolute cycle ``time >= now``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self._queue.push(time, priority, fn)

    # -------------------------------------------------------------- processes

    def spawn(self, generator: Generator, name: str = "process",
              delay: int = 0) -> Process:
        """Create a process from a generator and start it after ``delay``."""
        process = Process(self, generator, name=name)
        processes = self._processes
        processes.append(process)
        if len(processes) >= self._prune_at:
            # amortised O(1): drop finished processes so per-transaction
            # spawns don't grow the list (and live_processes scans) forever
            self._processes = [p for p in processes if p.alive]
            self._prune_at = max(self._PRUNE_START, 2 * len(self._processes))
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self._queue.push_resume(self._now + delay, process, None)
        return process

    def signal(self, name: str = "signal") -> Signal:
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name)

    def fifo(self, capacity: Optional[int] = None, name: str = "fifo") -> Fifo:
        """Create a :class:`Fifo` bound to this simulator."""
        return Fifo(self, capacity, name)

    @property
    def live_processes(self) -> List[Process]:
        """Processes that have not yet terminated."""
        return [p for p in self._processes if p.alive]

    # --------------------------------------------------------------- running

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None,
            check_deadlock: bool = False,
            progress_window: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: Stop once simulation time would pass this cycle (events at
                exactly ``until`` still fire).  Time always advances to
                ``until`` — also when the queue drains earlier — but never
                backwards (a later ``run(until=earlier)`` is a no-op).
            max_events: Safety stop after this many events.
            check_deadlock: Raise :class:`DeadlockError` if the queue truly
                drains while processes are still alive (blocked on signals
                forever).  An early stop via ``until``/``max_events`` with
                work still queued is *not* a deadlock and is never reported
                as one.
            progress_window: Raise :class:`LivelockError` after this many
                consecutive events fire without simulated time advancing
                (zero-cycle notify storms, spinning processes).  ``None``
                disables the watchdog.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if progress_window is not None and progress_window < 1:
            raise SimulationError(
                f"progress_window must be >= 1, got {progress_window}")
        self._running = True
        drained = False
        try:
            if until is None and max_events is None and progress_window is None:
                # Fast path: run-to-drain with no per-event bound checks,
                # delegated to the backend's batched dispatch loop.
                self._queue.drain(self)
                drained = True
            else:
                drained = self._run_bounded(until, max_events,
                                            progress_window)
        finally:
            self._running = False
        if check_deadlock and drained:
            stuck = self.live_processes
            if stuck:
                raise DeadlockError(
                    f"{len(stuck)} process(es) blocked forever at cycle "
                    f"{self._now}: {self.blocked_report()}"
                )
        return self._now

    def _run_bounded(self, until: Optional[int], max_events: Optional[int],
                     progress_window: Optional[int]) -> bool:
        """The guarded event loop (any of the run() bounds set)."""
        queue = self._queue
        fired = 0
        stagnant = 0
        drained = False
        try:
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    drained = True
                    # the queue drained before `until`: the caller asked
                    # for time to pass to that cycle, so advance the clock
                    # there (monotonically — see _advance_clock)
                    if until is not None:
                        self._advance_clock(until)
                    break
                if until is not None and next_time > until:
                    # stop short of the next event; a later
                    # run(until=earlier) call must not rewind the clock
                    self._advance_clock(until)
                    break
                if max_events is not None and fired >= max_events:
                    break
                time, fire = queue.pop_entry()
                if progress_window is not None:
                    if time > self._now:
                        stagnant = 0
                    else:
                        stagnant += 1
                        if stagnant >= progress_window:
                            raise LivelockError(
                                f"no simulated-time progress after "
                                f"{stagnant} events at cycle {time}; "
                                f"busy processes: {self.blocked_report()}")
                self._advance_clock(time)
                fire()
                fired += 1
        finally:
            self._events_fired += fired
        return drained

    def blocked_report(self, limit: int = 8) -> str:
        """Human-readable list of live processes and what each waits on."""
        live = [p for p in self._processes if p.alive]
        parts = []
        for process in live[:limit]:
            waiting_on = process._waiting_on
            if waiting_on is not None:
                parts.append(f"{process.name} (on {waiting_on.name})")
            else:
                parts.append(f"{process.name} (runnable)")
        if len(live) > limit:
            parts.append(f"... {len(live) - limit} more")
        return ", ".join(parts) if parts else "(none)"

    def step(self) -> bool:
        """Fire exactly one event; returns False when the queue is empty.

        Like :meth:`run`, stepping is not re-entrant: calling it from inside
        an event callback while ``run()`` is active would pop events behind
        the loop's back and corrupt ``now`` and the livelock accounting.
        """
        if self._running:
            raise SimulationError("cannot step() while run() is active")
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        time, fire = entry
        self._advance_clock(time)
        fire()
        self._events_fired += 1
        return True

    def __repr__(self) -> str:
        live = sum(1 for p in self._processes if p.alive)
        return (f"<Simulator t={self._now} queued={len(self._queue)} "
                f"processes={live} backend={self._queue.name}>")


def timeout(sim: Simulator, cycles: int) -> TimeoutSignal:
    """Return a signal that fires once, ``cycles`` from now.

    The returned :class:`TimeoutSignal` is cancellable: if every waiter is
    removed before the deadline (e.g. the waiting process is killed), the
    backing event is cancelled automatically so it does not leak into the
    queue; ``sig.cancel()`` does the same explicitly.
    """
    sig = TimeoutSignal(sim, f"timeout@{sim.now + cycles}")
    sig.event = sim.schedule_after(cycles, sig.notify)
    return sig
