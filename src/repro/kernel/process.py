"""Simulation processes: generators driven by the event loop."""

from typing import Any, Generator, Optional

from repro.kernel.errors import ProcessKilled, SimulationError
from repro.kernel.signal import Signal

_PENDING = object()


class Process:
    """A running simulation process.

    Wraps a Python generator and interprets what it yields:

    ``yield n`` (non-negative int)
        sleep for *n* cycles;
    ``yield signal``
        sleep until the :class:`Signal` is notified; the yield expression
        evaluates to the notify payload;
    ``yield process``
        join another process; the yield expression evaluates to its return
        value.

    Subroutines are ordinary generators composed with ``yield from``; their
    ``return`` value propagates as usual.
    """

    __slots__ = ("sim", "name", "generator", "_result", "_done_signal",
                 "_waiting_on", "_alive")

    def __init__(self, sim, generator: Generator, name: str = "process"):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process {name!r} needs a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self.name = name
        self.generator = generator
        self._result: Any = _PENDING
        self._done_signal = Signal(sim, f"{name}.done")
        self._waiting_on: Optional[Signal] = None
        self._alive = True

    @property
    def alive(self) -> bool:
        """True until the generator returns, raises, or is killed."""
        return self._alive

    @property
    def waiting_on(self) -> Optional[Signal]:
        """The signal this process is parked on, or None.

        The checkpoint machinery uses this to verify that a component's
        permanent idle process is parked at its structural idle point
        (e.g. a router input reader on its empty FIFO's ``not_empty``).
        """
        return self._waiting_on

    @property
    def result(self) -> Any:
        """Return value of the generator; raises if still running."""
        if self._result is _PENDING:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self._result

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        try:
            self.generator.throw(ProcessKilled(f"process {self.name!r} killed"))
        except (ProcessKilled, StopIteration):
            pass
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self._alive = False
        self._result = result
        self._done_signal.notify(result)

    def _resume(self, value: Any = None) -> None:
        """Advance the generator one step.  Called only by the kernel."""
        if not self._alive:
            return
        self._waiting_on = None
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        """Schedule the next resume according to the yielded value."""
        if isinstance(yielded, int) and not isinstance(yielded, bool):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            sim = self.sim
            sim._queue.push_resume(sim._now + yielded, self, None)
        elif isinstance(yielded, Signal):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            other = yielded
            if other._alive:
                self._waiting_on = other._done_signal
                other._done_signal._add_waiter(self)
            else:
                self.sim.schedule_after(0, lambda: self._resume(other._result))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r} ({type(yielded).__name__})"
            )

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"
