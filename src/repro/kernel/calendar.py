"""Calendar-queue kernel backend: batched same-cycle event dispatch.

The classic backend (:class:`repro.kernel.event.EventQueue`) pays a binary
heap ``heappush``/``heappop`` — with Python-level ``Event.__lt__`` calls —
for *every* event.  This backend exploits two properties of our workloads:

* almost all events land a handful of distinct cycles ahead (sleeps of a
  few cycles, zero-delay notifies), so a ``dict`` keyed by absolute cycle
  with a tiny int-heap of distinct bucket times replaces the event heap:
  every comparison is a C-speed int compare, and same-cycle events cost a
  plain ``list.append``;
* the vast majority of scheduled callbacks are *process resumes* that are
  never cancelled, so they are stored as bare :class:`Process` objects (or
  ``(process, payload)`` pairs) instead of :class:`Event` handles — no
  allocation on the hot path — and the drain loop advances the generator
  in line instead of bouncing through ``Event.fn`` -> ``_resume`` ->
  ``_dispatch`` call frames.

Dispatch drains a whole timestamp bucket per outer-loop iteration
(batched same-cycle execution).  A bucket holding a single entry is stored
as the bare entry (no list allocation, no walk); multi-entry buckets are
lists walked by index, so zero-delay pushes made *during* the walk land in
a fresh bucket for the same cycle and are drained immediately after —
exactly insertion order, i.e. the classic ``seq`` order.  Cancelled events
are swept lazily as drains pass over them.

Determinism: for the priority-0 events every production model uses, bucket
order is insertion order — identical to the classic ``(time, priority,
seq)`` total order.  The first ``push()`` with a non-zero priority flips
the queue into *mixed* mode, where buckets hold ``[priority, seq, entry]``
keys and each bucket is drained through a per-bucket heap — slower, but
exactly ordered.  Mixed mode is sticky and never entered by the platform
models (nothing in ``repro`` schedules at non-zero priority).

Counter semantics mirror the classic backend's ``kernel_counters()`` keys:
``events_cancelled`` counts cancels of queued events, ``tombstones`` the
cancelled entries still resident, ``compactions`` the bucket sweeps that
dropped tombstones, and ``peak_size`` the resident high-water mark sampled
at dispatch-batch boundaries (the classic backend samples per push).
"""

import heapq
from typing import Callable, Optional, Tuple

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event, PendingEntry, _classify_entry
from repro.kernel.process import Process


class CalendarQueue:
    """Slot-indexed calendar queue (the ``"fast"`` kernel backend)."""

    name = "fast"

    def __init__(self) -> None:
        self._buckets = {}          # absolute cycle -> entry or entry list
        self._times = []            # int heap of distinct bucket cycles
        self._heads = {}            # cycle -> consumed prefix (pop_entry)
        self._seq = 0               # Event seqs + mixed-mode sort keys
        self._size = 0              # resident entries (live + tombstones)
        self._tombstones = 0        # resident cancelled entries
        self._mixed = False         # sticky: non-zero priority seen
        self._active_time = None    # mixed mode: bucket being drained
        self._active_heap = None
        self.events_cancelled = 0
        self.compactions = 0
        self.peak_size = 0

    # ---------------------------------------------------------- introspection

    def __len__(self) -> int:
        return self._size - self._tombstones

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying bucket slots."""
        return self._tombstones

    # -------------------------------------------------------------- inserting

    def push(self, time: int, priority: int, fn: Callable[[], None]) -> Event:
        """Insert a callback at an absolute time; returns a cancellable handle."""
        event = Event(time, priority, self._seq, fn, self)
        self._seq += 1
        if priority != 0 and not self._mixed:
            self._go_mixed()
        if self._mixed:
            self._push_mixed(time, priority, event)
            return event
        buckets = self._buckets
        prev = buckets.get(time)
        if prev is None:
            buckets[time] = event
            heapq.heappush(self._times, time)
        elif prev.__class__ is list:
            prev.append(event)
        else:
            buckets[time] = [prev, event]
        self._size += 1
        return event

    def push_fn(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule an uncancellable priority-0 callback (no Event handle)."""
        if self._mixed:
            self._push_mixed(time, 0, fn)
            return
        buckets = self._buckets
        prev = buckets.get(time)
        if prev is None:
            buckets[time] = fn
            heapq.heappush(self._times, time)
        elif prev.__class__ is list:
            prev.append(fn)
        else:
            buckets[time] = [prev, fn]
        self._size += 1

    def push_resume(self, time: int, process, payload) -> None:
        """Schedule a process resume — the hottest scheduling operation."""
        entry = process if payload is None else (process, payload)
        if self._mixed:
            self._push_mixed(time, 0, entry)
            return
        buckets = self._buckets
        prev = buckets.get(time)
        if prev is None:
            buckets[time] = entry
            heapq.heappush(self._times, time)
        elif prev.__class__ is list:
            prev.append(entry)
        else:
            buckets[time] = [prev, entry]
        self._size += 1

    # ------------------------------------------------------------ cancelling

    def _note_cancelled(self) -> None:
        """One queued event became a tombstone (called by Event.cancel)."""
        self._tombstones += 1
        self.events_cancelled += 1

    # ------------------------------------------------------------- mixed mode

    def _go_mixed(self) -> None:
        """First non-zero priority seen: re-key every bucket for exact
        ``(priority, seq)`` ordering.  Sticky — the platform models never
        trigger this; it exists so the backend honours the full Event
        ordering contract."""
        self._mixed = True
        buckets = self._buckets
        heads = self._heads
        maxlen = 0
        for time, bucket in buckets.items():
            if bucket.__class__ is not list:
                bucket = [bucket]
            start = heads.get(time, 0) if heads else 0
            raw = bucket[start:] if start else bucket
            if len(raw) > maxlen:
                maxlen = len(raw)
            buckets[time] = [[0, index, entry]
                             for index, entry in enumerate(raw)]
        heads.clear()
        # future sort keys must order after every positional key above
        if self._seq <= maxlen:
            self._seq = maxlen + 1

    def _push_mixed(self, time: int, priority: int, entry) -> None:
        self._seq += 1
        keyed = [priority, self._seq, entry]
        if time == self._active_time:
            heapq.heappush(self._active_heap, keyed)
        else:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [keyed]
                heapq.heappush(self._times, time)
            else:
                bucket.append(keyed)
        self._size += 1

    def _drain_mixed_bucket(self, sim, time: int, keyed: list) -> int:
        """Drain one bucket in exact (priority, seq) order via a heap.

        Zero-delay pushes for this same cycle land directly in the active
        heap so a lower-priority late arrival still fires in order."""
        heapq.heapify(keyed)
        self._active_time = time
        self._active_heap = keyed
        fired = 0
        swept = 0
        try:
            while keyed:
                entry = heapq.heappop(keyed)[2]
                self._size -= 1
                cls = entry.__class__
                if cls is Event:
                    if entry.cancelled:
                        swept += 1
                        continue
                    sim._now = time
                    entry._queue = None
                    fired += 1
                    entry.fn()
                elif cls is Process:
                    sim._now = time
                    fired += 1
                    entry._resume()
                elif cls is tuple:
                    sim._now = time
                    fired += 1
                    entry[0]._resume(entry[1])
                else:
                    sim._now = time
                    fired += 1
                    entry()
        finally:
            self._active_time = None
            self._active_heap = None
            if swept:
                self._tombstones -= swept
                self.compactions += 1
            if keyed:  # an entry raised: keep the unfired remainder queued
                buckets = self._buckets
                existing = buckets.get(time)
                if existing is not None:
                    keyed.extend(existing)
                else:
                    heapq.heappush(self._times, time)
                buckets[time] = keyed
        return fired

    # --------------------------------------------------------------- draining

    def drain(self, sim) -> None:
        """Run-to-empty batched dispatch (the unbounded ``run()`` path).

        Inlines the resume of bare :class:`Process` entries — generator
        ``send`` plus the ``yield <int>`` re-schedule — saving the
        ``Event.fn`` -> ``_resume`` -> ``_dispatch`` -> ``schedule_after``
        call chain per event.  The clock only advances when an entry
        actually fires, so all-tombstone buckets leave ``now`` untouched,
        exactly like the classic heap skipping cancelled pops.
        """
        buckets = self._buckets
        times = self._times
        heads = self._heads
        heappop = heapq.heappop
        heappush = heapq.heappush
        fired = 0
        try:
            while times:
                time = heappop(times)
                bucket = buckets.pop(time, None)
                if bucket is None:
                    continue
                if bucket.__class__ is not list:
                    # singleton bucket: no walk, no cleanup bookkeeping —
                    # the entry is consumed before it runs, so an exception
                    # leaves the queue consistent (entry gone, like a
                    # popped heap event whose fn raised)
                    entry = bucket
                    self._size -= 1
                    cls = entry.__class__
                    if cls is Process:
                        sim._now = time
                        fired += 1
                        if entry._alive:
                            entry._waiting_on = None
                            try:
                                yielded = entry.generator.send(None)
                            except StopIteration as stop:
                                entry._finish(getattr(stop, "value", None))
                            else:
                                if type(yielded) is int:
                                    if yielded < 0:
                                        raise SimulationError(
                                            f"process {entry.name!r} "
                                            f"yielded negative delay "
                                            f"{yielded}")
                                    when = time + yielded
                                    prev = buckets.get(when)
                                    if prev is None:
                                        buckets[when] = entry
                                        heappush(times, when)
                                    elif prev.__class__ is list:
                                        prev.append(entry)
                                    else:
                                        buckets[when] = [prev, entry]
                                    self._size += 1
                                else:
                                    entry._dispatch(yielded)
                    elif cls is Event:
                        if entry.cancelled:
                            self._tombstones -= 1
                            continue
                        sim._now = time
                        entry._queue = None
                        fired += 1
                        entry.fn()
                    elif cls is tuple:
                        process, payload = entry
                        sim._now = time
                        fired += 1
                        process._resume(payload)
                    else:
                        sim._now = time
                        fired += 1
                        entry()
                    continue
                if self._mixed:
                    fired += self._drain_mixed_bucket(sim, time, bucket)
                    continue
                index = heads.pop(time, 0) if heads else 0
                base = index
                swept = 0
                size = self._size
                if size > self.peak_size:
                    self.peak_size = size
                completed = False
                try:
                    while True:
                        if self._mixed:
                            # a callback just introduced priorities:
                            # finish the remainder in exact order
                            rest = bucket[index:]
                            if self._seq <= len(rest):
                                self._seq = len(rest) + 1
                            index = len(bucket)
                            completed = True
                            fired += self._drain_mixed_bucket(
                                sim, time,
                                [[0, j, e] for j, e in enumerate(rest)])
                            break
                        if index >= len(bucket):
                            completed = True
                            break
                        entry = bucket[index]
                        index += 1
                        cls = entry.__class__
                        if cls is Process:
                            sim._now = time
                            fired += 1
                            if entry._alive:
                                entry._waiting_on = None
                                try:
                                    yielded = entry.generator.send(None)
                                except StopIteration as stop:
                                    entry._finish(
                                        getattr(stop, "value", None))
                                else:
                                    if type(yielded) is int:
                                        if yielded < 0:
                                            raise SimulationError(
                                                f"process {entry.name!r} "
                                                f"yielded negative delay "
                                                f"{yielded}")
                                        when = time + yielded
                                        prev = buckets.get(when)
                                        if prev is None:
                                            buckets[when] = entry
                                            heappush(times, when)
                                        elif prev.__class__ is list:
                                            prev.append(entry)
                                        else:
                                            buckets[when] = [prev, entry]
                                        self._size += 1
                                    else:
                                        entry._dispatch(yielded)
                        elif cls is Event:
                            if entry.cancelled:
                                swept += 1
                                continue
                            sim._now = time
                            entry._queue = None
                            fired += 1
                            entry.fn()
                        elif cls is tuple:
                            process, payload = entry
                            sim._now = time
                            fired += 1
                            if process._alive:
                                process._waiting_on = None
                                try:
                                    yielded = process.generator.send(payload)
                                except StopIteration as stop:
                                    process._finish(
                                        getattr(stop, "value", None))
                                else:
                                    if type(yielded) is int:
                                        if yielded < 0:
                                            raise SimulationError(
                                                f"process {process.name!r} "
                                                f"yielded negative delay "
                                                f"{yielded}")
                                        when = time + yielded
                                        prev = buckets.get(when)
                                        if prev is None:
                                            buckets[when] = process
                                            heappush(times, when)
                                        elif prev.__class__ is list:
                                            prev.append(process)
                                        else:
                                            buckets[when] = [prev, process]
                                        self._size += 1
                                    else:
                                        process._dispatch(yielded)
                        else:
                            sim._now = time
                            fired += 1
                            entry()
                finally:
                    consumed = index - base
                    if consumed:
                        self._size -= consumed
                    if swept:
                        self._tombstones -= swept
                        self.compactions += 1
                    if not completed:
                        # an entry raised: keep the unfired tail queued so
                        # a later run() resumes exactly where this stopped
                        rest = bucket[index:]
                        if rest:
                            existing = buckets.get(time)
                            if existing is None:
                                heappush(times, time)
                            elif existing.__class__ is list:
                                rest.extend(existing)
                            else:
                                rest.append(existing)
                            buckets[time] = rest
        finally:
            sim._events_fired += fired

    # ------------------------------------------------------ incremental pops

    def _fire_for(self, entry) -> Callable[[], None]:
        """Wrap a bucket entry as the zero-arg callable step()/bounded
        run() expect."""
        cls = entry.__class__
        if cls is Process:
            return entry._resume
        if cls is tuple:
            process, payload = entry
            return lambda: process._resume(payload)
        return entry

    def pop_entry(self) -> Optional[Tuple[int, Callable[[], None]]]:
        """Remove the earliest live entry as ``(time, fire)``, or None."""
        buckets = self._buckets
        times = self._times
        heads = self._heads
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket is not None and bucket.__class__ is not list:
                entry = bucket
                self._size -= 1
                heapq.heappop(times)
                del buckets[time]
                if entry.__class__ is Event:
                    if entry.cancelled:
                        self._tombstones -= 1
                        continue
                    entry._queue = None
                    return time, entry.fn
                return time, self._fire_for(entry)
            if bucket:
                if self._mixed:
                    heapq.heapify(bucket)
                    while bucket:
                        entry = heapq.heappop(bucket)[2]
                        self._size -= 1
                        if entry.__class__ is Event:
                            if entry.cancelled:
                                self._tombstones -= 1
                                continue
                            entry._queue = None
                            fire = entry.fn
                        else:
                            fire = self._fire_for(entry)
                        if not bucket:
                            heapq.heappop(times)
                            del buckets[time]
                        return time, fire
                else:
                    index = heads.get(time, 0)
                    length = len(bucket)
                    while index < length:
                        entry = bucket[index]
                        index += 1
                        if entry.__class__ is Event:
                            if entry.cancelled:
                                self._size -= 1
                                self._tombstones -= 1
                                continue
                            entry._queue = None
                            fire = entry.fn
                        else:
                            fire = self._fire_for(entry)
                        self._size -= 1
                        if index < length:
                            heads[time] = index
                        else:
                            heapq.heappop(times)
                            del buckets[time]
                            heads.pop(time, None)
                        return time, fire
            # bucket missing or fully consumed/tombstoned
            heapq.heappop(times)
            buckets.pop(time, None)
            heads.pop(time, None)
        return None

    def pending_entries(self):
        """Backend hook: every live entry in firing order (snapshots).

        Walks the distinct bucket cycles in ascending order (the
        ``_times`` heap may carry cycles whose bucket was already
        consumed — those are skipped, read-only), honouring the
        consumed-prefix offsets pop_entry leaves in ``_heads``.  Within a
        bucket, plain buckets are insertion-ordered (identical to classic
        seq order) and mixed buckets are sorted by their ``(priority,
        seq)`` keys.  Tombstoned events are dropped; classification
        matches the classic backend exactly.
        """
        entries = []
        for time in sorted(set(self._times)):
            bucket = self._buckets.get(time)
            if bucket is None:
                continue
            if bucket.__class__ is not list:
                items = [bucket]
            else:
                start = self._heads.get(time, 0)
                items = bucket[start:] if start else list(bucket)
            if self._mixed:
                keyed = [(item[0], item[1], item[2])
                         if item.__class__ is list else (0, -1, item)
                         for item in items]
                items = [item for _, _, item in sorted(
                    keyed, key=lambda key: (key[0], key[1]))]
            for entry in items:
                cls = entry.__class__
                if cls is Event:
                    if entry.cancelled:
                        continue
                    entries.append(_classify_entry(time, entry.fn))
                elif cls is Process:
                    entries.append(PendingEntry(time, entry))
                elif cls is tuple:
                    # payload-carrying resume: opaque, never claimable
                    entries.append(PendingEntry(time, None))
                else:
                    # bare callable (push_fn fast path): expose for
                    # identity-based claims
                    entries.append(PendingEntry(time, None, entry))
        return entries

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live entry, or None if the queue is empty."""
        buckets = self._buckets
        times = self._times
        heads = self._heads
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket is not None and bucket.__class__ is not list:
                if not (bucket.__class__ is Event and bucket.cancelled):
                    return time
                self._size -= 1
                self._tombstones -= 1
            elif bucket:
                start = heads.get(time, 0)
                for entry in bucket[start:] if start else bucket:
                    if self._mixed and entry.__class__ is list:
                        entry = entry[2]
                    if entry.__class__ is Event and entry.cancelled:
                        continue
                    return time
                # every remaining entry is a tombstone: sweep the bucket
                swept = len(bucket) - start
                self._size -= swept
                self._tombstones -= swept
            heapq.heappop(times)
            buckets.pop(time, None)
            heads.pop(time, None)
        return None
