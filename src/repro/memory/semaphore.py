"""Hardware synchronisation devices: semaphore bank and barrier counters.

MPARM provides hardware semaphores accessed over the interconnect; checking
is done by polling (paper Section 3).  The device semantics here follow the
trace of Figure 3:

* a semaphore word holds ``1`` when **free** and ``0`` when **locked**;
* a *read* atomically returns the current value and, if it was free, locks
  it (test-and-set) — so reading ``1`` means "acquired", reading ``0`` means
  "retry";
* a *write* stores the data value: writing ``1`` releases, writing ``0``
  forces the locked state.

Atomicity comes for free because the device serves one access at a time
(the :class:`~repro.ocp.port.OCPSlavePort` serialises transactions) and the
value update happens in the same access.
"""

from typing import Optional

from repro.kernel import Simulator
from repro.memory.slave import MemorySlave, SlaveTimings
from repro.ocp.types import WORD_BYTES, WORD_MASK

#: Value read from a free (acquirable) semaphore.
SEM_FREE = 1
#: Value read from a locked semaphore.
SEM_LOCKED = 0


class SemaphoreBank(MemorySlave):
    """A bank of test-and-set hardware semaphores, one word each.

    All semaphores reset to **free**.
    """

    def __init__(self, sim: Simulator, name: str, base: int, count: int,
                 timings: Optional[SlaveTimings] = None):
        super().__init__(sim, name, base, count * WORD_BYTES, timings)
        for index in range(count):
            self.store.write_word(index * WORD_BYTES, SEM_FREE)
        self.acquisitions = 0
        self.failed_polls = 0
        self.releases_dropped = 0
        self.releases_delayed = 0
        # in-flight delayed releases, tracked so checkpoints can claim
        # and re-arm them: [{"offset": int, "due": cycle, "fn": callable}]
        self._delayed_releases = []

    def read_location(self, offset: int) -> int:
        value = self.store.read_word(offset)
        if value == SEM_FREE:
            self.store.write_word(offset, SEM_LOCKED)
            self.acquisitions += 1
        else:
            self.failed_polls += 1
        return value

    def write_location(self, offset: int, value: int) -> None:
        injector = self.fault_injector
        if injector is not None and value == SEM_FREE:
            # A release write can be lost or land late (a dropped/delayed
            # wakeup).  Pollers keep polling either way — a bounded drop is
            # recovered by a later release, an unbounded one livelocks the
            # system into the kernel's progress watchdog.
            dropped, delay = injector.semaphore_release(offset)
            if dropped:
                self.releases_dropped += 1
                return
            if delay:
                self.releases_delayed += 1
                self._schedule_release(offset, delay)
                return
        self.store.write_word(offset, value & WORD_MASK)

    def _schedule_release(self, offset: int, delay: int) -> None:
        """Schedule a tracked late release ``delay`` cycles out."""
        record = {"offset": offset, "due": self.sim.now + delay}

        def fire(record=record):
            self._delayed_releases.remove(record)
            self.store.write_word(record["offset"], SEM_FREE)

        record["fn"] = fire
        self._delayed_releases.append(record)
        self.sim.schedule_after(delay, fire)

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update({
            "acquisitions": self.acquisitions,
            "failed_polls": self.failed_polls,
            "releases_dropped": self.releases_dropped,
            "releases_delayed": self.releases_delayed,
            # in-flight delayed releases are captured as claimed pending
            # entries (claim_entry/rearm), not here — storing them twice
            # would double-release on restore
        })
        return state

    def load_state(self, state: dict) -> None:
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        self.acquisitions = state_get(state, "acquisitions", self.name)
        self.failed_polls = state_get(state, "failed_polls", self.name)
        self.releases_dropped = state_get(state, "releases_dropped",
                                          self.name)
        self.releases_delayed = state_get(state, "releases_delayed",
                                          self.name)
        self._delayed_releases = []

    def claim_entry(self, entry):
        if entry.fn is None:
            return None
        for record in self._delayed_releases:
            if record["fn"] is entry.fn:
                return {"kind": "release", "offset": record["offset"],
                        "at": record["due"]}
        return None

    def rearm(self, sim, slot: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        if state_get(slot, "kind", self.name) != "release":
            raise SnapshotError(
                f"{self.name}: unknown pending-entry kind "
                f"{slot.get('kind')!r}")
        offset = state_get(slot, "offset", self.name)
        at = state_get(slot, "at", self.name)
        if not isinstance(at, int) or at <= sim.now:
            raise SnapshotError(
                f"{self.name}: delayed release due at cycle {at!r} is not "
                f"after the snapshot cycle {sim.now}")
        self._schedule_release(offset, at - sim.now)

    def semaphore_addr(self, index: int) -> int:
        """Global address of semaphore ``index``."""
        return self.base + index * WORD_BYTES

    def is_free(self, index: int) -> bool:
        """Zero-time state check (for tests)."""
        return self.store.read_word(index * WORD_BYTES) == SEM_FREE


class BarrierDevice(MemorySlave):
    """A bank of atomic event counters used as barriers.

    Each counter occupies **two words**:

    * word 0 (*count*): read returns the current count; write **adds** the
      data value atomically (masters always write the constant ``1``, which
      keeps trace data independent of arrival order);
    * word 1 (*control*): write **sets** the count to the data value (used
      to reset a barrier); read returns the count as well.

    A barrier among *n* masters is: each master adds 1, then polls the count
    word until it reads a value >= *n* (the translator collapses that poll
    into a reactive loop exactly like a semaphore poll).
    """

    WORDS_PER_COUNTER = 2

    def __init__(self, sim: Simulator, name: str, base: int, count: int,
                 timings: Optional[SlaveTimings] = None):
        size = count * self.WORDS_PER_COUNTER * WORD_BYTES
        super().__init__(sim, name, base, size, timings)

    def _counter_offset(self, offset: int) -> int:
        return offset - (offset % (self.WORDS_PER_COUNTER * WORD_BYTES))

    def _is_control(self, offset: int) -> bool:
        return (offset // WORD_BYTES) % self.WORDS_PER_COUNTER == 1

    def read_location(self, offset: int) -> int:
        return self.store.read_word(self._counter_offset(offset))

    def write_location(self, offset: int, value: int) -> None:
        counter = self._counter_offset(offset)
        if self._is_control(offset):
            self.store.write_word(counter, value & WORD_MASK)
        else:
            current = self.store.read_word(counter)
            self.store.write_word(counter, (current + value) & WORD_MASK)

    def counter_addr(self, index: int) -> int:
        """Global address of the *count* word of counter ``index``."""
        return self.base + index * self.WORDS_PER_COUNTER * WORD_BYTES

    def control_addr(self, index: int) -> int:
        """Global address of the *control* (reset) word of counter ``index``."""
        return self.counter_addr(index) + WORD_BYTES

    def value(self, index: int) -> int:
        """Zero-time count readback (for tests)."""
        return self.store.read_word(
            index * self.WORDS_PER_COUNTER * WORD_BYTES)
