"""Sparse word-addressable backing store."""

from typing import Dict, Iterable, List

from repro.ocp.types import OCPError, WORD_BYTES, WORD_MASK


class WordStore:
    """A sparse 32-bit word store indexed by byte address.

    Unwritten locations read as zero.  Addresses must be word aligned and
    inside ``[0, size)`` relative to the store base (the store is
    zero-based; mapping to a global address range is the slave's job).
    """

    def __init__(self, size_bytes: int):
        if size_bytes <= 0 or size_bytes % WORD_BYTES != 0:
            raise OCPError(f"store size must be a positive word multiple, "
                           f"got {size_bytes}")
        self.size_bytes = size_bytes
        self._words: Dict[int, int] = {}

    def _check(self, offset: int) -> None:
        if offset % WORD_BYTES != 0:
            raise OCPError(f"unaligned store offset 0x{offset:x}")
        if offset < 0 or offset + WORD_BYTES > self.size_bytes:
            raise OCPError(
                f"store offset 0x{offset:x} outside size 0x{self.size_bytes:x}")

    def read_word(self, offset: int) -> int:
        """Read the 32-bit word at byte ``offset``."""
        self._check(offset)
        return self._words.get(offset, 0)

    def write_word(self, offset: int, value: int) -> None:
        """Write the 32-bit word at byte ``offset`` (value is masked)."""
        self._check(offset)
        self._words[offset] = value & WORD_MASK

    def load_words(self, offset: int, words: Iterable[int]) -> None:
        """Bulk-load consecutive words starting at byte ``offset``."""
        for index, word in enumerate(words):
            self.write_word(offset + index * WORD_BYTES, word)

    def dump_words(self, offset: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at byte ``offset``."""
        return [self.read_word(offset + i * WORD_BYTES) for i in range(count)]

    @property
    def written_offsets(self) -> List[int]:
        """Sorted byte offsets that have been written (for debugging)."""
        return sorted(self._words)
