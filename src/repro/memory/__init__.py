"""Memory-mapped slave devices.

The MPARM platform of the paper exposes three kinds of system slaves, all
reproduced here:

* **private memories** (one per core: boot code, data, stack; cacheable),
* a **shared memory** visible to all masters (uncached),
* a **hardware semaphore bank** whose reads are atomic test-and-set — the
  device that makes the polling loops of Figure 2(b)/Figure 3 work.

We add a small **barrier/counter device** (atomic increment on write) used
by the multiprocessor benchmarks; MPARM builds barriers out of semaphores
plus shared counters, but a hardware counter keeps write *data* values
independent of arrival order, which the cross-interconnect validation
experiment (DESIGN.md E7) requires.  All devices share the same timing
model: a configurable access time for the first beat plus one cycle per
additional burst beat.
"""

from repro.memory.store import WordStore
from repro.memory.slave import MemorySlave, SlaveTimings
from repro.memory.semaphore import BarrierDevice, SemaphoreBank

__all__ = [
    "BarrierDevice",
    "MemorySlave",
    "SemaphoreBank",
    "SlaveTimings",
    "WordStore",
]
