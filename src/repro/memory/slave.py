"""Generic memory slave with MPARM-style access timing."""

from typing import Optional

from repro.faults.injector import ERROR_DATA
from repro.kernel import Component, Simulator
from repro.memory.store import WordStore
from repro.ocp.types import OCPError, Request, Response


class SlaveTimings:
    """Access-time model for a slave device.

    ``first_beat`` cycles for the initial access (row activation, decode...)
    and ``per_beat`` cycles for each additional burst beat.  These are the
    "slave access time" of Figure 2(a).
    """

    __slots__ = ("first_beat", "per_beat")

    def __init__(self, first_beat: int = 1, per_beat: int = 1):
        if first_beat < 0 or per_beat < 0:
            raise OCPError("slave timings must be non-negative")
        self.first_beat = first_beat
        self.per_beat = per_beat

    def cycles(self, burst_len: int) -> int:
        """Total service time of a transfer of ``burst_len`` beats."""
        return self.first_beat + self.per_beat * max(0, burst_len - 1)

    def __repr__(self) -> str:
        return f"SlaveTimings(first_beat={self.first_beat}, per_beat={self.per_beat})"


class MemorySlave(Component):
    """A plain RAM slave (private or shared memory).

    The slave is mapped at ``base`` in the global address space; requests
    carry global addresses and are translated to store offsets here.
    """

    def __init__(self, sim: Simulator, name: str, base: int, size_bytes: int,
                 timings: Optional[SlaveTimings] = None):
        super().__init__(sim, name)
        self.base = base
        self.size_bytes = size_bytes
        self.store = WordStore(size_bytes)
        self.timings = timings or SlaveTimings()
        self.reads = 0
        self.writes = 0
        #: Optional :class:`~repro.faults.FaultInjector`; ``None`` keeps the
        #: slave on the exact pre-fault-subsystem path.
        self.fault_injector = None
        self.error_responses_sent = 0

    def contains(self, addr: int) -> bool:
        """True when global byte address ``addr`` maps into this slave."""
        return self.base <= addr < self.base + self.size_bytes

    def _offset(self, addr: int) -> int:
        if not self.contains(addr):
            raise OCPError(
                f"address 0x{addr:08x} outside slave {self.name!r} "
                f"[0x{self.base:08x}, 0x{self.base + self.size_bytes:08x})")
        return addr - self.base

    # -- device semantics (overridden by the semaphore/barrier devices) ----

    def read_location(self, offset: int) -> int:
        """Device read semantics for one word; plain load for RAM."""
        return self.store.read_word(offset)

    def write_location(self, offset: int, value: int) -> None:
        """Device write semantics for one word; plain store for RAM."""
        self.store.write_word(offset, value)

    # ------------------------------------------------------------- access

    def access(self, request: Request):
        """Serve a request (generator): consume access time, move data."""
        service = self.timings.cycles(request.burst_len)
        if service:
            yield service
        injector = self.fault_injector
        if injector is not None and injector.slave_error(self.name, request):
            # The access consumed its service time but the operation did not
            # take effect: no data moves, the response carries the error flag
            # (and recognisably bogus beats, so a master that ignores the
            # flag computes on garbage rather than silently-correct values).
            self.error_responses_sent += 1
            if request.cmd.is_read:
                data = ([ERROR_DATA] * request.burst_len
                        if request.cmd.is_burst else ERROR_DATA)
                return Response(request, data, error=True)
            return Response(request, error=True)
        if request.cmd.is_read:
            words = [self.read_location(self._offset(addr))
                     for addr in request.beat_addresses]
            self.reads += request.burst_len
            data = words if request.cmd.is_burst else words[0]
            return Response(request, data)
        words = request.data if request.cmd.is_burst else [request.data]
        for addr, word in zip(request.beat_addresses, words):
            self.write_location(self._offset(addr), word)
        self.writes += request.burst_len
        return Response(request)

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Memory contents (sparse) + access counters.

        Subclasses with extra architectural state extend the dict via
        ``super().state_dict()``.  JSON keys must be strings, so offsets
        are serialised as decimal strings.
        """
        store = self.store
        return {
            "words": {str(offset): store.read_word(offset)
                      for offset in store.written_offsets},
            "reads": self.reads,
            "writes": self.writes,
            "error_responses_sent": self.error_responses_sent,
        }

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        words = state_get(state, "words", self.name)
        if not isinstance(words, dict):
            raise SnapshotError(
                f"snapshot for {self.name}: 'words' must be an object")
        store = WordStore(self.size_bytes)
        try:
            for key, value in words.items():
                store.write_word(int(key), value)
        except (TypeError, ValueError) as error:
            raise SnapshotError(
                f"snapshot for {self.name}: bad memory word entry "
                f"({error})") from None
        # replace wholesale: device resets applied in __init__ (e.g. the
        # semaphore free words) are part of the captured written set
        self.store = store
        self.reads = state_get(state, "reads", self.name)
        self.writes = state_get(state, "writes", self.name)
        self.error_responses_sent = state_get(
            state, "error_responses_sent", self.name)

    # --------------------------------------------------------- debug/load

    def load(self, addr: int, words) -> None:
        """Bulk-load program/data at a global address (simulation setup)."""
        self.store.load_words(self._offset(addr), words)

    def peek(self, addr: int) -> int:
        """Zero-time read of one word at a global address (for checks)."""
        return self.store.read_word(self._offset(addr))

    def peek_block(self, addr: int, count: int):
        """Zero-time read of ``count`` words (for result verification)."""
        return self.store.dump_words(self._offset(addr), count)

    def poke(self, addr: int, value: int) -> None:
        """Zero-time write of one word at a global address (setup/tests)."""
        self.store.write_word(self._offset(addr), value)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} "
                f"base=0x{self.base:08x} size=0x{self.size_bytes:x}>")
