"""Global address decoding shared by all fabrics."""

from typing import List, Optional

from repro.ocp.types import OCPError, Request, WORD_BYTES


class AddressRange:
    """A mapped slave: ``[base, base+size)`` served by ``slave_port``."""

    __slots__ = ("base", "size", "slave_port", "name")

    def __init__(self, base: int, size: int, slave_port, name: str = ""):
        if size <= 0:
            raise OCPError(f"range size must be positive, got {size}")
        if base % WORD_BYTES != 0:
            raise OCPError(f"range base 0x{base:x} not word aligned")
        self.base = base
        self.size = size
        self.slave_port = slave_port
        self.name = name or getattr(slave_port, "name", "slave")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def __repr__(self) -> str:
        return f"<AddressRange {self.name!r} [0x{self.base:08x}, 0x{self.end:08x})>"


class AddressMap:
    """Ordered collection of non-overlapping address ranges."""

    def __init__(self) -> None:
        self._ranges: List[AddressRange] = []

    def add(self, base: int, size: int, slave_port, name: str = "") -> AddressRange:
        """Map ``slave_port`` at ``[base, base+size)``; rejects overlaps."""
        new = AddressRange(base, size, slave_port, name)
        for existing in self._ranges:
            if existing.overlaps(new):
                raise OCPError(f"{new!r} overlaps {existing!r}")
        self._ranges.append(new)
        self._ranges.sort(key=lambda r: r.base)
        return new

    @property
    def ranges(self) -> List[AddressRange]:
        return list(self._ranges)

    def find(self, addr: int) -> Optional[AddressRange]:
        """Range containing ``addr``, or None."""
        for range_ in self._ranges:
            if range_.contains(addr):
                return range_
        return None

    def decode(self, request: Request) -> AddressRange:
        """Resolve a request to its slave; the whole burst must fit."""
        range_ = self.find(request.addr)
        if range_ is None:
            raise OCPError(f"unmapped address 0x{request.addr:08x}")
        last = request.addr + (request.burst_len - 1) * WORD_BYTES
        if not range_.contains(last):
            raise OCPError(
                f"burst {request!r} crosses out of {range_!r}")
        return range_

    def slave_ports(self) -> List:
        """All distinct slave ports in mapping order."""
        seen = []
        for range_ in self._ranges:
            if range_.slave_port not in seen:
                seen.append(range_.slave_port)
        return seen
