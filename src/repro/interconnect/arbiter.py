"""Bus arbiters: fixed-priority, round-robin and TDMA grant policies.

The arbiter decides which requesting master owns a shared resource (the
AHB bus, an STBus slave channel).  Requests arriving in the same cycle
compete in the same decision — the grant fires ``arbitration_cycles`` after
the resource is first requested while idle, and re-arbitration after a
release is overlapped (zero-cycle), as in a pipelined AHB arbiter.

Requests are queued as individual *entries*, so a master may hold several
pending requests at once (a split-transaction master with multiple
outstanding reads, or a posted write still holding the bus while the next
transfer is already requested).  Entries of the same master are granted
oldest-first.
"""

from typing import Dict, List, Optional

from repro.kernel import SimulationError, Simulator


class _Entry:
    __slots__ = ("master_id", "signal", "request_time")

    def __init__(self, master_id: int, signal, request_time: int):
        self.master_id = master_id
        self.signal = signal
        self.request_time = request_time


class Arbiter:
    """Base grant machinery; subclasses implement :meth:`_choose`."""

    def __init__(self, sim: Simulator, name: str = "arbiter",
                 arbitration_cycles: int = 1):
        if arbitration_cycles < 0:
            raise SimulationError("arbitration_cycles must be >= 0")
        self.sim = sim
        self.name = name
        self.arbitration_cycles = arbitration_cycles
        self._entries: List[_Entry] = []   # request order
        self._owner: Optional[int] = None
        self._decision_scheduled = False
        # statistics
        self.grants = 0
        self.wait_cycles: Dict[int, int] = {}
        self.busy_cycles = 0
        self._owned_since = 0

    # ------------------------------------------------------------ policy

    def _choose(self, pending: List[int]) -> int:
        """Pick the winning master id from the pending ids (may repeat)."""
        raise NotImplementedError

    # --------------------------------------------------------------- API

    @property
    def owner(self) -> Optional[int]:
        """Master currently owning the resource, or None when free."""
        return self._owner

    @property
    def pending(self) -> List[int]:
        """Master ids of queued requests, oldest first (may repeat)."""
        return [entry.master_id for entry in self._entries]

    def acquire(self, master_id: int):
        """Request ownership (generator); returns once granted.

        A master may queue several concurrent requests (posted write still
        holding the bus, split-transaction reads); they are served
        oldest-first whenever the policy selects that master.
        """
        signal = self.sim.signal(f"{self.name}.grant{master_id}")
        self._entries.append(_Entry(master_id, signal, self.sim.now))
        if self._owner is None and not self._decision_scheduled:
            self._decision_scheduled = True
            self.sim.schedule_after(self.arbitration_cycles, self._decide)
        yield signal

    def release(self, master_id: int) -> None:
        """Give up ownership; re-arbitration is immediate (overlapped)."""
        if self._owner != master_id:
            raise SimulationError(
                f"master {master_id} does not own {self.name!r} "
                f"(owner={self._owner})")
        self.busy_cycles += self.sim.now - self._owned_since
        self._owner = None
        if self._entries and not self._decision_scheduled:
            self._decision_scheduled = True
            self.sim.schedule_after(0, self._decide)

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Grant statistics; captured only when idle (no owner, no queue,
        no armed decision — see :meth:`checkpoint_blockers`)."""
        return {
            "grants": self.grants,
            "wait_cycles": {str(master_id): cycles
                            for master_id, cycles
                            in sorted(self.wait_cycles.items())},
            "busy_cycles": self.busy_cycles,
        }

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        self.grants = state_get(state, "grants", self.name)
        waits = state_get(state, "wait_cycles", self.name)
        if not isinstance(waits, dict):
            raise SnapshotError(
                f"snapshot for {self.name}: 'wait_cycles' must be an "
                f"object")
        try:
            self.wait_cycles = {int(key): value
                                for key, value in waits.items()}
        except (TypeError, ValueError) as error:
            raise SnapshotError(
                f"snapshot for {self.name}: bad wait_cycles entry "
                f"({error})") from None
        self.busy_cycles = state_get(state, "busy_cycles", self.name)
        self._entries = []
        self._owner = None
        self._decision_scheduled = False
        self._owned_since = 0

    def checkpoint_blockers(self):
        blockers = []
        if self._owner is not None:
            blockers.append(f"owned by master {self._owner}")
        if self._entries:
            blockers.append(f"{len(self._entries)} grant request(s) "
                            f"queued")
        if self._decision_scheduled:
            blockers.append("grant decision scheduled")
        return blockers

    # ------------------------------------------------------------ internal

    def _decide(self) -> None:
        self._decision_scheduled = False
        if self._owner is not None or not self._entries:
            return
        winner_id = self._choose([entry.master_id
                                  for entry in self._entries])
        for slot, entry in enumerate(self._entries):
            if entry.master_id == winner_id:
                break
        else:  # pragma: no cover - _choose returns a pending id
            raise SimulationError(f"{self.name}: policy chose non-pending "
                                  f"master {winner_id}")
        entry = self._entries.pop(slot)
        self._owner = winner_id
        self._owned_since = self.sim.now
        self.grants += 1
        waited = self.sim.now - entry.request_time
        self.wait_cycles[winner_id] = (
            self.wait_cycles.get(winner_id, 0) + waited)
        entry.signal.notify()


class FixedPriorityArbiter(Arbiter):
    """Lower master id always wins (AHB default priority scheme).

    Beware: under saturation this *starves* high-id masters — the platform
    default is round-robin for that reason (see
    :class:`repro.platform.config.PlatformConfig`).
    """

    def _choose(self, pending: List[int]) -> int:
        return min(pending)


class RoundRobinArbiter(Arbiter):
    """Fair rotation: the winner is the next id after the previous winner."""

    def __init__(self, sim: Simulator, name: str = "rr_arbiter",
                 arbitration_cycles: int = 1):
        super().__init__(sim, name, arbitration_cycles)
        self._last_winner = -1

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["last_winner"] = self._last_winner
        return state

    def load_state(self, state: dict) -> None:
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        self._last_winner = state_get(state, "last_winner", self.name)

    def _choose(self, pending: List[int]) -> int:
        ordered = sorted(set(pending))
        for candidate in ordered:
            if candidate > self._last_winner:
                self._last_winner = candidate
                return candidate
        self._last_winner = ordered[0]
        return ordered[0]


class TdmaArbiter(Arbiter):
    """Time-division arbitration: a rotating slot table owns the bus.

    ``slot_table[i]`` names the master that may be granted during slot
    *i*; each slot lasts ``slot_cycles``.  A requesting master waits for
    its slot (contention-free guaranteed bandwidth, higher average
    latency) — the classic alternative explored in NoC design-space
    studies.  A request decision simply defers until the current slot's
    master is pending.
    """

    def __init__(self, sim: Simulator, name: str = "tdma_arbiter",
                 arbitration_cycles: int = 1,
                 slot_table: Optional[List[int]] = None,
                 slot_cycles: int = 16):
        super().__init__(sim, name, arbitration_cycles)
        if not slot_table:
            raise SimulationError("TDMA needs a non-empty slot table")
        if slot_cycles < 1:
            raise SimulationError("slot_cycles must be >= 1")
        self.slot_table = list(slot_table)
        self.slot_cycles = slot_cycles

    def current_slot_master(self) -> int:
        """Master owning the current TDMA slot."""
        index = (self.sim.now // self.slot_cycles) % len(self.slot_table)
        return self.slot_table[index]

    def _cycles_to_next_slot_edge(self) -> int:
        return self.slot_cycles - (self.sim.now % self.slot_cycles)

    def _decide(self) -> None:
        self._decision_scheduled = False
        if self._owner is not None or not self._entries:
            return
        slot_master = self.current_slot_master()
        if any(entry.master_id == slot_master for entry in self._entries):
            for slot, entry in enumerate(self._entries):
                if entry.master_id == slot_master:
                    break
            entry = self._entries.pop(slot)
            self._owner = slot_master
            self._owned_since = self.sim.now
            self.grants += 1
            waited = self.sim.now - entry.request_time
            self.wait_cycles[slot_master] = (
                self.wait_cycles.get(slot_master, 0) + waited)
            entry.signal.notify()
            return
        # nobody owns the current slot: re-evaluate at the next slot edge
        self._decision_scheduled = True
        self.sim.schedule_after(self._cycles_to_next_slot_edge(),
                                self._decide)

    def _choose(self, pending: List[int]) -> int:  # pragma: no cover
        raise SimulationError("TDMA grants by slot, not by choice")


_POLICIES = {
    "fixed": FixedPriorityArbiter,
    "round_robin": RoundRobinArbiter,
    "tdma": TdmaArbiter,
}


def make_arbiter(policy: str, sim: Simulator, name: str = "arbiter",
                 arbitration_cycles: int = 1, **kwargs) -> Arbiter:
    """Factory: ``policy`` is ``"fixed"``, ``"round_robin"`` or ``"tdma"``.

    Extra keyword arguments (e.g. ``slot_table``/``slot_cycles`` for TDMA)
    are forwarded to the policy constructor.
    """
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise SimulationError(
            f"unknown arbiter policy {policy!r}; "
            f"choose from {sorted(_POLICIES)}") from None
    return cls(sim, name, arbitration_cycles, **kwargs)
