"""Contention-free transactional fabric.

The cheapest interconnect model: a fixed request latency, the slave access,
and a fixed response latency, with unlimited concurrency (no arbitration).
The paper notes that reference trace collection "could be performed on top
of a transactional fabric model, further reducing the impact of the
reference simulation" — this fabric is exactly that, and the DSE example
uses it for the one-off tracing run.

Slave-side contention is still modelled (the slave port serialises
accesses), because that is a property of the slave, not of the fabric.
"""

from typing import Optional

from repro.kernel import Simulator
from repro.interconnect.address_map import AddressMap
from repro.interconnect.base import Fabric
from repro.ocp.types import Request


class TlmFabric(Fabric):
    """Fixed-latency, contention-free transactional interconnect.

    Args:
        request_latency: Cycles from master issue to slave-side arrival.
        response_latency: Cycles from slave completion back to the master.
    """

    def __init__(self, sim: Simulator, name: str = "tlm",
                 address_map: Optional[AddressMap] = None,
                 request_latency: int = 2, response_latency: int = 1):
        super().__init__(sim, name, address_map)
        self.request_latency = request_latency
        self.response_latency = response_latency

    def _rederive_quiescent(self) -> None:
        """Nothing to re-derive: the TLM fabric is stateless beyond the
        portable traffic statistics (latencies are construction
        parameters; posted-write helper processes exist only while a
        write is in flight, and at a quiescent cycle none is)."""

    def transport(self, master_id: int, request: Request):
        self.stats.record(master_id, request)
        range_ = self.address_map.decode(request)
        stall = self._hop_delay()
        if stall:
            yield stall
        if self.request_latency:
            yield self.request_latency
        if request.cmd.is_write:
            # Command accepted once it reaches the slave side; the write
            # completes in the background while the master proceeds.
            self._accept(request)
            self.sim.spawn(range_.slave_port.access(request),
                           name=f"{self.name}.wr#{request.uid}")
            return None
        self._accept(request)
        response = yield from range_.slave_port.access(request)
        stall = self._hop_delay()
        if stall:
            yield stall
        if self.response_latency:
            yield self.response_latency
        return response
