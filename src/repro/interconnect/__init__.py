"""Interconnect fabrics.

Four interconnects, matching the spread the paper explores with MPARM:

* :class:`~repro.interconnect.amba_ahb.AmbaAhbBus` — the cycle-true shared
  bus all Table-2 experiments run on (arbitration, address phase, data
  phases with slave wait states, posted writes with back-pressure);
* :class:`~repro.interconnect.xpipes.XpipesNoc` — a ×pipes-style 2D-mesh
  wormhole packet-switched NoC (network interfaces, XY routing,
  input-buffered routers);
* :class:`~repro.interconnect.stbus.STBusFabric` — an STBus-type-3-style
  partial crossbar with per-slave arbitration;
* :class:`~repro.interconnect.tlm.TlmFabric` — a contention-free
  fixed-latency transactional model, the cheap fabric the paper suggests
  for reference trace collection.

All fabrics implement the same ``transport(master_id, request)`` generator
API consumed by :class:`~repro.ocp.port.OCPMasterPort`, so any master model
(IP core or TG) runs unmodified on any of them.
"""

from repro.interconnect.address_map import AddressMap, AddressRange
from repro.interconnect.arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.interconnect.base import Fabric, FabricStats
from repro.interconnect.tlm import TlmFabric
from repro.interconnect.amba_ahb import AmbaAhbBus
from repro.interconnect.stbus import STBusFabric
from repro.interconnect.xpipes import XpipesNoc

__all__ = [
    "AddressMap",
    "AddressRange",
    "AmbaAhbBus",
    "Arbiter",
    "Fabric",
    "FabricStats",
    "FixedPriorityArbiter",
    "RoundRobinArbiter",
    "STBusFabric",
    "TlmFabric",
    "XpipesNoc",
    "make_arbiter",
]
