"""Cycle-true AMBA AHB-style shared bus.

This is the interconnect all Table-2 experiments run on.  The model captures
the AHB behaviours that matter at the OCP boundary:

* single shared bus: one transaction in flight at a time (no split/retry);
* **arbitration** — fixed-priority or round-robin, one cycle when the bus
  was idle, overlapped (zero-cycle) re-arbitration on hand-over;
* **address phase** — one cycle; the command is *accepted* at the end of
  the address phase, which is when a posted write releases its master;
* **data phases** — driven by the slave (wait states appear naturally as
  the slave's access-time generator runs while the bus is held);
* **posted writes with back-pressure** — the master resumes at accept, but
  the bus stays busy until the write data lands in the slave, so a
  congested bus delays everything behind it.
"""

from typing import Optional

from repro.kernel import Simulator
from repro.interconnect.address_map import AddressMap
from repro.interconnect.arbiter import make_arbiter
from repro.interconnect.base import Fabric
from repro.ocp.types import Request


class AmbaAhbBus(Fabric):
    """Shared-bus fabric with AHB-flavoured timing.

    Args:
        arbiter_policy: ``"fixed"`` (AHB default) or ``"round_robin"``.
        arbitration_cycles: Grant delay when the bus was idle.
        address_phase_cycles: Length of the address phase.
        response_delay: Read-data return path (slave → master mux) delay.
    """

    def __init__(self, sim: Simulator, name: str = "ahb",
                 address_map: Optional[AddressMap] = None,
                 arbiter_policy: str = "fixed",
                 arbitration_cycles: int = 1,
                 address_phase_cycles: int = 1,
                 response_delay: int = 1,
                 arbiter_kwargs: Optional[dict] = None):
        super().__init__(sim, name, address_map)
        self.arbiter = make_arbiter(arbiter_policy, sim, f"{name}.arbiter",
                                    arbitration_cycles,
                                    **(arbiter_kwargs or {}))
        self.address_phase_cycles = address_phase_cycles
        self.response_delay = response_delay

    @property
    def busy_cycles(self) -> int:
        """Cycles the bus has been owned by some master so far."""
        return self.arbiter.busy_cycles

    def utilisation(self) -> float:
        """Fraction of elapsed cycles the bus was owned."""
        if self.sim.now == 0:
            return 0.0
        return self.arbiter.busy_cycles / self.sim.now

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["arbiter"] = self.arbiter.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        self.arbiter.load_state(state_get(state, "arbiter", self.name))

    def checkpoint_blockers(self):
        # in-flight posted writes surface as live _complete_write
        # processes, caught by the global unclaimed-process pass
        return [f"arbiter: {reason}"
                for reason in self.arbiter.checkpoint_blockers()]

    def _rederive_quiescent(self) -> None:
        """Nothing to rebuild: at a quiescent cycle the bus is idle —
        no grant held, no posted write draining — so the freshly-built
        arbiter is already in the correct (empty) state.  Its
        ``busy_cycles`` utilisation accounting restarts at the restore
        point: bus utilisation is fabric-internal bookkeeping, not
        portable workload state."""

    # ------------------------------------------------------------ transport

    def transport(self, master_id: int, request: Request):
        self.stats.record(master_id, request)
        range_ = self.address_map.decode(request)
        stall = self._hop_delay()  # request-path jitter / transient stall
        if stall:
            yield stall
        yield from self.arbiter.acquire(master_id)
        if self.address_phase_cycles:
            yield self.address_phase_cycles
        self._accept(request)
        if request.cmd.is_write:
            # Posted write: master resumes now; the bus is held until the
            # write data phase completes at the slave.
            self.sim.spawn(self._complete_write(master_id, request, range_),
                           name=f"{self.name}.wr#{request.uid}")
            return None
        response = yield from range_.slave_port.access(request)
        self.arbiter.release(master_id)
        stall = self._hop_delay()  # response-path jitter
        if stall:
            yield stall
        if self.response_delay:
            yield self.response_delay
        return response

    def _complete_write(self, master_id: int, request: Request, range_):
        yield from range_.slave_port.access(request)
        self.arbiter.release(master_id)
