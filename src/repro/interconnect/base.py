"""Fabric base class and shared statistics."""

from typing import Dict, Optional

from repro.kernel import Component, Simulator
from repro.interconnect.address_map import AddressMap
from repro.ocp.types import Request


class FabricStats:
    """Counters every fabric maintains (read by the reporting layer)."""

    def __init__(self) -> None:
        self.transactions = 0
        self.read_transactions = 0
        self.write_transactions = 0
        self.beats_transferred = 0
        self.per_master_transactions: Dict[int, int] = {}

    def record(self, master_id: int, request: Request) -> None:
        self.transactions += 1
        if request.cmd.is_read:
            self.read_transactions += 1
        else:
            self.write_transactions += 1
        self.beats_transferred += request.burst_len
        self.per_master_transactions[master_id] = (
            self.per_master_transactions.get(master_id, 0) + 1)


class Fabric(Component):
    """Common base for all interconnect models.

    A fabric owns an :class:`AddressMap` and implements
    ``transport(master_id, request)``: a generator that performs the whole
    transaction and returns a :class:`Response` for reads (``None`` for
    writes).  Write transport returns to the caller at *command accept*
    (posted-write semantics); the fabric must invoke ``request.on_accept()``
    exactly once at the accept instant for every request.
    """

    def __init__(self, sim: Simulator, name: str,
                 address_map: Optional[AddressMap] = None):
        super().__init__(sim, name)
        self.address_map = address_map or AddressMap()
        self.stats = FabricStats()
        #: Optional :class:`~repro.faults.FaultInjector` consulted per hop;
        #: ``None`` (default) keeps transport on the exact unperturbed path.
        self.fault_injector = None

    def transport(self, master_id: int, request: Request):
        """Run one transaction (generator).  Subclasses implement."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type symmetry

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Traffic statistics; fabrics with internal machinery extend."""
        stats = self.stats
        return {
            "transactions": stats.transactions,
            "read_transactions": stats.read_transactions,
            "write_transactions": stats.write_transactions,
            "beats_transferred": stats.beats_transferred,
            "per_master_transactions": {
                str(master_id): count for master_id, count
                in sorted(stats.per_master_transactions.items())},
        }

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        stats = FabricStats()
        stats.transactions = state_get(state, "transactions", self.name)
        stats.read_transactions = state_get(
            state, "read_transactions", self.name)
        stats.write_transactions = state_get(
            state, "write_transactions", self.name)
        stats.beats_transferred = state_get(
            state, "beats_transferred", self.name)
        per_master = state_get(state, "per_master_transactions", self.name)
        if not isinstance(per_master, dict):
            raise SnapshotError(
                f"snapshot for {self.name}: 'per_master_transactions' "
                f"must be an object")
        try:
            stats.per_master_transactions = {
                int(key): value for key, value in per_master.items()}
        except (TypeError, ValueError) as error:
            raise SnapshotError(
                f"snapshot for {self.name}: bad per-master entry "
                f"({error})") from None
        self.stats = stats

    def load_quiescent_state(self, state: dict) -> None:
        """Adopt a snapshot taken on a *different* fabric class.

        At a quiescent cycle nothing is in flight, so the only state a
        fabric carries that outlives the boundary is the portable
        traffic accounting in :class:`FabricStats` — arbiters hold no
        grant, FIFOs are empty, no packet is mid-mesh.  Cross-fabric
        restore therefore loads only the base statistics (explicitly via
        ``Fabric.load_state``, so a source fabric's private keys —
        ``"arbiter"``, ``"flits_routed"`` — are ignored rather than
        demanded) and re-derives everything internal from scratch via
        :meth:`_rederive_quiescent`.
        """
        Fabric.load_state(self, state)
        self._rederive_quiescent()

    def _rederive_quiescent(self) -> None:
        """Rebuild fabric-internal machinery for a cross-fabric restore.

        Called by :meth:`load_quiescent_state` after the portable
        statistics are in place.  The default is a no-op: a fabric whose
        internal state is created lazily (or is empty at quiescence)
        needs nothing.  Fabrics with permanent machinery (the ×pipes
        mesh) override this to construct it so the restore settle pass
        can park it.
        """

    def _hop_delay(self) -> int:
        """Injected extra cycles for one hop (0 when faults are disabled)."""
        if self.fault_injector is None:
            return 0
        return self.fault_injector.hop_delay(self.name)

    @staticmethod
    def _accept(request: Request) -> None:
        """Fire the accept callback exactly once."""
        if request.on_accept is not None:
            callback, request.on_accept = request.on_accept, None
            callback()
