"""×pipes-style packet-switched 2D-mesh NoC.

A wormhole network in the spirit of ×pipes [Dall'Osso et al., ICCD'03], the
second interconnect the paper collects traces on:

* **network interfaces (NIs)** packetise OCP transactions into flits
  (header + address + data beats) and re-assemble them at the far side;
* **routers** have one input FIFO per port; forwarding is input-driven
  wormhole: the head flit acquires the output channel, the whole packet
  streams through at one flit per cycle, the tail releases the channel;
* **XY routing**: packets travel along X first, then Y — deadlock-free and
  in-order per source/destination pair, which preserves OCP ordering per
  master;
* **back-pressure**: full downstream FIFOs stall the packet in place,
  propagating congestion upstream hop by hop.

Each endpoint (master or slave) occupies its own mesh node.  The fabric
auto-places endpoints on the smallest mesh that fits unless explicit
coordinates are given.
"""

import math
from typing import Dict, List, Optional, Tuple

from repro.kernel import Fifo, Simulator
from repro.interconnect.address_map import AddressMap
from repro.interconnect.base import Fabric
from repro.ocp.types import OCPError, Request, Response

#: Router port identifiers.
LOCAL, NORTH, SOUTH, EAST, WEST = "L", "N", "S", "E", "W"
_OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


class Packet:
    """A packetised transaction travelling through the mesh."""

    __slots__ = ("uid", "src", "dest", "flit_count", "request", "response",
                 "is_request")

    def __init__(self, uid: int, src: Tuple[int, int], dest: Tuple[int, int],
                 flit_count: int, request: Request,
                 response: Optional[Response] = None,
                 is_request: bool = True):
        self.uid = uid
        self.src = src
        self.dest = dest
        self.flit_count = flit_count
        self.request = request
        self.response = response
        self.is_request = is_request

    def __repr__(self) -> str:
        kind = "req" if self.is_request else "resp"
        return f"<Packet {kind}#{self.uid} {self.src}->{self.dest} {self.flit_count}f>"


class Flit:
    """One flow-control unit; ``index`` 0 is the header, the last is tail."""

    __slots__ = ("packet", "index")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.flit_count - 1

    def __repr__(self) -> str:
        return f"<Flit {self.index}/{self.packet.flit_count} of {self.packet!r}>"


def xy_route(current: Tuple[int, int], dest: Tuple[int, int]) -> str:
    """Next output port under dimension-ordered (X then Y) routing."""
    cx, cy = current
    dx, dy = dest
    if dx > cx:
        return EAST
    if dx < cx:
        return WEST
    if dy > cy:
        return SOUTH
    if dy < cy:
        return NORTH
    return LOCAL


def yx_route(current: Tuple[int, int], dest: Tuple[int, int]) -> str:
    """Next output port under Y-then-X dimension-ordered routing.

    Equally deadlock-free and in-order per flow; it loads the vertical
    links first, which shifts hotspots — a cheap routing design-space
    axis to explore against ``xy``.
    """
    cx, cy = current
    dx, dy = dest
    if dy > cy:
        return SOUTH
    if dy < cy:
        return NORTH
    if dx > cx:
        return EAST
    if dx < cx:
        return WEST
    return LOCAL


_ROUTERS_BY_NAME = {"xy": xy_route, "yx": yx_route}


class Router:
    """Input-buffered wormhole router at one mesh coordinate."""

    def __init__(self, sim: Simulator, noc: "XpipesNoc",
                 coords: Tuple[int, int], fifo_depth: int):
        self.sim = sim
        self.noc = noc
        self.coords = coords
        self.inputs: Dict[str, Fifo] = {}
        self._output_busy: Dict[str, bool] = {}
        self._output_free: Dict[str, object] = {}
        self._procs: Dict[str, object] = {}
        self.flits_routed = 0
        name = f"router{coords}"
        for port in (LOCAL, NORTH, SOUTH, EAST, WEST):
            self.inputs[port] = sim.fifo(fifo_depth, f"{name}.in[{port}]")
            self._output_busy[port] = False
            self._output_free[port] = sim.signal(f"{name}.out[{port}].free")

    def start(self) -> None:
        for port in self.inputs:
            self._procs[port] = self.sim.spawn(
                self._input_process(port),
                name=f"router{self.coords}.fw[{port}]")

    def _acquire_output(self, port: str):
        while self._output_busy[port]:
            yield self._output_free[port]
        self._output_busy[port] = True

    def _release_output(self, port: str) -> None:
        self._output_busy[port] = False
        self._output_free[port].notify()

    def _input_process(self, in_port: str):
        """Forward packets arriving on one input, one at a time (wormhole)."""
        fifo = self.inputs[in_port]
        while True:
            head = yield from fifo.get()
            if not head.is_head:
                raise OCPError(f"router {self.coords}: expected head flit, "
                               f"got {head!r}")
            out_port = self.noc.route(self.coords, head.packet.dest)
            yield from self._acquire_output(out_port)
            injector = self.noc.fault_injector
            if injector is not None:
                # per-hop link fault: jitter/stall charged once per packet
                # traversal of this router (wormhole: the whole packet is
                # held up with its head)
                stall = injector.hop_delay(self.noc.name)
                if stall:
                    yield stall
            flit = head
            while True:
                yield 1  # switch + link traversal, one cycle per flit
                yield from self.noc._deliver(self.coords, out_port, flit)
                self.flits_routed += 1
                if flit.is_tail:
                    break
                flit = yield from fifo.get()
            self._release_output(out_port)


class NetworkInterface:
    """Packetisation endpoint attached to one router's LOCAL port."""

    def __init__(self, sim: Simulator, noc: "XpipesNoc",
                 coords: Tuple[int, int], name: str):
        self.sim = sim
        self.noc = noc
        self.coords = coords
        self.name = name
        self.receive_fifo = sim.fifo(noc.fifo_depth, f"{name}.rx")
        self._tx_busy = False
        self._tx_free = sim.signal(f"{name}.tx_free")
        self._rx_proc = None  # set by the subclass after spawning

    def _inject(self, packet: Packet):
        """Stream a packet's flits into the local router, 1 flit/cycle.

        Injection holds a per-NI lock so concurrent senders (e.g. two read
        responses in flight at a slave NI) never interleave their flits.
        """
        while self._tx_busy:
            yield self._tx_free
        self._tx_busy = True
        try:
            router = self.noc._routers[self.coords]
            for index in range(packet.flit_count):
                yield 1
                yield from router.inputs[LOCAL].put(Flit(packet, index))
        finally:
            self._tx_busy = False
            self._tx_free.notify()

    def _receive_packet(self):
        """Collect one whole packet from the local router (generator)."""
        head = yield from self.receive_fifo.get()
        flit = head
        while not flit.is_tail:
            flit = yield from self.receive_fifo.get()
        return head.packet


class MasterNI(NetworkInterface):
    """Master-side NI: sends request packets, matches response packets."""

    def __init__(self, sim, noc, coords, name, master_id: int):
        super().__init__(sim, noc, coords, name)
        self.master_id = master_id
        self._pending: Dict[int, object] = {}  # packet uid -> signal
        self._rx_proc = sim.spawn(self._rx_process(),
                                  name=f"{name}.rx_proc")

    def send_request(self, request: Request):
        """Transport one OCP transaction over the mesh (generator)."""
        dest_range = self.noc.address_map.decode(request)
        dest = self.noc._slave_coords[id(dest_range.slave_port)]
        flits = self.noc.request_flit_count(request)
        packet = Packet(request.uid, self.coords, dest, flits, request)
        yield from self._inject(packet)
        # Command (and write data) fully handed to the network: OCP accept.
        self.noc._accept(request)
        if request.cmd.is_write:
            return None
        signal = self.sim.signal(f"{self.name}.resp#{request.uid}")
        self._pending[request.uid] = signal
        response = yield signal
        return response

    def _rx_process(self):
        while True:
            packet = yield from self._receive_packet()
            signal = self._pending.pop(packet.uid, None)
            if signal is None:
                raise OCPError(f"{self.name}: unexpected {packet!r}")
            signal.notify(packet.response)


class SlaveNI(NetworkInterface):
    """Slave-side NI: executes arriving requests, returns read responses.

    The NI has a bounded number of packet reassembly buffers
    (``max_pending``): when all are busy waiting on a slow slave, the NI
    stops draining its receive FIFO, which fills and back-pressures the
    network hop by hop — so a slow slave is felt at the injecting master.
    """

    MAX_PENDING = 2

    def __init__(self, sim, noc, coords, name, slave_port):
        super().__init__(sim, noc, coords, name)
        self.slave_port = slave_port
        self._pending = 0
        self._buffer_free = sim.signal(f"{name}.buffer_free")
        self._rx_proc = sim.spawn(self._rx_process(),
                                  name=f"{name}.rx_proc")

    def _rx_process(self):
        while True:
            while self._pending >= self.MAX_PENDING:
                yield self._buffer_free
            packet = yield from self._receive_packet()
            self._pending += 1
            self.sim.spawn(self._serve(packet),
                           name=f"{self.name}.serve#{packet.uid}")

    def _serve(self, packet: Packet):
        try:
            response = yield from self.slave_port.access(packet.request)
        finally:
            self._pending -= 1
            self._buffer_free.notify()
        if packet.request.cmd.is_read:
            flits = self.noc.response_flit_count(packet.request)
            reply = Packet(packet.uid, self.coords, packet.src, flits,
                           packet.request, response, is_request=False)
            yield from self._inject(reply)


class XpipesNoc(Fabric):
    """2D-mesh wormhole NoC fabric.

    Endpoints are placed on mesh nodes automatically (row-major) as masters
    and slaves are attached; pass ``mesh`` to force dimensions.

    Args:
        fifo_depth: Router input buffer depth in flits.
    """

    def __init__(self, sim: Simulator, name: str = "xpipes",
                 address_map: Optional[AddressMap] = None,
                 mesh: Optional[Tuple[int, int]] = None,
                 fifo_depth: int = 4,
                 placement: Optional[Dict] = None,
                 routing: str = "xy"):
        super().__init__(sim, name, address_map)
        self.fifo_depth = fifo_depth
        self._forced_mesh = mesh
        try:
            self.route = _ROUTERS_BY_NAME[routing]
        except KeyError:
            raise OCPError(f"unknown routing {routing!r}; choose from "
                           f"{sorted(_ROUTERS_BY_NAME)}") from None
        self.routing = routing
        #: explicit endpoint placement: int keys are master ids, str keys
        #: are slave names (with or without the ``.port`` suffix); values
        #: are mesh coordinates.  Unplaced endpoints fill the remaining
        #: nodes in row-major order.  Placement is a first-class NoC
        #: design-space axis (hop counts decide latency under XY routing).
        self._placement = dict(placement or {})
        self.width = 0
        self.height = 0
        self._routers: Dict[Tuple[int, int], Router] = {}
        self._master_nis: Dict[int, MasterNI] = {}
        self._slave_coords: Dict[int, Tuple[int, int]] = {}
        self._slave_nis: List[SlaveNI] = []
        self._placement_index = 0
        self._built = False

    # ------------------------------------------------------------ building

    def attach_master(self, master_id: int) -> None:
        """Reserve a mesh node for master ``master_id`` (call before build)."""
        if self._built:
            raise OCPError("cannot attach after the mesh is built")
        self._master_nis[master_id] = None  # placed in build()
        # placement order preserved via insertion order

    def build(self) -> None:
        """Size the mesh, place endpoints, create routers and NIs."""
        if self._built:
            raise OCPError("mesh already built")
        slave_ports = self.address_map.slave_ports()
        endpoint_count = len(self._master_nis) + len(slave_ports)
        if endpoint_count == 0:
            raise OCPError("no endpoints to place")
        if self._forced_mesh:
            self.width, self.height = self._forced_mesh
        else:
            self.width = max(2, math.ceil(math.sqrt(endpoint_count)))
            self.height = max(2, math.ceil(endpoint_count / self.width))
        if self.width * self.height < endpoint_count:
            raise OCPError(
                f"mesh {self.width}x{self.height} too small for "
                f"{endpoint_count} endpoints")
        for y in range(self.height):
            for x in range(self.width):
                self._routers[(x, y)] = Router(self.sim, self, (x, y),
                                               self.fifo_depth)
        taken = self._resolve_placement(slave_ports)
        free_iter = ((x, y) for y in range(self.height)
                     for x in range(self.width)
                     if (x, y) not in set(taken.values()))
        for master_id in list(self._master_nis):
            coords = taken.get(("m", master_id))
            if coords is None:
                coords = next(free_iter)
            self._master_nis[master_id] = MasterNI(
                self.sim, self, coords, f"{self.name}.mni{master_id}",
                master_id)
        for slave_port in slave_ports:
            coords = taken.get(("s", id(slave_port)))
            if coords is None:
                coords = next(free_iter)
            ni = SlaveNI(self.sim, self, coords,
                         f"{self.name}.sni[{slave_port.name}]", slave_port)
            self._slave_coords[id(slave_port)] = coords
            self._slave_nis.append(ni)
        for router in self._routers.values():
            router.start()
        self._built = True

    def _resolve_placement(self, slave_ports) -> Dict:
        """Normalise user placement into ``{("m", id)|("s", port-id): xy}``."""
        resolved: Dict = {}
        used: Dict[Tuple[int, int], object] = {}
        for key, coords in self._placement.items():
            coords = tuple(coords)
            x, y = coords
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise OCPError(f"placement {key!r} -> {coords} is outside "
                               f"the {self.width}x{self.height} mesh")
            if coords in used:
                raise OCPError(f"placement collision at {coords}: "
                               f"{key!r} and {used[coords]!r}")
            used[coords] = key
            if isinstance(key, int):
                if key not in self._master_nis:
                    raise OCPError(f"placement names unknown master {key}")
                resolved[("m", key)] = coords
                continue
            for slave_port in slave_ports:
                name = slave_port.name
                if key in (name, name[:-5] if name.endswith(".port")
                           else name):
                    resolved[("s", id(slave_port))] = coords
                    break
            else:
                raise OCPError(f"placement names unknown slave {key!r}")
        return resolved

    # ------------------------------------------------------------- helpers

    def request_flit_count(self, request: Request) -> int:
        """Header + address flit + one flit per write data beat."""
        data_beats = request.burst_len if request.cmd.is_write else 0
        return 2 + data_beats

    def response_flit_count(self, request: Request) -> int:
        """Header + one flit per read data beat."""
        return 1 + request.burst_len

    def node_of_master(self, master_id: int) -> Tuple[int, int]:
        return self._master_nis[master_id].coords

    def node_of_slave(self, slave_port) -> Tuple[int, int]:
        return self._slave_coords[id(slave_port)]

    @property
    def total_flits_routed(self) -> int:
        return sum(r.flits_routed for r in self._routers.values())

    def _deliver(self, coords: Tuple[int, int], out_port: str, flit: Flit):
        """Hand a flit to the downstream FIFO of ``out_port`` (generator)."""
        if out_port == LOCAL:
            packet = flit.packet
            if packet.is_request:
                target = self._slave_nis_by_coords(coords)
            else:
                target = self._master_ni_by_coords(coords)
            yield from target.receive_fifo.put(flit)
            return
        x, y = coords
        step = {EAST: (1, 0), WEST: (-1, 0), SOUTH: (0, 1), NORTH: (0, -1)}
        dx, dy = step[out_port]
        neighbour = self._routers.get((x + dx, y + dy))
        if neighbour is None:
            raise OCPError(f"flit routed off-mesh at {coords} via {out_port}")
        yield from neighbour.inputs[_OPPOSITE[out_port]].put(flit)

    def _slave_nis_by_coords(self, coords):
        for ni in self._slave_nis:
            if ni.coords == coords:
                return ni
        raise OCPError(f"no slave NI at {coords}")

    def _master_ni_by_coords(self, coords):
        for ni in self._master_nis.values():
            if ni is not None and ni.coords == coords:
                return ni
        raise OCPError(f"no master NI at {coords}")

    # ----------------------------------------------------------- checkpoint

    def _all_nis(self):
        for master_id in sorted(self._master_nis):
            ni = self._master_nis[master_id]
            if ni is not None:
                yield ni
        for ni in self._slave_nis:
            yield ni

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["built"] = self._built
        state["flits_routed"] = {
            f"{x},{y}": router.flits_routed
            for (x, y), router in sorted(self._routers.items())}
        return state

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        if state_get(state, "built", self.name) and not self._built:
            # re-create the mesh (routers, NIs and their permanent
            # processes); the settle pass parks everything at t=0
            self.build()
        flits = state_get(state, "flits_routed", self.name)
        if not isinstance(flits, dict):
            raise SnapshotError(
                f"snapshot for {self.name}: 'flits_routed' must be an "
                f"object")
        for key, count in flits.items():
            try:
                x, y = (int(part) for part in key.split(","))
            except ValueError:
                raise SnapshotError(
                    f"snapshot for {self.name}: bad router coordinate "
                    f"{key!r}") from None
            router = self._routers.get((x, y))
            if router is None:
                raise SnapshotError(
                    f"snapshot for {self.name} references unknown router "
                    f"({x}, {y})",
                    hint="the snapshot was taken on a different mesh")
            router.flits_routed = count

    def _rederive_quiescent(self) -> None:
        """Construct the mesh: routers, NIs and their permanent
        processes do not exist on a freshly-built platform (``build()``
        normally runs at ``start()``, which a restore never calls).
        The restore settle pass then parks every router/NI process on
        its empty FIFO.  Per-router flit counters restart at zero from
        the restore point — hop accounting is fabric-internal, not
        portable workload state."""
        if not self._built:
            self.build()

    def checkpoint_blockers(self):
        if not self._built:
            return []
        blockers = []
        for coords, router in sorted(self._routers.items()):
            for port, fifo in router.inputs.items():
                if len(fifo):
                    blockers.append(f"router{coords} input {port} holds "
                                    f"{len(fifo)} flit(s)")
            for port, busy in sorted(router._output_busy.items()):
                if busy:
                    blockers.append(f"router{coords} output {port} "
                                    f"mid-packet")
            for port, proc in router._procs.items():
                if proc.alive and \
                        proc.waiting_on is not router.inputs[port].not_empty:
                    blockers.append(f"router{coords} input {port} "
                                    f"forwarding in progress")
        for ni in self._all_nis():
            if len(ni.receive_fifo):
                blockers.append(f"{ni.name}: {len(ni.receive_fifo)} "
                                f"flit(s) awaiting reassembly")
            if ni._tx_busy:
                blockers.append(f"{ni.name}: injection in progress")
            if ni._pending:
                what = (f"{len(ni._pending)} response(s) awaited"
                        if isinstance(ni._pending, dict)
                        else f"{ni._pending} request(s) in service")
                blockers.append(f"{ni.name}: {what}")
            rx = ni._rx_proc
            if rx is not None and rx.alive and \
                    rx.waiting_on is not ni.receive_fifo.not_empty:
                blockers.append(f"{ni.name}: packet reassembly in "
                                f"progress")
        return blockers

    def owned_idle_processes(self):
        for _, router in sorted(self._routers.items()):
            for proc in router._procs.values():
                if proc.alive:
                    yield proc
        for ni in self._all_nis():
            if ni._rx_proc is not None and ni._rx_proc.alive:
                yield ni._rx_proc

    # ------------------------------------------------------------ transport

    def transport(self, master_id: int, request: Request):
        if not self._built:
            self.build()
        self.stats.record(master_id, request)
        ni = self._master_nis.get(master_id)
        if ni is None:
            raise OCPError(f"master {master_id} not attached to {self.name!r}")
        response = yield from ni.send_request(request)
        return response

    def _accept(self, request: Request) -> None:
        Fabric._accept(request)
