"""STBus-style partial crossbar with per-slave arbitration.

Unlike the AHB shared bus, transactions to *different* slaves proceed
concurrently; contention only arises between masters targeting the same
slave, which is resolved by a per-slave arbiter.  This models the
characteristic that made STBus attractive over a single AHB layer and gives
design-space exploration a meaningfully different latency/parallelism point.
"""

from typing import Dict, Optional

from repro.kernel import Simulator
from repro.interconnect.address_map import AddressMap
from repro.interconnect.arbiter import Arbiter, make_arbiter
from repro.interconnect.base import Fabric
from repro.ocp.types import Request


class STBusFabric(Fabric):
    """Partial-crossbar fabric with per-slave channels.

    Args:
        arbiter_policy: Arbitration at each slave channel.
        request_latency: Master → slave-channel path delay.
        response_latency: Slave → master return path delay.
    """

    def __init__(self, sim: Simulator, name: str = "stbus",
                 address_map: Optional[AddressMap] = None,
                 arbiter_policy: str = "round_robin",
                 arbitration_cycles: int = 1,
                 request_latency: int = 1,
                 response_latency: int = 1):
        super().__init__(sim, name, address_map)
        self.arbiter_policy = arbiter_policy
        self.arbitration_cycles = arbitration_cycles
        self.request_latency = request_latency
        self.response_latency = response_latency
        self._slave_arbiters: Dict[int, Arbiter] = {}

    def _arbiter_for(self, slave_port) -> Arbiter:
        key = id(slave_port)
        arbiter = self._slave_arbiters.get(key)
        if arbiter is None:
            arbiter = make_arbiter(
                self.arbiter_policy, self.sim,
                f"{self.name}.arb[{slave_port.name}]",
                self.arbitration_cycles)
            self._slave_arbiters[key] = arbiter
        return arbiter

    # ----------------------------------------------------------- checkpoint

    def _arbiters_by_port_name(self) -> Dict[str, Arbiter]:
        by_id = {id(port): port for port in self.address_map.slave_ports()}
        return {by_id[key].name: arbiter
                for key, arbiter in self._slave_arbiters.items()
                if key in by_id}

    def state_dict(self) -> dict:
        state = super().state_dict()
        # lazily-created per-slave channels, keyed by slave-port name (the
        # only stable cross-build identity)
        state["slave_arbiters"] = {
            name: arbiter.state_dict()
            for name, arbiter
            in sorted(self._arbiters_by_port_name().items())}
        return state

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        arbiters = state_get(state, "slave_arbiters", self.name)
        if not isinstance(arbiters, dict):
            raise SnapshotError(
                f"snapshot for {self.name}: 'slave_arbiters' must be an "
                f"object")
        ports = {port.name: port
                 for port in self.address_map.slave_ports()}
        self._slave_arbiters = {}
        for port_name, arbiter_state in arbiters.items():
            port = ports.get(port_name)
            if port is None:
                raise SnapshotError(
                    f"snapshot for {self.name} references unknown slave "
                    f"channel {port_name!r}",
                    hint="the snapshot was taken on a differently-"
                         "configured platform")
            self._arbiter_for(port).load_state(arbiter_state)

    def checkpoint_blockers(self):
        blockers = []
        for name, arbiter in sorted(self._arbiters_by_port_name().items()):
            blockers.extend(f"channel {name}: {reason}"
                            for reason in arbiter.checkpoint_blockers())
        return blockers

    def _rederive_quiescent(self) -> None:
        """Nothing to rebuild: per-slave channel arbiters are created
        lazily on first access, and at a quiescent cycle every channel
        is idle (no grant held), so the lazily-recreated arbiters start
        in exactly the state a quiescent capture would have given them
        — modulo the channel-utilisation accounting, which restarts at
        the restore point."""

    # ------------------------------------------------------------ transport

    def transport(self, master_id: int, request: Request):
        self.stats.record(master_id, request)
        range_ = self.address_map.decode(request)
        arbiter = self._arbiter_for(range_.slave_port)
        stall = self._hop_delay()
        if stall:
            yield stall
        if self.request_latency:
            yield self.request_latency
        yield from arbiter.acquire(master_id)
        self._accept(request)
        if request.cmd.is_write:
            self.sim.spawn(
                self._complete_write(master_id, request, range_, arbiter),
                name=f"{self.name}.wr#{request.uid}")
            return None
        response = yield from range_.slave_port.access(request)
        arbiter.release(master_id)
        stall = self._hop_delay()
        if stall:
            yield stall
        if self.response_latency:
            yield self.response_latency
        return response

    def _complete_write(self, master_id, request, range_, arbiter):
        yield from range_.slave_port.access(request)
        arbiter.release(master_id)
