"""TG program container and the symbolic ``.tgp`` format.

The ``.tgp`` text mirrors paper Figure 3(b)::

    ; Master Core
    MASTER[0,0]
    MODE reactive
    REGISTER rdreg 0 ; holds value of RD
    REGISTER tempreg 0
    REGISTER addr 0
    REGISTER data 0
    BEGIN
        Idle(11)
        SetRegister(addr, 0x00000104)
        Read(addr)
    Semchk_1:
        Read(addr)
        Idle(3)
        If(rdreg != tempreg) Semchk_1
        Halt
    END

Branch targets are labels in the text and instruction indices in the
in-memory form.  Burst-write data is carried in a data pool declared with
``POOL`` lines before ``BEGIN``.
"""

import re
from typing import Dict, List, Optional

from repro.core.isa import (
    Cond,
    TGError,
    TGInstruction,
    TGOp,
    reg_index,
    reg_name,
)
from repro.core.modes import ReplayMode


class TGProgram:
    """An executable TG program.

    Attributes:
        core_id / thread_id: Identify the master socket this program
            emulates (the ``MASTER[<coreID>,<thrdID>]`` header).
        instructions: The code; branch targets are instruction indices.
        pool: Data words referenced by ``BurstWrite``.
        mode: The :class:`ReplayMode` the translator produced this for.
        labels: Optional pretty names for branch targets (index -> name),
            preserved when emitting ``.tgp`` text.
    """

    def __init__(self, core_id: int = 0, thread_id: int = 0,
                 instructions: Optional[List[TGInstruction]] = None,
                 pool: Optional[List[int]] = None,
                 mode: ReplayMode = ReplayMode.REACTIVE,
                 labels: Optional[Dict[int, str]] = None):
        self.core_id = core_id
        self.thread_id = thread_id
        self.instructions = instructions if instructions is not None else []
        self.pool = pool if pool is not None else []
        self.mode = mode
        self.labels = labels if labels is not None else {}

    # ----------------------------------------------------------- building

    def append(self, instr: TGInstruction) -> int:
        """Add an instruction; returns its index."""
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def label_next(self, name: str) -> int:
        """Name the *next* appended instruction's index."""
        index = len(self.instructions)
        self.labels[index] = name
        return index

    def add_pool(self, words: List[int]) -> int:
        """Append words to the data pool; returns the starting offset."""
        offset = len(self.pool)
        self.pool.extend(words)
        return offset

    def validate(self) -> None:
        """Check every instruction; raises :class:`TGError` on problems."""
        if not self.instructions:
            raise TGError("empty TG program")
        if self.instructions[-1].op not in (TGOp.HALT, TGOp.JUMP):
            raise TGError("program must end with Halt (or a Jump loop)")
        for instr in self.instructions:
            instr.validate(len(self.instructions), len(self.pool))

    # ------------------------------------------------------------ equality

    def __eq__(self, other) -> bool:
        if not isinstance(other, TGProgram):
            return NotImplemented
        return (self.core_id == other.core_id
                and self.thread_id == other.thread_id
                and self.mode == other.mode
                and self.instructions == other.instructions
                and self.pool == other.pool)

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (f"<TGProgram core={self.core_id} {len(self.instructions)} "
                f"instrs, pool={len(self.pool)} words, {self.mode.value}>")

    def stats(self) -> Dict[str, object]:
        """Footprint summary — the "small silicon footprint" the paper
        wants from a hardware TG.

        Returns the instruction histogram, pool size and the instruction-
        memory image size in words/bytes (header + 2 words per
        instruction + pool).
        """
        histogram: Dict[str, int] = {}
        for instr in self.instructions:
            histogram[instr.op.name] = histogram.get(instr.op.name, 0) + 1
        image_words = 5 + 2 * len(self.instructions) + len(self.pool)
        return {
            "instructions": len(self.instructions),
            "histogram": dict(sorted(histogram.items())),
            "pool_words": len(self.pool),
            "image_words": image_words,
            "image_bytes": image_words * 4,
            "labels": len(self.labels),
            "mode": self.mode.value,
        }

    # ---------------------------------------------------------------- text

    def to_tgp(self) -> str:
        """Emit the symbolic ``.tgp`` text."""
        label_for: Dict[int, str] = dict(self.labels)
        for instr in self.instructions:
            if instr.op in (TGOp.IF, TGOp.JUMP) and instr.imm not in label_for:
                label_for[instr.imm] = f"L{instr.imm}"
        lines = [
            "; Master Core",
            f"MASTER[{self.core_id},{self.thread_id}]",
            f"MODE {self.mode.value}",
            "REGISTER rdreg 0 ; holds value of RD",
            "REGISTER tempreg 0",
            "REGISTER addr 0",
            "REGISTER data 0",
        ]
        for start in range(0, len(self.pool), 8):
            chunk = self.pool[start:start + 8]
            lines.append("POOL " + " ".join(f"0x{w:08x}" for w in chunk))
        lines.append("BEGIN")
        for index, instr in enumerate(self.instructions):
            if index in label_for:
                lines.append(f"{label_for[index]}:")
            lines.append(f"    {self._format(instr, label_for)}")
        lines.append("END")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _format(instr: TGInstruction, label_for: Dict[int, str]) -> str:
        op = instr.op
        if op == TGOp.READ_NB:
            return f"ReadNB({reg_name(instr.a)})"
        if op == TGOp.FENCE:
            return "Fence"
        if op == TGOp.READ:
            return f"Read({reg_name(instr.a)})"
        if op == TGOp.WRITE:
            return f"Write({reg_name(instr.a)}, {reg_name(instr.b)})"
        if op == TGOp.BURST_READ:
            return f"BurstRead({reg_name(instr.a)}, {instr.b})"
        if op == TGOp.BURST_WRITE:
            return (f"BurstWrite({reg_name(instr.a)}, {instr.b}, "
                    f"pool+{instr.imm})")
        if op == TGOp.SET_REGISTER:
            return f"SetRegister({reg_name(instr.a)}, 0x{instr.imm:08x})"
        if op == TGOp.IDLE:
            return f"Idle({instr.imm})"
        if op == TGOp.IF:
            return (f"If({reg_name(instr.a)} {Cond(instr.cond).symbol} "
                    f"{reg_name(instr.b)}) {label_for[instr.imm]}")
        if op == TGOp.JUMP:
            return f"Jump({label_for[instr.imm]})"
        return "Halt"


_INSTR_RES = {
    "read_nb": re.compile(r"^ReadNB\((\w+)\)$"),
    "fence": re.compile(r"^Fence$"),
    "read": re.compile(r"^Read\((\w+)\)$"),
    "write": re.compile(r"^Write\((\w+),\s*(\w+)\)$"),
    "burst_read": re.compile(r"^BurstRead\((\w+),\s*(\d+)\)$"),
    "burst_write": re.compile(r"^BurstWrite\((\w+),\s*(\d+),\s*pool\+(\d+)\)$"),
    "set_register": re.compile(r"^SetRegister\((\w+),\s*(0x[0-9a-fA-F]+|\d+)\)$"),
    "idle": re.compile(r"^Idle\((\d+)\)$"),
    "if": re.compile(r"^If\((\w+)\s*(==|!=|<=|>=|<|>)\s*(\w+)\)\s+(\S+)$"),
    "jump": re.compile(r"^Jump\((\S+)\)$"),
    "halt": re.compile(r"^Halt$"),
}
_MASTER_RE = re.compile(r"^MASTER\[(\d+),(\d+)\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")


def parse_tgp(text: str) -> TGProgram:
    """Parse ``.tgp`` text back into a :class:`TGProgram`."""
    program = TGProgram()
    in_body = False
    pending_labels: List[str] = []
    label_indices: Dict[str, int] = {}
    fixups: List[tuple] = []  # (instruction index, label)

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].strip()
        if not line:
            continue
        if not in_body:
            match = _MASTER_RE.match(line)
            if match:
                program.core_id = int(match.group(1))
                program.thread_id = int(match.group(2))
                continue
            if line.startswith("MODE"):
                tokens = line.split()
                if len(tokens) != 2:
                    raise TGError(f"line {line_no}: MODE needs one value")
                try:
                    program.mode = ReplayMode.from_name(tokens[1])
                except ValueError as error:
                    raise TGError(f"line {line_no}: {error}") from None
                continue
            if line.startswith("REGISTER"):
                continue  # declarative only; registers always reset to 0
            if line.startswith("POOL"):
                try:
                    program.pool.extend(int(tok, 0)
                                        for tok in line.split()[1:])
                except ValueError:
                    raise TGError(
                        f"line {line_no}: bad POOL word in {line!r}"
                    ) from None
                continue
            if line == "BEGIN":
                in_body = True
                continue
            raise TGError(f"line {line_no}: unexpected header line {line!r}")
        if line == "END":
            break
        match = _LABEL_RE.match(line)
        if match:
            pending_labels.append(match.group(1))
            continue
        instr = _parse_instruction(line, line_no, fixups,
                                   len(program.instructions))
        for label in pending_labels:
            if label in label_indices:
                raise TGError(f"line {line_no}: duplicate label {label!r}")
            label_indices[label] = len(program.instructions)
            program.labels[len(program.instructions)] = label
        pending_labels = []
        program.append(instr)

    for index, label in fixups:
        if label not in label_indices:
            raise TGError(f"undefined label {label!r}")
        old = program.instructions[index]
        program.instructions[index] = old._replace(imm=label_indices[label])
    program.validate()
    return program


def _parse_instruction(line: str, line_no: int, fixups: List[tuple],
                       index: int) -> TGInstruction:
    match = _INSTR_RES["read_nb"].match(line)
    if match:
        return TGInstruction(TGOp.READ_NB, a=reg_index(match.group(1)))
    match = _INSTR_RES["fence"].match(line)
    if match:
        return TGInstruction(TGOp.FENCE)
    match = _INSTR_RES["read"].match(line)
    if match:
        return TGInstruction(TGOp.READ, a=reg_index(match.group(1)))
    match = _INSTR_RES["write"].match(line)
    if match:
        return TGInstruction(TGOp.WRITE, a=reg_index(match.group(1)),
                             b=reg_index(match.group(2)))
    match = _INSTR_RES["burst_read"].match(line)
    if match:
        return TGInstruction(TGOp.BURST_READ, a=reg_index(match.group(1)),
                             b=int(match.group(2)))
    match = _INSTR_RES["burst_write"].match(line)
    if match:
        return TGInstruction(TGOp.BURST_WRITE, a=reg_index(match.group(1)),
                             b=int(match.group(2)), imm=int(match.group(3)))
    match = _INSTR_RES["set_register"].match(line)
    if match:
        return TGInstruction(TGOp.SET_REGISTER, a=reg_index(match.group(1)),
                             imm=int(match.group(2), 0))
    match = _INSTR_RES["idle"].match(line)
    if match:
        return TGInstruction(TGOp.IDLE, imm=int(match.group(1)))
    match = _INSTR_RES["if"].match(line)
    if match:
        fixups.append((index, match.group(4)))
        return TGInstruction(TGOp.IF, a=reg_index(match.group(1)),
                             b=reg_index(match.group(3)),
                             cond=int(Cond.from_symbol(match.group(2))))
    match = _INSTR_RES["jump"].match(line)
    if match:
        fixups.append((index, match.group(1)))
        return TGInstruction(TGOp.JUMP)
    match = _INSTR_RES["halt"].match(line)
    if match:
        return TGInstruction(TGOp.HALT)
    raise TGError(f"line {line_no}: cannot parse instruction {line!r}")
