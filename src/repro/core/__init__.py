"""The Traffic Generator (TG) — the paper's contribution.

A TG is a very simple instruction-set processor (paper Section 4, Table 1)
that emulates an IP core's communication at its OCP interface.  Its program
is derived from a trace collected in a reference simulation
(:mod:`repro.trace`), and because the program contains *conditional* polling
loops rather than a flat replay, the TG reacts correctly to interconnects
with different timing — the "reactive" capability Section 3 argues for.

Contents:

* :mod:`repro.core.isa` — TG instruction set and 2-word binary encoding;
* :mod:`repro.core.program` — the program container, ``.tgp`` symbolic text
  emit/parse;
* :mod:`repro.core.assembler` — ``.tgp`` program ↔ ``.bin`` image;
* :mod:`repro.core.tg_master` — the OCP-master TG model (the entity needed
  in a simulation environment);
* :mod:`repro.core.tg_slaves` — the two slave TG entities (shared-memory TG
  and dummy-response TG) for all-TG test-chip configurations;
* :mod:`repro.core.modes` — replay-fidelity modes (cloning / timeshifting /
  reactive) implementing Section 3's taxonomy for the ablation study.
"""

from repro.core.isa import (
    Cond,
    TGError,
    TGInstruction,
    TGOp,
    RDREG,
    TEMPREG,
    ADDRREG,
    DATAREG,
    TG_NUM_REGS,
    reg_name,
)
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram, parse_tgp
from repro.core.assembler import assemble_binary, disassemble_binary
from repro.core.tg_master import TGMaster
from repro.core.hw_model import TGHardwareModel
from repro.core.multitask import MultitaskTGMaster
from repro.core.stochastic import (
    SeededRandom,
    StochasticTGMaster,
    TrafficProfile,
)
from repro.core.tg_slaves import TGDummySlave, TGSharedMemorySlave

__all__ = [
    "ADDRREG",
    "Cond",
    "DATAREG",
    "MultitaskTGMaster",
    "RDREG",
    "ReplayMode",
    "SeededRandom",
    "StochasticTGMaster",
    "TrafficProfile",
    "TEMPREG",
    "TGDummySlave",
    "TGError",
    "TGHardwareModel",
    "TGInstruction",
    "TGMaster",
    "TGOp",
    "TGProgram",
    "TGSharedMemorySlave",
    "TG_NUM_REGS",
    "assemble_binary",
    "disassemble_binary",
    "parse_tgp",
    "reg_name",
]
