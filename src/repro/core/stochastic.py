"""Stochastic traffic generators — the related-work baseline (Section 2).

The paper contrasts its trace-derived reactive TGs with the stochastic
models of Lahiri et al. [6]: "Traffic behavior is statistically
represented by means of uniform, Gaussian, or Poisson distributions.
Such distributions assume a degree of correlation within the
communication transactions which is unlikely in a SoC environment …
since the characteristics (functionality and timing) of the IP core are
not captured, such models are unreliable for optimizing NoC features."

This module makes that claim testable: :class:`StochasticTGMaster`
generates traffic from a distribution *fitted to a reference trace*
(matching its transaction mix, mean injection rate and address ranges),
which is the strongest form of the stochastic approach.  The E16
ablation then measures how badly even a well-fitted stochastic model
predicts execution time compared with a reactive TG.

All randomness is seeded and self-contained (a linear congruential
generator), keeping simulations reproducible.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernel import Component, Simulator
from repro.ocp import OCPMasterPort
from repro.ocp.types import OCPCommand
from repro.trace.events import Transaction

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class SeededRandom:
    """Tiny deterministic PRNG (so models never touch global state)."""

    def __init__(self, seed: int):
        self._state = (seed * 2 + 1) & _LCG_MASK

    def getstate(self) -> int:
        """The full generator state (one 64-bit integer)."""
        return self._state

    def setstate(self, state: int) -> None:
        self._state = int(state) & _LCG_MASK

    def _next(self) -> int:
        self._state = (self._state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return self._state >> 16

    def uniform(self) -> float:
        """Uniform in [0, 1)."""
        return (self._next() & 0xFFFF_FFFF) / 0x1_0000_0000

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return lo + int(self.uniform() * (hi - lo + 1))

    def choice(self, weighted: Sequence[Tuple[object, float]]):
        """Pick by weight from ``[(item, weight), ...]``."""
        total = sum(weight for _, weight in weighted)
        mark = self.uniform() * total
        for item, weight in weighted:
            mark -= weight
            if mark <= 0:
                return item
        return weighted[-1][0]

    def geometric_gap(self, mean: float) -> int:
        """Integer gap with the given mean (geometric ≈ Poisson process)."""
        if mean <= 0:
            return 0
        import math
        u = max(self.uniform(), 1e-12)
        return max(0, int(-mean * math.log(u)))


class TrafficProfile:
    """A distribution fitted to a reference trace.

    Captures what a stochastic model *can* capture: the transaction mix,
    the mean local gap between transactions, the set of touched address
    ranges per command, and the total transaction count.  What it cannot
    capture — ordering, data dependence, reactiveness — is the paper's
    point.
    """

    def __init__(self, mix: Dict[OCPCommand, float], mean_gap: float,
                 address_pools: Dict[OCPCommand, List[int]],
                 burst_len: int, transactions: int):
        self.mix = mix
        self.mean_gap = mean_gap
        self.address_pools = address_pools
        self.burst_len = burst_len
        self.transactions = transactions

    @staticmethod
    def fit(transactions: List[Transaction],
            cycle_ns: int = 5) -> "TrafficProfile":
        """Fit a profile to a reference transaction stream."""
        if not transactions:
            raise ValueError("cannot fit a profile to an empty trace")
        counts: Dict[OCPCommand, int] = {}
        pools: Dict[OCPCommand, List[int]] = {}
        gaps: List[int] = []
        burst_lens: List[int] = []
        previous = None
        for txn in transactions:
            counts[txn.cmd] = counts.get(txn.cmd, 0) + 1
            pools.setdefault(txn.cmd, []).append(txn.addr)
            if txn.cmd.is_burst:
                burst_lens.append(txn.burst_len)
            if previous is not None:
                gaps.append(max(0, (txn.req_ns - previous.unblock_ns)
                                // cycle_ns))
            previous = txn
        total = len(transactions)
        mix = {cmd: count / total for cmd, count in counts.items()}
        mean_gap = sum(gaps) / len(gaps) if gaps else 1.0
        burst_len = (round(sum(burst_lens) / len(burst_lens))
                     if burst_lens else 4)
        return TrafficProfile(mix, mean_gap, pools, max(2, burst_len),
                              total)


class StochasticTGMaster(Component):
    """Generates traffic from a :class:`TrafficProfile` (seeded).

    Issues the profile's number of transactions with geometric inter-
    transaction gaps around the fitted mean, commands drawn from the mix
    and addresses drawn uniformly from the per-command pools.  Exposes the
    standard master surface.
    """

    def __init__(self, sim: Simulator, name: str, profile: TrafficProfile,
                 seed: int = 1):
        super().__init__(sim, name)
        self.profile = profile
        self.port = OCPMasterPort(sim, f"{name}.ocp")
        self.rng = SeededRandom(seed)
        self.halted = False
        self.halt_time: Optional[int] = None
        self.transactions_generated = 0
        self._process = None
        self._in_txn = False

    def start(self) -> None:
        self._process = self.sim.spawn(self._run(), name=f"{self.name}.gen")

    @property
    def finished(self) -> bool:
        return self.halted

    @property
    def completion_time(self) -> Optional[int]:
        return self.halt_time

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Counter + PRNG state.  Captured only at an inter-transaction
        gap sleep, *after* that gap was drawn — so a restored generator
        skips its first gap draw (:meth:`rearm`) and the PRNG sequence
        continues bit-identically."""
        return {
            "profile_transactions": self.profile.transactions,
            "rng_state": self.rng.getstate(),
            "halted": self.halted,
            "halt_time": self.halt_time,
            "transactions_generated": self.transactions_generated,
            "port_transactions_issued": self.port.transactions_issued,
        }

    def load_state(self, state: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        expected = state_get(state, "profile_transactions", self.name)
        if expected != self.profile.transactions:
            raise SnapshotError(
                f"snapshot for {self.name} was taken with a different "
                f"traffic profile ({expected} transactions, this one has "
                f"{self.profile.transactions})")
        self.rng.setstate(state_get(state, "rng_state", self.name))
        self.halted = state_get(state, "halted", self.name)
        self.halt_time = state_get(state, "halt_time", self.name)
        self.transactions_generated = state_get(
            state, "transactions_generated", self.name)
        self.port.transactions_issued = state_get(
            state, "port_transactions_issued", self.name)
        self._in_txn = False

    def checkpoint_blockers(self):
        return ["transaction in flight"] if self._in_txn else []

    def claim_entry(self, entry):
        if entry.process is None or entry.process is not self._process \
                or self._in_txn:
            return None
        return {"kind": "gen", "at": entry.time}

    def rearm(self, sim, slot: dict) -> None:
        from repro.artifacts.errors import SnapshotError
        from repro.kernel.snapshot import state_get
        if state_get(slot, "kind", self.name) != "gen":
            raise SnapshotError(
                f"{self.name}: unknown pending-entry kind "
                f"{slot.get('kind')!r}")
        at = state_get(slot, "at", self.name)
        if not isinstance(at, int) or at < sim.now:
            raise SnapshotError(
                f"{self.name}: pending wake-up at cycle {at!r} is before "
                f"the snapshot cycle {sim.now}")
        self._process = sim.spawn(self._run(skip_first_gap=True),
                                  name=f"{self.name}.gen",
                                  delay=at - sim.now)

    # ------------------------------------------------------------ execution

    def _run(self, skip_first_gap: bool = False):
        profile = self.profile
        weighted = list(profile.mix.items())
        rng = self.rng
        pending_gap_skip = skip_first_gap
        while self.transactions_generated < profile.transactions:
            if pending_gap_skip:
                # restored mid-gap: the captured PRNG state already
                # consumed this gap draw, and the wake-up delay served it
                pending_gap_skip = False
            else:
                gap = rng.geometric_gap(profile.mean_gap)
                if gap:
                    yield gap
            cmd = rng.choice(weighted)
            pool = profile.address_pools[cmd]
            addr = pool[rng.randint(0, len(pool) - 1)]
            self.transactions_generated += 1
            self._in_txn = True
            try:
                if cmd == OCPCommand.READ:
                    yield from self.port.read(addr)
                elif cmd == OCPCommand.WRITE:
                    yield from self.port.write(addr, rng.randint(0, 255))
                elif cmd == OCPCommand.BURST_READ:
                    yield from self.port.burst_read(addr, profile.burst_len)
                else:
                    data = [rng.randint(0, 255)
                            for _ in range(profile.burst_len)]
                    yield from self.port.burst_write(addr, data)
            finally:
                self._in_txn = False
        self.halted = True
        self.halt_time = self.sim.now
        return self.halt_time
