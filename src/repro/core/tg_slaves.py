"""Slave TG entities (paper Section 4, entities (2) and (3)).

Only the master TG is needed inside a simulation environment — the
platform provides real slave models — but the paper defines two slave TGs
for all-TG configurations (e.g. a silicon test chip with no real memories):

* :class:`TGSharedMemorySlave` — "must contain a data structure modeling
  an actual shared memory (since the values read by the masters may affect
  the sequence of transactions)";
* :class:`TGDummySlave` — "must be able to respond, possibly with dummy
  values, to communication transactions issued by a master".

Both are "much simpler in design with respect to the master TG": the
shared-memory TG *is* a RAM slave with TG identity metadata, and the dummy
slave is a small state machine answering every read with a constant.
"""

from typing import Optional

from repro.kernel import Simulator
from repro.memory.slave import MemorySlave, SlaveTimings
from repro.ocp.types import Request


class TGSharedMemorySlave(MemorySlave):
    """Shared-memory TG: a real backing store behind an OCP slave port.

    Functionally identical to a :class:`~repro.memory.slave.MemorySlave`
    (that is the point — masters cannot tell the difference) but records
    that it is a TG entity and counts transactions like a generator would.
    """

    def __init__(self, sim: Simulator, name: str, base: int, size_bytes: int,
                 timings: Optional[SlaveTimings] = None, core_id: int = 0):
        super().__init__(sim, name, base, size_bytes, timings)
        self.core_id = core_id
        self.transactions_served = 0

    def access(self, request: Request):
        response = yield from super().access(request)
        self.transactions_served += 1
        return response

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["transactions_served"] = self.transactions_served
        return state

    def load_state(self, state: dict) -> None:
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        self.transactions_served = state_get(
            state, "transactions_served", self.name)


class TGDummySlave(MemorySlave):
    """Dummy-response slave TG: fixed-latency, constant read data.

    Writes are accepted and discarded; reads return ``dummy_value`` for
    every beat.  Useful as a placeholder for a private memory whose
    contents do not influence the traffic (e.g. when the master is itself
    a TG that never interprets read data outside polling).
    """

    def __init__(self, sim: Simulator, name: str, base: int, size_bytes: int,
                 timings: Optional[SlaveTimings] = None,
                 dummy_value: int = 0xDEAD_BEEF, core_id: int = 0):
        super().__init__(sim, name, base, size_bytes, timings)
        self.dummy_value = dummy_value
        self.core_id = core_id
        self.transactions_served = 0

    def read_location(self, offset: int) -> int:
        return self.dummy_value

    def write_location(self, offset: int, value: int) -> None:
        pass  # discarded by design

    def access(self, request: Request):
        response = yield from super().access(request)
        self.transactions_served += 1
        return response

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["transactions_served"] = self.transactions_served
        return state

    def load_state(self, state: dict) -> None:
        from repro.kernel.snapshot import state_get
        super().load_state(state)
        self.transactions_served = state_get(
            state, "transactions_served", self.name)
