"""Batched TG program decode for the fast interpreter path.

The baseline interpreter (:meth:`TGMaster._run`) re-touches a
:class:`~repro.core.isa.TGInstruction` NamedTuple per executed
instruction: attribute loads, an :class:`~repro.core.isa.TGOp` enum
compare per dispatch arm, and a fresh ``Cond(...)`` construction per
branch.  For millisecond-scale traces a TG executes each instruction
once, but synthetic workloads and polling loops re-execute hot bodies
millions of times, so the per-instruction constant work adds up.

:func:`decode_program` lowers a validated program once, up front, into
parallel plain-``int`` field lists, decoding the whole instruction
stream in one vectorised pass over the assembled binary image (numpy
shift/mask over the ``word0``/``word1`` columns) instead of
instruction-at-a-time — the same straight-line decode a hardware TG's
fetch stage performs.  Branch conditions are resolved to bound
comparison callables so ``If`` costs one indexed call, not an enum
round-trip.  When numpy is unavailable the same lowering runs as a
pure-Python loop over the already-decoded instruction tuples; the
resulting :class:`DecodedProgram` is identical either way.

The lowered form feeds :meth:`TGMaster._run_fast`, which yields the
exact same sequence of delays/signals/processes as ``_run`` — the fast
path changes interpreter overhead only, never simulated behaviour.
"""

from typing import Callable, List, NamedTuple, Sequence

import operator

from repro.core.isa import TGError, TGOp
from repro.core.program import TGProgram

try:  # numpy is an optional accelerator, not a dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _lower_python tests
    _np = None

#: Branch-condition byte -> comparison callable, indexed by Cond value.
COND_FUNCS: Sequence[Callable[[int, int], bool]] = (
    operator.eq,   # Cond.EQ
    operator.ne,   # Cond.NE
    operator.lt,   # Cond.LT
    operator.ge,   # Cond.GE
    operator.gt,   # Cond.GT
    operator.le,   # Cond.LE
)


class DecodedProgram(NamedTuple):
    """A TG program lowered to parallel plain-int field columns."""

    ops: List[int]      #: opcode byte per instruction (int, not TGOp)
    a: List[int]
    b: List[int]
    conds: List        #: comparison callable for IF rows, else None
    imm: List[int]
    pool: List[int]

    def __len__(self) -> int:
        return len(self.ops)


def _cond_column(ops: List[int], conds: List[int]) -> List:
    if_op = int(TGOp.IF)
    return [COND_FUNCS[cond] if op == if_op else None
            for op, cond in zip(ops, conds)]


def _lower_numpy(program: TGProgram) -> DecodedProgram:
    """Vectorised lowering: one pass of shifts/masks over the image."""
    from repro.core.assembler import assemble_binary

    image = assemble_binary(program)
    words = _np.frombuffer(image, dtype="<u4")
    n = int(words[3])
    instr = words[5:5 + 2 * n].astype(_np.int64)
    word0 = instr[0::2]
    word1 = instr[1::2]
    ops = (word0 >> 24).tolist()
    a = ((word0 >> 16) & 0xFF).tolist()
    b = ((word0 >> 8) & 0xFF).tolist()
    conds = (word0 & 0xFF).tolist()
    imm = word1.tolist()
    return DecodedProgram(ops, a, b, _cond_column(ops, conds), imm,
                          list(program.pool))


def _lower_python(program: TGProgram) -> DecodedProgram:
    """Fallback lowering when numpy is missing: same output, scalar loop."""
    ops = [int(instr.op) for instr in program.instructions]
    a = [instr.a for instr in program.instructions]
    b = [instr.b for instr in program.instructions]
    conds = [instr.cond for instr in program.instructions]
    imm = [instr.imm for instr in program.instructions]
    return DecodedProgram(ops, a, b, _cond_column(ops, conds), imm,
                          list(program.pool))


def decode_program(program: TGProgram) -> DecodedProgram:
    """Lower a validated program for the fast interpreter.

    Sanity-checks Cond coverage are enforced by ``program.validate()``
    (IF conditions are range-checked), so ``COND_FUNCS`` indexing is
    safe here.
    """
    if _np is not None:
        try:
            return _lower_numpy(program)
        except TGError:
            # not image-encodable (e.g. an Idle beyond 32 bits) — such
            # programs run fine in memory, they just can't be assembled
            pass
    return _lower_python(program)
