"""Multitask TG: several task programs scheduled on one master socket.

Paper §7, future work: "analysis of the behavior of a system in which
multiple tasks run on a single processor and are dynamically scheduled by
an OS, either based upon timeslices (preemptive multitasking) or upon
transition to a sleep state followed by awakening on interrupt receipt.
Context switching-related issues will need to be modeled."

:class:`MultitaskTGMaster` implements both policies over ordinary TG
programs (e.g. the translated traces of two cores, consolidated onto one
processor socket):

* ``scheduler="timeslice"`` — preemptive round-robin.  A task runs for a
  quantum of TG cycles; long ``Idle`` periods are divisible (the timer
  interrupt preempts an idling task), while an OCP transaction in flight
  is never preempted (the bus transfer must finish).
* ``scheduler="sleep"`` — run-to-block.  A task runs until it executes an
  ``Idle`` of at least ``sleep_threshold`` cycles, which models the core
  sleeping until a timer/interrupt wakes it at the recorded time; other
  tasks run in the gap, hiding each other's idle periods.
* ``scheduler="priority"`` — preemptive static priorities on top of the
  sleep semantics: the highest-priority runnable task always runs, and a
  lower-priority task is preempted (at an instruction boundary) the
  moment a higher-priority sleeper wakes.

Tasks that synchronise *with each other* (e.g. two pipeline stages
consolidated onto one socket) need a preemptive policy: a polling loop
contains no long ``Idle``, so under run-to-block scheduling the poller
monopolises the processor and the task that would satisfy the poll never
runs — a livelock the timeslice policy's quantum resolves
(``tests/core/test_multitask.py`` demonstrates both outcomes).

A modelling caveat the two policies bracket: a TG ``Idle`` conflates
*local computation* with *genuine waiting*.  Timeslice scheduling treats
every idle as busy compute (idles of different tasks serialise — faithful
for compute-bound traces); sleep scheduling treats long idles as waits
(idles overlap — the optimistic bound, faithful for I/O-wait-shaped
traces).  Real consolidation cost lies between the two.

Every switch pays ``context_switch_cycles`` (state save/restore).  The
master socket surface is the usual one (``port``/``start()``/
``finished``/``completion_time``), so a multitask TG drops into any
platform socket.
"""

from typing import List, Optional

from repro.kernel import Component, Simulator
from repro.core.isa import (
    Cond,
    RDREG,
    TGError,
    TGOp,
    TG_NUM_REGS,
)
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram
from repro.ocp import OCPMasterPort

SCHEDULERS = ("timeslice", "sleep", "priority")


class _Task:
    """Execution context of one task program."""

    __slots__ = ("task_id", "program", "regs", "pc", "halted",
                 "pending_idle", "wake_time", "completion_time",
                 "instructions_executed")

    def __init__(self, task_id: int, program: TGProgram):
        self.task_id = task_id
        self.program = program
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0
        self.halted = False
        self.pending_idle = 0
        self.wake_time: Optional[int] = None  # sleeping until this cycle
        self.completion_time: Optional[int] = None
        self.instructions_executed = 0

    def runnable(self, now: int) -> bool:
        if self.halted:
            return False
        if self.wake_time is not None and self.wake_time > now:
            return False
        return True


class MultitaskTGMaster(Component):
    """One master socket running several TG task programs under an OS model.

    Args:
        programs: The task programs (reactive/timeshifting only; cloning
            tasks have their own issue engine and are rejected).
        scheduler: ``"timeslice"`` or ``"sleep"``.
        timeslice: Quantum in cycles (timeslice policy).
        context_switch_cycles: Cost of each task switch.
        sleep_threshold: Minimum ``Idle`` treated as a sleep (sleep policy).
    """

    def __init__(self, sim: Simulator, name: str,
                 programs: List[TGProgram],
                 scheduler: str = "timeslice",
                 timeslice: int = 64,
                 context_switch_cycles: int = 4,
                 sleep_threshold: int = 16,
                 priorities: Optional[List[int]] = None):
        super().__init__(sim, name)
        if not programs:
            raise TGError("need at least one task program")
        if priorities is not None and len(priorities) != len(programs):
            raise TGError("priorities must match the number of programs")
        if scheduler not in SCHEDULERS:
            raise TGError(f"unknown scheduler {scheduler!r}; "
                          f"choose from {SCHEDULERS}")
        if timeslice < 1:
            raise TGError("timeslice must be >= 1")
        if context_switch_cycles < 0:
            raise TGError("context_switch_cycles must be >= 0")
        for program in programs:
            program.validate()
            if program.mode is ReplayMode.CLONING:
                raise TGError("cloning-mode programs cannot be multitasked")
        self.port = OCPMasterPort(sim, f"{name}.ocp")
        self.scheduler = scheduler
        self.timeslice = timeslice
        self.context_switch_cycles = context_switch_cycles
        self.sleep_threshold = sleep_threshold
        self.tasks = [_Task(index, program)
                      for index, program in enumerate(programs)]
        #: Static task priorities (higher runs first, "priority" policy).
        self.priorities = list(priorities) if priorities is not None \
            else [0] * len(programs)
        self.context_switches = 0
        self.halted = False
        self.halt_time: Optional[int] = None
        self._process = None
        self._current: Optional[_Task] = None
        self._rr_index = 0

    # ------------------------------------------------------------- surface

    def start(self) -> None:
        self._process = self.sim.spawn(self._run(), name=f"{self.name}.os")

    @property
    def finished(self) -> bool:
        return self.halted

    @property
    def completion_time(self) -> Optional[int]:
        return self.halt_time

    @property
    def task_completion_times(self) -> List[Optional[int]]:
        return [task.completion_time for task in self.tasks]

    # ------------------------------------------------------------ scheduler

    def _pick_next(self) -> Optional[_Task]:
        """Next task to run: round-robin, or best priority for the
        priority policy (ties broken by task id)."""
        if self.scheduler == "priority":
            runnable = [task for task in self.tasks
                        if task.runnable(self.sim.now)]
            if not runnable:
                return None
            return max(runnable,
                       key=lambda t: (self.priorities[t.task_id],
                                      -t.task_id))
        count = len(self.tasks)
        for offset in range(count):
            task = self.tasks[(self._rr_index + offset) % count]
            if task.runnable(self.sim.now):
                self._rr_index = (task.task_id + 1) % count
                return task
        return None

    def _higher_priority_runnable(self, current: _Task) -> bool:
        level = self.priorities[current.task_id]
        return any(self.priorities[task.task_id] > level
                   and task.runnable(self.sim.now)
                   for task in self.tasks if task is not current)

    def _earliest_wake(self) -> Optional[int]:
        times = [task.wake_time for task in self.tasks
                 if not task.halted and task.wake_time is not None]
        return min(times) if times else None

    def _run(self):
        while True:
            if all(task.halted for task in self.tasks):
                break
            task = self._pick_next()
            if task is None:
                # every live task is sleeping: idle until the first wake
                wake = self._earliest_wake()
                if wake is None:  # pragma: no cover - defensive
                    raise TGError(f"{self.name}: live tasks but no wake time")
                if wake > self.sim.now:
                    yield wake - self.sim.now
                continue
            if self._current is not task:
                if self._current is not None and self.context_switch_cycles:
                    yield self.context_switch_cycles
                if self._current is not None:
                    self.context_switches += 1
                self._current = task
            task.wake_time = None
            yield from self._run_task(task)
        self.halted = True
        self.halt_time = self.sim.now

    def _run_task(self, task: _Task):
        """Run one scheduling episode of ``task``."""
        quantum = self.timeslice
        while not task.halted:
            if self.scheduler == "timeslice" and quantum <= 0 \
                    and self._other_runnable(task):
                return  # quantum expired
            if self.scheduler == "priority" \
                    and self._higher_priority_runnable(task):
                return  # preempted by a higher-priority wake-up
            start = self.sim.now
            slept = yield from self._step(task, quantum)
            quantum -= self.sim.now - start
            if slept:
                return  # task went to sleep; schedule someone else
        task.completion_time = self.sim.now

    def _other_runnable(self, current: _Task) -> bool:
        return any(task is not current and task.runnable(self.sim.now)
                   for task in self.tasks)

    # ----------------------------------------------------------- execution

    def _step(self, task: _Task, quantum: int):
        """Execute one instruction (or an idle slice); returns True when
        the task transitioned to the sleep state."""
        if task.pending_idle > 0:
            # resume a sliced idle: run up to the remaining quantum
            slice_ = task.pending_idle
            if self.scheduler == "timeslice":
                slice_ = min(slice_, max(1, quantum))
            task.pending_idle -= slice_
            yield slice_
            return False
        instr = task.program.instructions[task.pc]
        task.pc += 1
        task.instructions_executed += 1
        op = instr.op
        regs = task.regs
        if op == TGOp.IDLE:
            if (self.scheduler in ("sleep", "priority")
                    and instr.imm >= self.sleep_threshold):
                # sleep until the "interrupt" at the recorded time
                task.wake_time = self.sim.now + instr.imm
                return True
            if instr.imm:
                # the idle is divisible: pending_idle carries the unslept
                # remainder across preemptions
                task.pending_idle = instr.imm
                slice_ = task.pending_idle
                if self.scheduler == "timeslice":
                    slice_ = min(slice_, max(1, quantum))
                task.pending_idle -= slice_
                yield slice_
        elif op == TGOp.SET_REGISTER:
            regs[instr.a] = instr.imm
            yield 1
        elif op == TGOp.READ:
            regs[RDREG] = yield from self.port.read(regs[instr.a])
        elif op == TGOp.WRITE:
            yield from self.port.write(regs[instr.a], regs[instr.b])
        elif op == TGOp.BURST_READ:
            words = yield from self.port.burst_read(regs[instr.a], instr.b)
            regs[RDREG] = words[-1]
        elif op == TGOp.BURST_WRITE:
            data = task.program.pool[instr.imm:instr.imm + instr.b]
            yield from self.port.burst_write(regs[instr.a], data)
        elif op == TGOp.IF:
            if Cond(instr.cond).evaluate(regs[instr.a], regs[instr.b]):
                task.pc = instr.imm
            yield 1
        elif op == TGOp.JUMP:
            task.pc = instr.imm
            yield 1
        elif op == TGOp.HALT:
            task.halted = True
        else:
            raise TGError(f"multitask TG cannot execute {op.name}")
        return False
