"""Replay-fidelity modes — Section 3's taxonomy, made executable.

The paper motivates reactive TGs by walking through two weaker designs.
All three are implemented so the ablation benchmark (DESIGN.md E9) can
quantify the accuracy gap:

* **CLONING** — "a trace with timestamps … independently replayed": every
  transaction is issued at its recorded absolute time; reads do not block
  the program.  Breaks as soon as network latency varies.
* **TIMESHIFTING** — "adjacent transactions are tied to each other":
  transactions are issued relative to the previous unblock (reads block),
  but polling sequences are replayed verbatim, so the transaction *count*
  cannot adapt to a different interconnect.
* **REACTIVE** — the paper's TG: relative timing *and* polling loops
  collapsed into conditional re-reads, so both timing and transaction
  counts adapt.
"""

import enum


class ReplayMode(enum.Enum):
    CLONING = "cloning"
    TIMESHIFTING = "timeshifting"
    REACTIVE = "reactive"

    @staticmethod
    def from_name(name: str) -> "ReplayMode":
        for mode in ReplayMode:
            if mode.value == name:
                return mode
        raise ValueError(f"unknown replay mode {name!r}")
