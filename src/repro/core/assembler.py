"""TG binary images: assemble ``.tgp`` programs into ``.bin`` and back.

Image layout (little-endian 32-bit words)::

    word 0      magic 'TGP1' (0x54475031)
    word 1      core_id << 16 | thread_id
    word 2      mode (ReplayMode ordinal)
    word 3      instruction count N
    word 4      pool word count P
    word 5..    N * 2 instruction words
    ...         P pool words

The image is what a hardware TG's instruction memory would be loaded with
(the paper's path "towards deployment of the TG device on a silicon NoC
test chip").
"""

import struct
from typing import List

from repro.core.isa import TGError, decode_instruction, encode_instruction
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram

MAGIC = 0x54475031  # 'TGP1'

_MODE_CODES = {mode: index for index, mode in enumerate(ReplayMode)}
_MODES_BY_CODE = {index: mode for mode, index in _MODE_CODES.items()}


def assemble_binary(program: TGProgram) -> bytes:
    """Assemble a validated program into a ``.bin`` image."""
    program.validate()
    words: List[int] = [
        MAGIC,
        ((program.core_id & 0xFFFF) << 16) | (program.thread_id & 0xFFFF),
        _MODE_CODES[program.mode],
        len(program.instructions),
        len(program.pool),
    ]
    for instr in program.instructions:
        word0, word1 = encode_instruction(instr)
        words.append(word0)
        words.append(word1)
    words.extend(program.pool)
    return struct.pack(f"<{len(words)}I", *words)


def disassemble_binary(image: bytes) -> TGProgram:
    """Decode a ``.bin`` image back into a :class:`TGProgram`.

    Accepts both the legacy bare image and the checksummed ``RTGA``
    container (see :mod:`repro.artifacts.header`); container-level
    defects are re-raised as :class:`TGError` here — use
    :func:`repro.artifacts.load_bin` for the typed
    :class:`~repro.artifacts.errors.ArtifactError` hierarchy.
    """
    from repro.artifacts.errors import ArtifactError
    from repro.artifacts.header import BIN_MAGIC, unwrap_binary
    if image[:4] == BIN_MAGIC:
        try:
            _, image = unwrap_binary(image)
        except ArtifactError as error:
            raise TGError(f"bad TG container: {error.message}") from None
    if len(image) % 4 != 0 or len(image) < 20:
        raise TGError(f"truncated TG image ({len(image)} bytes)")
    words = list(struct.unpack(f"<{len(image) // 4}I", image))
    if words[0] != MAGIC:
        raise TGError(f"bad magic 0x{words[0]:08x}")
    core_id = words[1] >> 16
    thread_id = words[1] & 0xFFFF
    mode = _MODES_BY_CODE.get(words[2])
    if mode is None:
        raise TGError(f"bad mode code {words[2]}")
    n_instructions = words[3]
    n_pool = words[4]
    expected = 5 + 2 * n_instructions + n_pool
    if len(words) != expected:
        raise TGError(f"image has {len(words)} words, header implies "
                      f"{expected}")
    instructions = []
    cursor = 5
    for _ in range(n_instructions):
        instructions.append(decode_instruction(words[cursor],
                                               words[cursor + 1]))
        cursor += 2
    pool = words[cursor:cursor + n_pool]
    program = TGProgram(core_id=core_id, thread_id=thread_id,
                        instructions=instructions, pool=pool, mode=mode)
    program.validate()
    return program
