"""TG instruction set (paper Table 1) and binary encoding.

The instruction set is deliberately tiny — the whole point of the TG is a
"drastic simplification in the amount of logic needed to generate
communication transactions" (Section 6):

=============================== ==========================================
OCP instructions                behaviour
=============================== ==========================================
``Read(addr)``                  blocking read; result lands in ``rdreg``
``Write(addr, data)``           posted write (resumes at command accept)
``BurstRead(addr, count)``      blocking burst read; last beat in ``rdreg``
``BurstWrite(addr, count, pool)`` posted burst write; data from the pool
=============================== ==========================================

=============================== ==========================================
other instructions              behaviour
=============================== ==========================================
``SetRegister(reg, value)``     load-immediate, 1 cycle
``Idle(count)``                 wait ``count`` cycles
``If(a, op, b, target)``        branch to ``target`` when true, 1 cycle
``Jump(target)``                branch always, 1 cycle
``Halt``                        stop; records completion time
=============================== ==========================================

Timing model: ``SetRegister``/``If``/``Jump`` cost one TG cycle each;
``Idle(n)`` costs *n*; OCP instructions issue the moment they execute and
block until their unblock point (response for reads, accept for writes).
The trace translator relies on exactly this cost model when it converts
timestamp gaps into instruction sequences.

Binary format: every instruction is two 32-bit words::

    word 0:  opcode(8) | a(8) | b(8) | cond(8)
    word 1:  imm32

Field use per opcode is documented in ``_FIELDS`` below.  Burst-write data
lives in a *data pool* appended after the code; the instruction's ``imm``
is the pool word offset.
"""

import enum
from typing import NamedTuple

from repro.ocp.types import WORD_MASK

#: TG register file size.
TG_NUM_REGS = 16
#: Special registers (paper Figure 3(b) uses the same names).
RDREG = 0      #: destination of read data
TEMPREG = 1    #: comparison operand for polling loops
ADDRREG = 2    #: current transaction address
DATAREG = 3    #: current write data

_REG_NAMES = {RDREG: "rdreg", TEMPREG: "tempreg", ADDRREG: "addr",
              DATAREG: "data"}


class TGError(Exception):
    """Malformed TG program, encoding, or execution fault."""


def reg_name(index: int) -> str:
    """Symbolic name of a TG register (``r<n>`` for generic ones)."""
    return _REG_NAMES.get(index, f"r{index}")


def reg_index(name: str) -> int:
    """Inverse of :func:`reg_name`."""
    for index, reg in _REG_NAMES.items():
        if reg == name:
            return index
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < TG_NUM_REGS:
            return index
    raise TGError(f"unknown TG register {name!r}")


class TGOp(enum.IntEnum):
    """TG opcodes (the integer is the binary opcode byte).

    ``READ_NB`` and ``FENCE`` implement the paper's future-work item
    "support for processors allowing out-of-order transactions": a
    non-blocking read issues and retires in the background (its data is
    discarded — it models prefetch/miss-under-miss traffic), and a fence
    blocks until every outstanding non-blocking transaction completed.
    """

    READ = 1
    WRITE = 2
    BURST_READ = 3
    BURST_WRITE = 4
    SET_REGISTER = 5
    IDLE = 6
    IF = 7
    JUMP = 8
    HALT = 9
    READ_NB = 10
    FENCE = 11


class Cond(enum.IntEnum):
    """Comparison operators for ``If`` (encoded in the cond byte)."""

    EQ = 0
    NE = 1
    LT = 2
    GE = 3
    GT = 4
    LE = 5

    @property
    def symbol(self) -> str:
        return {"EQ": "==", "NE": "!=", "LT": "<", "GE": ">=",
                "GT": ">", "LE": "<="}[self.name]

    @staticmethod
    def from_symbol(symbol: str) -> "Cond":
        for cond in Cond:
            if cond.symbol == symbol:
                return cond
        raise TGError(f"unknown condition {symbol!r}")

    def evaluate(self, a: int, b: int) -> bool:
        if self == Cond.EQ:
            return a == b
        if self == Cond.NE:
            return a != b
        if self == Cond.LT:
            return a < b
        if self == Cond.GE:
            return a >= b
        if self == Cond.GT:
            return a > b
        return a <= b


class TGInstruction(NamedTuple):
    """One decoded TG instruction.

    Field use by opcode:

    ================ ===== ====== ====== ==========================
    opcode           a     b      cond   imm
    ================ ===== ====== ====== ==========================
    READ             areg  --     --     --
    WRITE            areg  dreg   --     --
    BURST_READ       areg  count  --     --
    BURST_WRITE      areg  count  --     pool word offset
    SET_REGISTER     reg   --     --     value
    IDLE             --    --     --     cycles
    IF               reg_a reg_b  cond   target (instruction index)
    JUMP             --    --     --     target (instruction index)
    HALT             --    --     --     --
    ================ ===== ====== ====== ==========================
    """

    op: TGOp
    a: int = 0
    b: int = 0
    cond: int = 0
    imm: int = 0

    def validate(self, n_instructions: int, pool_size: int) -> None:
        """Raise :class:`TGError` when fields are out of range."""
        def check_reg(value, what):
            if not 0 <= value < TG_NUM_REGS:
                raise TGError(f"{self.op.name}: {what} register {value} "
                              f"out of range")

        if self.op in (TGOp.READ, TGOp.WRITE, TGOp.BURST_READ,
                       TGOp.BURST_WRITE, TGOp.READ_NB):
            check_reg(self.a, "address")
        if self.op == TGOp.WRITE:
            check_reg(self.b, "data")
        if self.op in (TGOp.BURST_READ, TGOp.BURST_WRITE):
            if not 2 <= self.b <= 255:
                raise TGError(f"{self.op.name}: burst count {self.b} "
                              f"outside [2, 255]")
        if self.op == TGOp.BURST_WRITE:
            if self.imm < 0 or self.imm + self.b > pool_size:
                raise TGError(f"BURST_WRITE pool range [{self.imm}, "
                              f"{self.imm + self.b}) outside pool of "
                              f"{pool_size} words")
        if self.op == TGOp.SET_REGISTER:
            check_reg(self.a, "destination")
            if not 0 <= self.imm <= WORD_MASK:
                raise TGError(f"SET_REGISTER value 0x{self.imm:x} not 32-bit")
        if self.op == TGOp.IDLE and self.imm < 0:
            raise TGError(f"IDLE cycles must be >= 0, got {self.imm}")
        if self.op == TGOp.IF:
            check_reg(self.a, "left")
            check_reg(self.b, "right")
            if self.cond not in [int(c) for c in Cond]:
                raise TGError(f"IF: bad condition {self.cond}")
        if self.op in (TGOp.IF, TGOp.JUMP):
            if not 0 <= self.imm < n_instructions:
                raise TGError(f"{self.op.name} target {self.imm} outside "
                              f"program of {n_instructions} instructions")

    def __repr__(self) -> str:
        op = self.op
        if op == TGOp.READ_NB:
            return f"ReadNB({reg_name(self.a)})"
        if op == TGOp.FENCE:
            return "Fence"
        if op == TGOp.READ:
            return f"Read({reg_name(self.a)})"
        if op == TGOp.WRITE:
            return f"Write({reg_name(self.a)}, {reg_name(self.b)})"
        if op == TGOp.BURST_READ:
            return f"BurstRead({reg_name(self.a)}, {self.b})"
        if op == TGOp.BURST_WRITE:
            return f"BurstWrite({reg_name(self.a)}, {self.b}, pool+{self.imm})"
        if op == TGOp.SET_REGISTER:
            return f"SetRegister({reg_name(self.a)}, 0x{self.imm:08x})"
        if op == TGOp.IDLE:
            return f"Idle({self.imm})"
        if op == TGOp.IF:
            return (f"If({reg_name(self.a)} {Cond(self.cond).symbol} "
                    f"{reg_name(self.b)}) -> {self.imm}")
        if op == TGOp.JUMP:
            return f"Jump({self.imm})"
        return "Halt"


def encode_instruction(instr: TGInstruction) -> tuple:
    """Encode to the two binary words ``(word0, word1)``."""
    for value, what in ((instr.a, "a"), (instr.b, "b"), (instr.cond, "cond")):
        if not 0 <= value <= 0xFF:
            raise TGError(f"{instr.op.name}: field {what}={value} not a byte")
    if not 0 <= instr.imm <= WORD_MASK:
        raise TGError(f"{instr.op.name}: imm 0x{instr.imm:x} not 32-bit")
    word0 = (int(instr.op) << 24) | (instr.a << 16) | (instr.b << 8) | instr.cond
    return word0, instr.imm


def decode_instruction(word0: int, word1: int) -> TGInstruction:
    """Decode two binary words back into a :class:`TGInstruction`."""
    code = (word0 >> 24) & 0xFF
    try:
        op = TGOp(code)
    except ValueError:
        raise TGError(f"unknown TG opcode {code}") from None
    return TGInstruction(op,
                         a=(word0 >> 16) & 0xFF,
                         b=(word0 >> 8) & 0xFF,
                         cond=word0 & 0xFF,
                         imm=word1 & WORD_MASK)
