"""The OCP-master traffic generator — the entity that replaces an IP core.

Execution cost model (must stay in sync with the translator in
:mod:`repro.trace.translator`):

* ``SetRegister``, ``If``, ``Jump`` — one TG cycle each;
* ``Idle(n)`` — n cycles;
* OCP instructions — issue the moment they execute; ``Read``/``BurstRead``
  block until the response arrives, ``Write``/``BurstWrite`` resume at
  command accept (posted, with back-pressure), exactly like the armlet
  core's port usage, so a TG experiences congestion the same way a core
  does.

In :class:`~repro.core.modes.ReplayMode.CLONING` mode, reads do *not*
block the program: transactions are handed to an internal issue queue that
drains in order, modelling a dumb replay device with an outbound FIFO.
The program's own timing then ignores response feedback entirely — the
behaviour Section 3 shows to be inadequate — and the ablation benchmark
measures how wrong it gets.
"""

from typing import Dict, Optional

from repro.artifacts.errors import SnapshotError
from repro.artifacts.header import crc32_hex
from repro.faults.retry import RetryPolicy
from repro.kernel import Component, Simulator
from repro.kernel.errors import WatchdogTimeout
from repro.kernel.snapshot import state_get
from repro.core.isa import (
    Cond,
    RDREG,
    TGError,
    TGOp,
    TG_NUM_REGS,
)
from repro.core.decode import decode_program
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram
from repro.ocp import OCPMasterPort
from repro.ocp.types import OCPCommand, Request


class TGMaster(Component):
    """A traffic generator occupying a master socket.

    Exposes the same surface as :class:`~repro.cpu.core_ip.CoreIP`
    (``port``, ``start()``, ``finished``, ``completion_time``), making the
    two interchangeable on any platform.

    Resilience (both off by default, adding zero cost when off):

    * ``retry_policy`` — a :class:`~repro.faults.RetryPolicy` reissues
      transactions whose :attr:`Response.error` is set, idling the
      exponential backoff between attempts so the retry traffic is
      cycle-accounted like any other TG activity.  Without a policy an
      error response is counted but otherwise ignored (the historical
      behaviour — the program continues on the bogus data).
    * ``watchdog_cycles`` — a per-request watchdog: a transaction not
      complete after this many cycles raises
      :class:`~repro.kernel.WatchdogTimeout` instead of hanging the
      simulation (e.g. a response packet lost by a broken fabric).
    """

    def __init__(self, sim: Simulator, name: str, program: TGProgram,
                 retry_policy: Optional[RetryPolicy] = None,
                 watchdog_cycles: Optional[int] = None):
        super().__init__(sim, name)
        program.validate()
        if watchdog_cycles is not None and watchdog_cycles < 1:
            raise TGError(f"watchdog_cycles must be >= 1, "
                          f"got {watchdog_cycles}")
        self.program = program
        self.retry_policy = retry_policy
        self.watchdog_cycles = watchdog_cycles
        self.port = OCPMasterPort(sim, f"{name}.ocp")
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0
        self.halted = False
        self.halt_time: Optional[int] = None
        self.instructions_executed = 0
        self.max_outstanding_observed = 0
        self.error_responses = 0
        self.ocp_transactions = 0
        self.ocp_beats = 0
        self.ocp_latency_cycles = 0
        self.ocp_latency_max = 0
        self.retries = 0
        self.retry_backoff_cycles = 0
        self.degraded_transactions = 0
        self.watchdog_trips = 0
        self._process = None
        self._issue_fifo = None
        self._issuer = None
        self._outstanding = []
        # live transactions on this TG (main program, non-blocking
        # readers and the cloning issuer all thread through _transact);
        # non-zero means the TG cannot be checkpointed right now
        self._txn_depth = 0

    # ------------------------------------------------------------- control

    def start(self) -> None:
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0
        self.halted = False
        self.halt_time = None
        if self.program.mode is ReplayMode.CLONING:
            self._issue_fifo = self.sim.fifo(name=f"{self.name}.issueq")
            self._issuer = self.sim.spawn(self._issue_process(),
                                          name=f"{self.name}.issuer")
            # the cloning path threads every OCP op through the issue
            # FIFO; keep it on the reference interpreter
            runner = self._run()
        elif self.sim.backend == "fast":
            runner = self._run_fast()
        else:
            runner = self._run()
        self._process = self.sim.spawn(runner, name=f"{self.name}.run")

    @property
    def process(self):
        return self._process

    @property
    def finished(self) -> bool:
        return self.halted

    @property
    def completion_time(self) -> Optional[int]:
        return self.halt_time

    @property
    def resilience_counters(self) -> Dict[str, int]:
        """Error/retry/timeout counters (merged by the platform summary)."""
        return {
            "error_responses": self.error_responses,
            "retries": self.retries,
            "retry_backoff_cycles": self.retry_backoff_cycles,
            "degraded_transactions": self.degraded_transactions,
            "watchdog_trips": self.watchdog_trips,
        }

    # ----------------------------------------------------------- checkpoint

    def _program_crc32(self) -> str:
        return crc32_hex(self.program.to_tgp().encode("utf-8"))

    def state_dict(self) -> dict:
        """Architectural + counter state (no scheduler entries)."""
        return {
            "program_crc32": self._program_crc32(),
            "regs": list(self.regs),
            "pc": self.pc,
            "halted": self.halted,
            "halt_time": self.halt_time,
            "instructions_executed": self.instructions_executed,
            "max_outstanding_observed": self.max_outstanding_observed,
            "error_responses": self.error_responses,
            "ocp_transactions": self.ocp_transactions,
            "ocp_beats": self.ocp_beats,
            "ocp_latency_cycles": self.ocp_latency_cycles,
            "ocp_latency_max": self.ocp_latency_max,
            "retries": self.retries,
            "retry_backoff_cycles": self.retry_backoff_cycles,
            "degraded_transactions": self.degraded_transactions,
            "watchdog_trips": self.watchdog_trips,
            "port_transactions_issued": self.port.transactions_issued,
        }

    def load_state(self, state: dict) -> None:
        """Apply a snapshot to this freshly-built TG (do not ``start()``).

        For a CLONING-mode TG that has not halted, the issue queue and
        its drain process are re-created here (the snapshot guarantees
        the queue was empty and the issuer parked on it); the main
        program wake-up itself arrives later via :meth:`rearm`.
        """
        crc = state_get(state, "program_crc32", self.name)
        if crc != self._program_crc32():
            raise SnapshotError(
                f"snapshot for {self.name} was taken with a different "
                f"program (crc32 {crc} != {self._program_crc32()})",
                hint="rebuild the platform with the program the snapshot "
                     "was taken on")
        regs = state_get(state, "regs", self.name)
        if not isinstance(regs, list) or len(regs) != TG_NUM_REGS:
            raise SnapshotError(
                f"snapshot for {self.name} has a malformed register file")
        self.regs = [int(value) for value in regs]
        self.pc = state_get(state, "pc", self.name)
        self.halted = state_get(state, "halted", self.name)
        self.halt_time = state_get(state, "halt_time", self.name)
        self.instructions_executed = state_get(
            state, "instructions_executed", self.name)
        self.max_outstanding_observed = state_get(
            state, "max_outstanding_observed", self.name)
        self.error_responses = state_get(state, "error_responses",
                                         self.name)
        self.ocp_transactions = state_get(state, "ocp_transactions",
                                          self.name)
        self.ocp_beats = state_get(state, "ocp_beats", self.name)
        self.ocp_latency_cycles = state_get(state, "ocp_latency_cycles",
                                            self.name)
        self.ocp_latency_max = state_get(state, "ocp_latency_max",
                                         self.name)
        self.retries = state_get(state, "retries", self.name)
        self.retry_backoff_cycles = state_get(
            state, "retry_backoff_cycles", self.name)
        self.degraded_transactions = state_get(
            state, "degraded_transactions", self.name)
        self.watchdog_trips = state_get(state, "watchdog_trips", self.name)
        self.port.transactions_issued = state_get(
            state, "port_transactions_issued", self.name)
        self._txn_depth = 0
        self._outstanding = []
        if self.program.mode is ReplayMode.CLONING and not self.halted:
            self._issue_fifo = self.sim.fifo(name=f"{self.name}.issueq")
            self._issuer = self.sim.spawn(self._issue_process(),
                                          name=f"{self.name}.issuer")

    def checkpoint_blockers(self):
        blockers = []
        if self._txn_depth:
            blockers.append(
                f"{self._txn_depth} transaction(s) in flight")
        alive = sum(1 for reader in self._outstanding if reader.alive)
        if alive:
            blockers.append(f"{alive} non-blocking read(s) outstanding")
        issuer = self._issuer
        if issuer is not None and issuer.alive:
            if self._issue_fifo is None or len(self._issue_fifo):
                blockers.append("issue queue not drained")
            elif issuer.waiting_on is not self._issue_fifo.not_empty:
                blockers.append("issuer not parked on its issue queue")
        return blockers

    def claim_entry(self, entry):
        """Claim the main program's wake-up when it is re-armable.

        The only pending entry a TG leaves at a quiescent cycle is the
        timed wake-up of its own main process (an ``Idle`` gap or the
        1-cycle cost of a local instruction) — claimable because a fresh
        interpreter generator resumes at ``self.pc`` with the restored
        registers, which is exactly where the captured one slept.
        """
        if entry.process is None or entry.process is not self._process:
            return None
        if self._txn_depth:
            return None
        if any(reader.alive for reader in self._outstanding):
            return None
        return {"kind": "run", "at": entry.time}

    def rearm(self, sim, slot: dict) -> None:
        if state_get(slot, "kind", self.name) != "run":
            raise SnapshotError(
                f"{self.name}: unknown pending-entry kind "
                f"{slot.get('kind')!r}")
        at = state_get(slot, "at", self.name)
        if not isinstance(at, int) or at < sim.now:
            raise SnapshotError(
                f"{self.name}: pending wake-up at cycle {at!r} is before "
                f"the snapshot cycle {sim.now}")
        if self.halted:
            raise SnapshotError(
                f"{self.name}: snapshot re-arms a halted TG")
        # interpreter choice is structural, not captured state: the
        # cloning path always replays on the reference interpreter, the
        # others pick by the *restoring* kernel's backend
        if self.program.mode is ReplayMode.CLONING:
            runner = self._run()
        elif sim.backend == "fast":
            runner = self._run_fast()
        else:
            runner = self._run()
        self._process = sim.spawn(runner, name=f"{self.name}.run",
                                  delay=at - sim.now)

    def owned_idle_processes(self):
        if self._issuer is not None and self._issuer.alive:
            yield self._issuer

    # --------------------------------------------------------- transactions

    def _transact(self, cmd: OCPCommand, addr: int, data=None,
                  burst_len: int = 1):
        """One OCP transaction with optional watchdog and retry-on-error.

        Wraps :meth:`_transact_attempts` with latency bookkeeping only —
        no extra yields, so simulated timing and event counts are
        bit-identical to the unwrapped transaction.  Latency is measured
        from issue to unblock: response arrival for reads, command
        accept for posted writes (whose beats drain in the background).
        """
        start = self.sim.now
        self._txn_depth += 1
        try:
            response = yield from self._transact_attempts(cmd, addr, data,
                                                          burst_len)
        finally:
            self._txn_depth -= 1
        elapsed = self.sim.now - start
        self.ocp_transactions += 1
        self.ocp_beats += burst_len
        self.ocp_latency_cycles += elapsed
        if elapsed > self.ocp_latency_max:
            self.ocp_latency_max = elapsed
        return response

    def _transact_attempts(self, cmd: OCPCommand, addr: int, data=None,
                           burst_len: int = 1):
        """The transaction loop proper (watchdog + retry-on-error).

        With neither feature configured this is exactly
        ``port.transaction(Request(...))`` — same requests, same yields,
        same event count as the pre-resilience TG.
        """
        policy = self.retry_policy
        watchdog = self.watchdog_cycles
        sim = self.sim
        port = self.port
        failures = 0
        while True:
            request = Request(cmd, addr, data, burst_len)
            if watchdog is None:
                response = yield from port.transaction(request)
            else:
                # the guard event is cancelled on response; the queue
                # compacts these tombstones, so per-request watchdogs stay
                # cheap even over millions of transactions
                txn = sim.spawn(
                    port.transaction(request),
                    name=f"{self.name}.txn#{request.uid}")
                guard = sim.schedule_after(
                    watchdog,
                    lambda p=txn, r=request: self._watchdog_expired(p, r))
                response = yield txn
                guard.cancel()
            if response is None or not response.error:
                return response
            self.error_responses += 1
            if policy is None:
                # historical behaviour: the error flag is invisible to the
                # program, which continues on the bogus response data
                return response
            failures += 1
            if failures >= policy.max_attempts:
                if policy.fail_fast:
                    raise TGError(
                        f"{self.name}: {request!r} still erroring after "
                        f"{failures} attempt(s) at cycle {self.sim.now}")
                self.degraded_transactions += 1
                return response
            backoff = policy.backoff_cycles(failures)
            self.retries += 1
            self.retry_backoff_cycles += backoff
            if backoff:
                yield backoff

    def _read_word(self, addr: int):
        """Single read via :meth:`_transact`; returns the data word."""
        response = yield from self._transact(OCPCommand.READ, addr)
        return response.word

    def _watchdog_expired(self, txn, request: Request) -> None:
        if not txn.alive:  # completed on the same cycle the guard fired
            return
        self.watchdog_trips += 1
        raise WatchdogTimeout(
            f"{self.name}: {request!r} not complete within "
            f"{self.watchdog_cycles} cycles (issued at cycle "
            f"{request.issue_time}, now {self.sim.now}); blocked: "
            f"{self.sim.blocked_report()}")

    # ----------------------------------------------------------- execution

    def _run(self):
        instructions = self.program.instructions
        pool = self.program.pool
        cloning = self.program.mode is ReplayMode.CLONING
        regs = self.regs
        while True:
            instr = instructions[self.pc]
            self.pc += 1
            self.instructions_executed += 1
            op = instr.op
            if op == TGOp.IDLE:
                if instr.imm:
                    yield instr.imm
            elif op == TGOp.SET_REGISTER:
                regs[instr.a] = instr.imm
                yield 1
            elif op == TGOp.READ:
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.READ, regs[instr.a], None))
                else:
                    regs[RDREG] = yield from self._read_word(regs[instr.a])
            elif op == TGOp.WRITE:
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.WRITE, regs[instr.a], regs[instr.b]))
                else:
                    yield from self._transact(OCPCommand.WRITE,
                                              regs[instr.a], regs[instr.b])
            elif op == TGOp.BURST_READ:
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.BURST_READ, regs[instr.a], instr.b))
                else:
                    response = yield from self._transact(
                        OCPCommand.BURST_READ, regs[instr.a],
                        burst_len=instr.b)
                    regs[RDREG] = response.words[-1]
            elif op == TGOp.BURST_WRITE:
                data = pool[instr.imm:instr.imm + instr.b]
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.BURST_WRITE, regs[instr.a], data))
                else:
                    yield from self._transact(
                        OCPCommand.BURST_WRITE, regs[instr.a], list(data),
                        burst_len=len(data))
            elif op == TGOp.READ_NB:
                # out-of-order extension: the read retires in the
                # background; the program continues after a 1-cycle issue
                reader = self.sim.spawn(
                    self._read_word(regs[instr.a]),
                    name=f"{self.name}.nb#{self.instructions_executed}")
                self._outstanding.append(reader)
                self.max_outstanding_observed = max(
                    self.max_outstanding_observed,
                    sum(1 for p in self._outstanding if p.alive))
                yield 1
            elif op == TGOp.FENCE:
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
            elif op == TGOp.IF:
                if Cond(instr.cond).evaluate(regs[instr.a], regs[instr.b]):
                    self.pc = instr.imm
                yield 1
            elif op == TGOp.JUMP:
                self.pc = instr.imm
                yield 1
            elif op == TGOp.HALT:
                # implicit fence: completion means all traffic retired
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
                break
            else:  # pragma: no cover - validate() rejects unknown ops
                raise TGError(f"bad opcode {op}")
        if cloning:
            # completion = program done AND issue queue drained
            yield from self._issue_fifo.put(None)
            yield self._issuer
        self.halted = True
        self.halt_time = self.sim.now
        return self.halt_time

    def _run_fast(self):
        """Interpreter over the vectorised decode (fast backend only).

        Semantically identical to :meth:`_run` — same instruction
        sequence, same yields, same counters — but dispatches on
        pre-decoded plain-int opcode columns (see
        :mod:`repro.core.decode`) instead of touching a NamedTuple and
        an enum per executed instruction.  Only straight-line field
        access is lowered; branches re-enter the normal dispatch on the
        next iteration, and every OCP transaction goes through the same
        ``_transact`` machinery as the reference interpreter.
        """
        decoded = decode_program(self.program)
        ops = decoded.ops
        field_a = decoded.a
        field_b = decoded.b
        conds = decoded.conds
        imms = decoded.imm
        pool = decoded.pool
        regs = self.regs
        while True:
            pc = self.pc
            op = ops[pc]
            self.pc = pc + 1
            self.instructions_executed += 1
            if op == 6:  # IDLE
                imm = imms[pc]
                if imm:
                    yield imm
            elif op == 5:  # SET_REGISTER
                regs[field_a[pc]] = imms[pc]
                yield 1
            elif op == 1:  # READ
                regs[RDREG] = yield from self._read_word(regs[field_a[pc]])
            elif op == 2:  # WRITE
                yield from self._transact(OCPCommand.WRITE,
                                          regs[field_a[pc]],
                                          regs[field_b[pc]])
            elif op == 3:  # BURST_READ
                response = yield from self._transact(
                    OCPCommand.BURST_READ, regs[field_a[pc]],
                    burst_len=field_b[pc])
                regs[RDREG] = response.words[-1]
            elif op == 4:  # BURST_WRITE
                data = pool[imms[pc]:imms[pc] + field_b[pc]]
                yield from self._transact(
                    OCPCommand.BURST_WRITE, regs[field_a[pc]], list(data),
                    burst_len=len(data))
            elif op == 10:  # READ_NB
                reader = self.sim.spawn(
                    self._read_word(regs[field_a[pc]]),
                    name=f"{self.name}.nb#{self.instructions_executed}")
                self._outstanding.append(reader)
                self.max_outstanding_observed = max(
                    self.max_outstanding_observed,
                    sum(1 for p in self._outstanding if p.alive))
                yield 1
            elif op == 11:  # FENCE
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
            elif op == 7:  # IF
                if conds[pc](regs[field_a[pc]], regs[field_b[pc]]):
                    self.pc = imms[pc]
                yield 1
            elif op == 8:  # JUMP
                self.pc = imms[pc]
                yield 1
            elif op == 9:  # HALT
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
                break
            else:  # pragma: no cover - validate() rejects unknown ops
                raise TGError(f"bad opcode {op}")
        self.halted = True
        self.halt_time = self.sim.now
        return self.halt_time

    def _issue_process(self):
        """CLONING mode: drain queued transactions in order.

        Operands are snapshots taken when the program executed the
        instruction, since the program races ahead and may rewrite its
        address/data registers before the queue drains.
        """
        regs = self.regs
        while True:
            entry = yield from self._issue_fifo.get()
            if entry is None:
                return
            op, addr, operand = entry
            if op == TGOp.READ:
                regs[RDREG] = yield from self._read_word(addr)
            elif op == TGOp.WRITE:
                yield from self._transact(OCPCommand.WRITE, addr, operand)
            elif op == TGOp.BURST_READ:
                response = yield from self._transact(
                    OCPCommand.BURST_READ, addr, burst_len=operand)
                regs[RDREG] = response.words[-1]
            elif op == TGOp.BURST_WRITE:
                yield from self._transact(OCPCommand.BURST_WRITE, addr,
                                          list(operand),
                                          burst_len=len(operand))
