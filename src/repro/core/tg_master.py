"""The OCP-master traffic generator — the entity that replaces an IP core.

Execution cost model (must stay in sync with the translator in
:mod:`repro.trace.translator`):

* ``SetRegister``, ``If``, ``Jump`` — one TG cycle each;
* ``Idle(n)`` — n cycles;
* OCP instructions — issue the moment they execute; ``Read``/``BurstRead``
  block until the response arrives, ``Write``/``BurstWrite`` resume at
  command accept (posted, with back-pressure), exactly like the armlet
  core's port usage, so a TG experiences congestion the same way a core
  does.

In :class:`~repro.core.modes.ReplayMode.CLONING` mode, reads do *not*
block the program: transactions are handed to an internal issue queue that
drains in order, modelling a dumb replay device with an outbound FIFO.
The program's own timing then ignores response feedback entirely — the
behaviour Section 3 shows to be inadequate — and the ablation benchmark
measures how wrong it gets.
"""

from typing import List, Optional

from repro.kernel import Component, Simulator
from repro.core.isa import (
    Cond,
    RDREG,
    TGError,
    TGInstruction,
    TGOp,
    TG_NUM_REGS,
)
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram
from repro.ocp import OCPMasterPort


class TGMaster(Component):
    """A traffic generator occupying a master socket.

    Exposes the same surface as :class:`~repro.cpu.core_ip.CoreIP`
    (``port``, ``start()``, ``finished``, ``completion_time``), making the
    two interchangeable on any platform.
    """

    def __init__(self, sim: Simulator, name: str, program: TGProgram):
        super().__init__(sim, name)
        program.validate()
        self.program = program
        self.port = OCPMasterPort(sim, f"{name}.ocp")
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0
        self.halted = False
        self.halt_time: Optional[int] = None
        self.instructions_executed = 0
        self.max_outstanding_observed = 0
        self._process = None
        self._issue_fifo = None
        self._issuer = None
        self._outstanding = []

    # ------------------------------------------------------------- control

    def start(self) -> None:
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0
        self.halted = False
        self.halt_time = None
        if self.program.mode is ReplayMode.CLONING:
            self._issue_fifo = self.sim.fifo(name=f"{self.name}.issueq")
            self._issuer = self.sim.spawn(self._issue_process(),
                                          name=f"{self.name}.issuer")
        self._process = self.sim.spawn(self._run(), name=f"{self.name}.run")

    @property
    def process(self):
        return self._process

    @property
    def finished(self) -> bool:
        return self.halted

    @property
    def completion_time(self) -> Optional[int]:
        return self.halt_time

    # ----------------------------------------------------------- execution

    def _run(self):
        instructions = self.program.instructions
        pool = self.program.pool
        cloning = self.program.mode is ReplayMode.CLONING
        regs = self.regs
        while True:
            instr = instructions[self.pc]
            self.pc += 1
            self.instructions_executed += 1
            op = instr.op
            if op == TGOp.IDLE:
                if instr.imm:
                    yield instr.imm
            elif op == TGOp.SET_REGISTER:
                regs[instr.a] = instr.imm
                yield 1
            elif op == TGOp.READ:
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.READ, regs[instr.a], None))
                else:
                    regs[RDREG] = yield from self.port.read(regs[instr.a])
            elif op == TGOp.WRITE:
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.WRITE, regs[instr.a], regs[instr.b]))
                else:
                    yield from self.port.write(regs[instr.a], regs[instr.b])
            elif op == TGOp.BURST_READ:
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.BURST_READ, regs[instr.a], instr.b))
                else:
                    words = yield from self.port.burst_read(regs[instr.a],
                                                            instr.b)
                    regs[RDREG] = words[-1]
            elif op == TGOp.BURST_WRITE:
                data = pool[instr.imm:instr.imm + instr.b]
                if cloning:
                    yield from self._issue_fifo.put(
                        (TGOp.BURST_WRITE, regs[instr.a], data))
                else:
                    yield from self.port.burst_write(regs[instr.a], data)
            elif op == TGOp.READ_NB:
                # out-of-order extension: the read retires in the
                # background; the program continues after a 1-cycle issue
                reader = self.sim.spawn(
                    self.port.read(regs[instr.a]),
                    name=f"{self.name}.nb#{self.instructions_executed}")
                self._outstanding.append(reader)
                self.max_outstanding_observed = max(
                    self.max_outstanding_observed,
                    sum(1 for p in self._outstanding if p.alive))
                yield 1
            elif op == TGOp.FENCE:
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
            elif op == TGOp.IF:
                if Cond(instr.cond).evaluate(regs[instr.a], regs[instr.b]):
                    self.pc = instr.imm
                yield 1
            elif op == TGOp.JUMP:
                self.pc = instr.imm
                yield 1
            elif op == TGOp.HALT:
                # implicit fence: completion means all traffic retired
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
                break
            else:  # pragma: no cover - validate() rejects unknown ops
                raise TGError(f"bad opcode {op}")
        if cloning:
            # completion = program done AND issue queue drained
            yield from self._issue_fifo.put(None)
            yield self._issuer
        self.halted = True
        self.halt_time = self.sim.now
        return self.halt_time

    def _issue_process(self):
        """CLONING mode: drain queued transactions in order.

        Operands are snapshots taken when the program executed the
        instruction, since the program races ahead and may rewrite its
        address/data registers before the queue drains.
        """
        regs = self.regs
        while True:
            entry = yield from self._issue_fifo.get()
            if entry is None:
                return
            op, addr, operand = entry
            if op == TGOp.READ:
                regs[RDREG] = yield from self.port.read(addr)
            elif op == TGOp.WRITE:
                yield from self.port.write(addr, operand)
            elif op == TGOp.BURST_READ:
                words = yield from self.port.burst_read(addr, operand)
                regs[RDREG] = words[-1]
            elif op == TGOp.BURST_WRITE:
                yield from self.port.burst_write(addr, operand)
