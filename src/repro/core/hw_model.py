"""Microarchitectural TG model: executes the raw ``.bin`` image.

The paper positions the TG for "a straightforward path towards deployment
of the TG device on a silicon NoC test chip".  This module models that
device one level below :class:`~repro.core.tg_master.TGMaster`: a small
machine with an **instruction memory** (the untouched ``.bin`` words), a
program counter in image-word units, a register file, and a
fetch/decode/execute loop that decodes every instruction from its two
memory words on the fly.  Burst-write data is fetched from the pool
region of the same memory.

It is *cycle-equivalent* to the behavioural ``TGMaster`` by construction
(same cost model), and the equivalence is enforced by co-simulation tests
that compare complete OCP event streams — the behavioural model plays the
role of the specification, this model the role of the RTL.

Only reactive/timeshifting images are supported: a cloning TG needs the
issue-queue machinery that a dumb replay device would implement
differently in hardware.
"""

import struct
from typing import List, Optional

from repro.kernel import Component, Simulator
from repro.core.assembler import MAGIC, _MODES_BY_CODE
from repro.core.isa import (
    Cond,
    RDREG,
    TGError,
    TGOp,
    TG_NUM_REGS,
    decode_instruction,
)
from repro.core.modes import ReplayMode
from repro.ocp import OCPMasterPort

#: Image-word offset where code begins (after the 5-word header).
CODE_OFFSET = 5


class TGHardwareModel(Component):
    """Executes a ``.bin`` image word-for-word (no pre-decoded program).

    Exposes the standard master surface, so it can occupy any platform
    socket interchangeably with ``TGMaster`` and armlet cores.
    """

    def __init__(self, sim: Simulator, name: str, image: bytes):
        super().__init__(sim, name)
        if len(image) % 4 != 0 or len(image) < CODE_OFFSET * 4:
            raise TGError(f"truncated TG image ({len(image)} bytes)")
        self.imem: List[int] = list(
            struct.unpack(f"<{len(image) // 4}I", image))
        if self.imem[0] != MAGIC:
            raise TGError(f"bad magic 0x{self.imem[0]:08x}")
        mode = _MODES_BY_CODE.get(self.imem[2])
        if mode is None:
            raise TGError(f"bad mode code {self.imem[2]}")
        if mode is ReplayMode.CLONING:
            raise TGError("the hardware TG does not implement cloning")
        self.mode = mode
        self.core_id = self.imem[1] >> 16
        self.n_instructions = self.imem[3]
        self.n_pool = self.imem[4]
        expected = CODE_OFFSET + 2 * self.n_instructions + self.n_pool
        if len(self.imem) != expected:
            raise TGError(f"image has {len(self.imem)} words, header "
                          f"implies {expected}")
        self._pool_offset = CODE_OFFSET + 2 * self.n_instructions
        self.port = OCPMasterPort(sim, f"{name}.ocp")
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0                      # instruction index
        self.halted = False
        self.halt_time: Optional[int] = None
        self.instructions_executed = 0
        self._process = None
        self._outstanding = []

    # ------------------------------------------------------------- surface

    def start(self) -> None:
        self.regs = [0] * TG_NUM_REGS
        self.pc = 0
        self.halted = False
        self.halt_time = None
        self._process = self.sim.spawn(self._run(), name=f"{self.name}.fsm")

    @property
    def finished(self) -> bool:
        return self.halted

    @property
    def completion_time(self) -> Optional[int]:
        return self.halt_time

    # --------------------------------------------------------------- core

    def _fetch_decode(self):
        """One instruction-memory access: two words -> decoded fields."""
        if not 0 <= self.pc < self.n_instructions:
            raise TGError(f"{self.name}: pc {self.pc} outside image")
        base = CODE_OFFSET + 2 * self.pc
        return decode_instruction(self.imem[base], self.imem[base + 1])

    def _pool_words(self, offset: int, count: int) -> List[int]:
        start = self._pool_offset + offset
        if offset < 0 or offset + count > self.n_pool:
            raise TGError(f"{self.name}: pool access [{offset}, "
                          f"{offset + count}) outside pool")
        return self.imem[start:start + count]

    def _run(self):
        regs = self.regs
        while True:
            instr = self._fetch_decode()
            self.pc += 1
            self.instructions_executed += 1
            op = instr.op
            if op == TGOp.IDLE:
                if instr.imm:
                    yield instr.imm
            elif op == TGOp.SET_REGISTER:
                regs[instr.a] = instr.imm
                yield 1
            elif op == TGOp.READ:
                regs[RDREG] = yield from self.port.read(regs[instr.a])
            elif op == TGOp.WRITE:
                yield from self.port.write(regs[instr.a], regs[instr.b])
            elif op == TGOp.BURST_READ:
                words = yield from self.port.burst_read(regs[instr.a],
                                                        instr.b)
                regs[RDREG] = words[-1]
            elif op == TGOp.BURST_WRITE:
                data = self._pool_words(instr.imm, instr.b)
                yield from self.port.burst_write(regs[instr.a], data)
            elif op == TGOp.READ_NB:
                reader = self.sim.spawn(
                    self.port.read(regs[instr.a]),
                    name=f"{self.name}.nb#{self.instructions_executed}")
                self._outstanding.append(reader)
                yield 1
            elif op == TGOp.FENCE:
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
            elif op == TGOp.IF:
                if Cond(instr.cond).evaluate(regs[instr.a], regs[instr.b]):
                    self.pc = instr.imm
                yield 1
            elif op == TGOp.JUMP:
                self.pc = instr.imm
                yield 1
            elif op == TGOp.HALT:
                for reader in self._outstanding:
                    if reader.alive:
                        yield reader
                self._outstanding = []
                break
            else:  # pragma: no cover - decode rejects unknown opcodes
                raise TGError(f"bad opcode {op}")
        self.halted = True
        self.halt_time = self.sim.now
        return self.halt_time
