"""Write-ahead journal for sweep execution: ``sweep.journal.jsonl``.

A 500-point overnight sweep that dies at point 412 must not restart
from scratch — the paper's trace-once-evaluate-cheaply economics only
hold if completed work survives crashes, hangs and Ctrl-C.  The journal
is the durability substrate: every state transition of every grid point
is appended (and fsynced) *before* the engine moves on, so
``repro-sweep --resume DIR`` can replay the file and re-run exactly the
unfinished points.

The file is JSON-lines; every record carries a CRC32 of its own
canonical JSON (the same checksum convention as the ``.trc``/``.tgp``
artifact headers and the result cache), so a half-written record from a
crash is distinguishable from silent corruption:

* a **torn final line** (the process died mid-append) is expected:
  it is dropped on load, and :meth:`SweepJournal.resume` truncates it
  away before appending so the resumed run starts on a fresh line;
* a **corrupt interior record** means the file was edited or damaged
  and raises :class:`~repro.artifacts.ChecksumMismatch` — resuming from
  an untrustworthy journal would silently skip work.

Record types (all carry ``"crc32"``; ``index`` is the grid-point
index from :func:`~repro.harness.parallel.expand_grid`):

========== ===========================================================
``header``      spec dict, total point count, package version
``started``     a worker picked the point up (``attempt`` counts from 0)
``ok``          terminal success: the picklable result ``summary`` + wall
                (+ the ``warmup`` snapshot digest on fast-forwarded
                points)
``failed``      one failed attempt: failure ``kind``/``message``/
                ``traceback``; ``final`` marks a terminal failure
``quarantined`` the point exhausted its retries; resume skips it unless
                asked to re-queue
``interrupted`` the operator stopped the sweep while this attempt ran
========== ===========================================================

:class:`JournalState` is the replayed view: which points are finished
(ok or terminally failed), how many attempts each consumed, and which
are merely *started* (in flight when the driver died).
"""

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.artifacts import ChecksumMismatch, ParseDiagnostic

__all__ = ["JOURNAL_FILENAME", "JournalState", "SweepJournal",
           "journal_path"]

JOURNAL_FILENAME = "sweep.journal.jsonl"


def journal_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / JOURNAL_FILENAME


def _record_crc(record: Dict) -> str:
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(blob.encode('utf-8')) & 0xFFFFFFFF:08x}"


def _spec_fingerprint(spec: Dict) -> str:
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(blob.encode('utf-8')) & 0xFFFFFFFF:08x}"


@dataclass
class JournalState:
    """The replayed view of a journal: what is finished, what remains."""

    spec: Optional[Dict] = None
    version: Optional[str] = None
    total: int = 0
    #: index -> terminal ``ok`` record (summary + wall + attempt).
    ok: Dict[int, Dict] = field(default_factory=dict)
    #: index -> terminal ``failed`` record (kind/message/traceback).
    failed: Dict[int, Dict] = field(default_factory=dict)
    quarantined: Set[int] = field(default_factory=set)
    #: points whose last record is ``started``/``interrupted`` — in
    #: flight when the previous driver stopped.
    in_flight: Set[int] = field(default_factory=set)
    #: index -> attempts consumed so far (count of ``started`` records).
    attempts: Dict[int, int] = field(default_factory=dict)
    #: a torn trailing record was dropped on load.
    torn_tail: bool = False
    #: byte offset of the end of the last valid record (newline
    #: included) — everything past it is torn/blank tail to discard
    #: before appending.
    valid_bytes: int = 0

    def finished(self, index: int) -> bool:
        return index in self.ok or index in self.failed

    @property
    def records(self) -> int:
        """Journalled point outcomes (not counting the header)."""
        return len(self.ok) + len(self.failed)

    def unfinished_of(self, total: int) -> Set[int]:
        return {i for i in range(total) if not self.finished(i)}


class SweepJournal:
    """Append-only, checksummed record of one sweep's execution.

    Use :meth:`create` for a fresh sweep and :meth:`resume` to continue
    an interrupted one; both leave the journal open for appending.
    Every ``record_*`` call flushes and fsyncs before returning — a
    record is on disk before the engine acts on it (write-ahead).
    """

    def __init__(self, path: Path, handle, state: JournalState):
        self.path = Path(path)
        self._handle = handle
        self.state = state

    # ------------------------------------------------------ construction

    @classmethod
    def create(cls, directory: Union[str, Path], spec: Dict,
               total: int, version: str) -> "SweepJournal":
        """Start a fresh journal; refuses to overwrite an existing one."""
        path = journal_path(directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            raise ParseDiagnostic(
                "journal already exists", path=path,
                hint="resume it with --resume, or point --journal at a "
                     "fresh directory")
        handle = open(path, "a")
        journal = cls(path, handle,
                      JournalState(spec=spec, version=version, total=total))
        journal._append({"type": "header", "spec": spec, "points": total,
                         "version": version,
                         "spec_crc32": _spec_fingerprint(spec)})
        return journal

    @classmethod
    def resume(cls, directory: Union[str, Path],
               spec: Optional[Dict] = None) -> "SweepJournal":
        """Load an existing journal and open it for appending.

        When ``spec`` is given it must fingerprint-match the journal's
        header — resuming a journal against a *different* sweep would
        serve wrong results.

        A torn tail (the previous run died mid-append) is truncated
        away *before* reopening for append; otherwise the first record
        of the resumed run would be glued onto the partial line,
        producing a corrupt interior record on the next replay.
        """
        path = journal_path(directory)
        state = cls.read_state(directory)
        if state.spec is None:
            raise ParseDiagnostic(
                "journal has no header record", path=path,
                hint="the file is empty or damaged; start a fresh sweep")
        if spec is not None and \
                _spec_fingerprint(spec) != _spec_fingerprint(state.spec):
            raise ParseDiagnostic(
                "journal was written by a different sweep spec",
                path=path,
                hint="resume without a spec file, or use a fresh "
                     "--journal directory for the new spec")
        cls._repair_tail(path, state)
        return cls(path, open(path, "a"), state)

    @staticmethod
    def _repair_tail(path: Path, state: JournalState) -> None:
        """Drop torn trailing bytes so appends start on a fresh line."""
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            last_byte = b""
            if size:
                handle.seek(size - 1)
                last_byte = handle.read(1)
            if size == state.valid_bytes and \
                    (size == 0 or last_byte == b"\n"):
                state.torn_tail = False
                return
            handle.truncate(state.valid_bytes)
            if state.valid_bytes:
                handle.seek(state.valid_bytes - 1)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        state.torn_tail = False

    @staticmethod
    def read_state(directory: Union[str, Path]) -> JournalState:
        """Replay a journal file into a :class:`JournalState`.

        A torn final line is dropped (a crash mid-append is exactly what
        the journal exists to survive); a corrupt *interior* record
        raises :class:`~repro.artifacts.ChecksumMismatch`.
        """
        path = journal_path(directory)
        state = JournalState()
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise ParseDiagnostic(
                "no sweep journal found", path=path,
                hint=f"expected {JOURNAL_FILENAME} in the sweep directory")
        raw_lines = data.split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()        # the file ends with a newline
        offset = 0
        for number, raw in enumerate(raw_lines, start=1):
            end = offset + len(raw)
            has_newline = end < len(data)     # data[end] == b"\n"
            line_bytes = end + (1 if has_newline else 0) - offset
            last = number == len(raw_lines)
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError:
                if not last:
                    raise ChecksumMismatch(
                        f"journal line {number} is not a valid record",
                        path=path,
                        hint="the journal was edited or damaged mid-file; "
                             "start a fresh sweep")
                record = None
            else:
                if not line.strip():
                    offset += line_bytes
                    state.valid_bytes = offset
                    continue
                record = _decode(path, number, line, last=last)
            if record is None:
                state.torn_tail = True
                break
            _replay(state, record)
            offset += line_bytes
            state.valid_bytes = offset
        return state

    # ----------------------------------------------------------- records

    def _append(self, record: Dict) -> None:
        record["crc32"] = _record_crc(record)
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        _replay(self.state, record)

    def record_started(self, index: int, attempt: int,
                       key: Optional[str] = None) -> None:
        self._append({"type": "started", "index": index,
                      "attempt": attempt, "key": key})

    def record_ok(self, index: int, attempt: int, summary: Dict,
                  wall: Optional[float] = None,
                  source: str = "simulated",
                  warmup: Optional[str] = None) -> None:
        """``warmup`` is the :func:`~repro.harness.cache.warmup_digest`
        of the snapshot a fast-forwarded point restored from; the key is
        present only on warm-restored records, so journals written
        without warm-up are byte-identical to earlier versions (and
        ``--resume`` replays the provenance exactly)."""
        record = {"type": "ok", "index": index, "attempt": attempt,
                  "summary": summary, "wall": wall, "source": source}
        if warmup is not None:
            record["warmup"] = warmup
        self._append(record)

    def record_failed(self, index: int, attempt: int, kind: str,
                      message: str, traceback: Optional[str] = None,
                      final: bool = False) -> None:
        self._append({"type": "failed", "index": index, "attempt": attempt,
                      "kind": kind, "message": message,
                      "traceback": traceback, "final": final})

    def record_quarantined(self, index: int, attempts: int) -> None:
        self._append({"type": "quarantined", "index": index,
                      "attempts": attempts})

    def record_interrupted(self, index: int, attempt: int) -> None:
        self._append({"type": "interrupted", "index": index,
                      "attempt": attempt})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<SweepJournal {self.path} "
                f"{self.state.records}/{self.state.total} journalled>")


# ------------------------------------------------------------- internals

def _decode(path: Path, number: int, line: str,
            last: bool) -> Optional[Dict]:
    """One journal line -> record dict; None for a tolerated torn tail."""
    try:
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError("record is not an object")
        claimed = record.pop("crc32")
    except (ValueError, KeyError):
        if last:
            return None
        raise ChecksumMismatch(
            f"journal line {number} is not a valid record", path=path,
            hint="the journal was edited or damaged mid-file; "
                 "start a fresh sweep")
    if _record_crc(record) != claimed:
        if last:
            return None
        raise ChecksumMismatch(
            f"journal line {number} fails its CRC32 checksum", path=path,
            hint="the journal was edited or damaged mid-file; "
                 "start a fresh sweep")
    return record


def _replay(state: JournalState, record: Dict) -> None:
    kind = record.get("type")
    index = record.get("index")
    if kind == "header":
        state.spec = record.get("spec")
        state.version = record.get("version")
        state.total = record.get("points", 0)
    elif kind == "started":
        state.attempts[index] = state.attempts.get(index, 0) + 1
        state.in_flight.add(index)
    elif kind == "ok":
        state.ok[index] = record
        state.in_flight.discard(index)
    elif kind == "failed":
        state.in_flight.discard(index)
        if record.get("final"):
            state.failed[index] = record
    elif kind == "quarantined":
        state.quarantined.add(index)
        state.in_flight.discard(index)
    elif kind == "interrupted":
        state.in_flight.add(index)
