"""Parameter sweeps: grids of TG-flow experiments from one spec.

Architectural exploration is "carrying out the same set of simulations
for each design alternative" — a sweep spec names the benchmark, the
core counts, the interconnects and the replay modes, and the runner
produces one :class:`~repro.harness.experiments.TGFlowResult` row per
grid point, plus table/CSV renderings.

Specs are plain dictionaries (JSON-friendly, used by ``repro-sweep``)::

    {
      "benchmark": "mp_matrix",
      "cores": [2, 4, 8],
      "interconnects": ["ahb", "xpipes"],
      "modes": ["reactive"],
      "app_params": {"n": 8}
    }

``run_sweep`` here executes the grid serially, in process, and keeps the
full platforms around for inspection.  The scalable path — a worker pool
with per-point crash isolation and an on-disk result cache — lives in
:mod:`repro.harness.parallel` / :mod:`repro.harness.cache` and shares
this module's :class:`SweepSpec` and renderers (see docs/SWEEPS.md).
"""

import copy
import csv
import io
from typing import Dict, List, Optional, Union

from repro.core.modes import ReplayMode
from repro.faults import FaultSpec
from repro.harness.experiments import TGFlowResult, tg_flow
from repro.stats import Table

_APP_NAMES = ("sp_matrix", "cacheloop", "mp_matrix", "des")

#: The pseudo-benchmark name for generated (trace-free) workloads; its
#: grid points carry a resolved traffic-spec dict instead of an app.
SYNTHETIC = "synthetic"


def _resolve_app(name: str):
    from repro import apps
    if name not in _APP_NAMES:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"choose from {_APP_NAMES + (SYNTHETIC,)}")
    return getattr(apps, name)


def _validated_cores(cores: List[int]) -> List[int]:
    """Core counts must be ints >= 1; duplicates collapse, order kept."""
    if not cores:
        raise ValueError("sweep needs at least one core count")
    validated: List[int] = []
    for value in cores:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"core counts must be integers, got {value!r}")
        if value < 1:
            raise ValueError(f"core counts must be >= 1, got {value}")
        if value not in validated:
            validated.append(value)
    return validated


def _deduped(values: List) -> List:
    """Drop duplicate axis values, preserving first-seen order."""
    unique = []
    for value in values:
        if value not in unique:
            unique.append(value)
    return unique


class SweepSpec:
    """A validated sweep description.

    Every axis is validated on construction: the benchmark must be one of
    the four paper apps (or ``"synthetic"``), core counts must be
    positive integers, and duplicate axis values (which would
    double-simulate grid points) are collapsed while preserving order.
    An optional fault specification applies to the TG run of *every*
    grid point (degraded-platform sweeps); it participates in result
    cache keys.

    With ``benchmark="synthetic"`` the spec carries a ``traffic``
    template (a :class:`~repro.apps.synthetic.TrafficSpec` dict — its
    ``n_cores``/``mode`` are overridden per grid point) plus two
    optional extra axes: ``loads`` (offered-load fractions, the
    saturation-curve x-axis) and ``patterns`` (spatial patterns).

    ``warmup_cycles``/``warmup_fabric`` arm mixed-fidelity fast-forward
    for every grid point (see docs/CHECKPOINT.md); ``jobs`` pins the
    worker count in the spec itself (``"auto"`` or ``0`` = all CPUs;
    the ``--jobs`` flag overrides).
    """

    #: Fabrics a warm-up prefix may run on (the platform's full set).
    WARMUP_FABRICS = ("ahb", "stbus", "tlm", "xpipes")

    def __init__(self, benchmark: str, cores: List[int],
                 interconnects: Optional[List[str]] = None,
                 modes: Optional[List[str]] = None,
                 app_params: Optional[Dict] = None,
                 fault_spec: Union[None, Dict, FaultSpec] = None,
                 fault_seed: int = 0,
                 traffic: Optional[Dict] = None,
                 loads: Optional[List[float]] = None,
                 patterns: Optional[List[str]] = None,
                 backend: str = "classic",
                 warmup_cycles: Optional[int] = None,
                 warmup_fabric: str = "tlm",
                 jobs: Union[None, int, str] = None):
        from repro.kernel.backend import KERNEL_BACKENDS
        if backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel backend {backend!r}; choose "
                             f"from {sorted(KERNEL_BACKENDS)}")
        self.backend = backend
        if warmup_cycles is not None:
            if isinstance(warmup_cycles, bool) \
                    or not isinstance(warmup_cycles, int) \
                    or warmup_cycles < 1:
                raise ValueError(f"warmup_cycles must be an int >= 1, "
                                 f"got {warmup_cycles!r}")
            if warmup_fabric not in self.WARMUP_FABRICS:
                raise ValueError(
                    f"unknown warmup_fabric {warmup_fabric!r}; choose "
                    f"from {self.WARMUP_FABRICS}")
        self.warmup_cycles = warmup_cycles
        self.warmup_fabric = warmup_fabric
        if jobs == "auto":
            jobs = 0
        if jobs is not None and (isinstance(jobs, bool)
                                 or not isinstance(jobs, int)
                                 or jobs < 0):
            raise ValueError(f"jobs must be 'auto' or an int >= 0 "
                             f"(0 = all CPUs), got {jobs!r}")
        self.jobs = jobs
        self.benchmark = benchmark
        self.app = None if benchmark == SYNTHETIC \
            else _resolve_app(benchmark)
        self.cores = _validated_cores(cores)
        self.interconnects = _deduped(list(interconnects or ["ahb"]))
        self.modes = _deduped([ReplayMode.from_name(mode)
                               for mode in (modes or ["reactive"])])
        self.app_params = copy.deepcopy(dict(app_params or {}))
        if isinstance(fault_spec, dict):
            fault_spec = FaultSpec.from_dict(fault_spec)
        self.fault_spec: Optional[Dict] = (
            fault_spec.to_dict() if isinstance(fault_spec, FaultSpec)
            else None)
        if isinstance(fault_seed, bool) or not isinstance(fault_seed, int):
            raise ValueError(f"fault_seed must be an int, got {fault_seed!r}")
        self.fault_seed = fault_seed
        self.traffic, self.loads, self.patterns = \
            self._validated_traffic(traffic, loads, patterns)

    def _validated_traffic(self, traffic, loads, patterns):
        if self.benchmark != SYNTHETIC:
            if traffic is not None or loads or patterns:
                raise ValueError(
                    "traffic/loads/patterns only apply to "
                    "benchmark 'synthetic'")
            return None, None, None
        from repro.apps.synthetic import (
            PATTERNS,
            TrafficSpec,
            TrafficSpecError,
        )
        if not isinstance(traffic, dict):
            raise ValueError(
                "benchmark 'synthetic' needs a 'traffic' template dict "
                "(see docs/TRAFFIC.md)")
        loads = _deduped(list(loads)) if loads else None
        if loads is not None:
            for load in loads:
                if isinstance(load, bool) \
                        or not isinstance(load, (int, float)) \
                        or not 0.0 < float(load) <= 1.0:
                    raise ValueError(
                        f"loads must be fractions in (0, 1], got {load!r}")
        patterns = _deduped(list(patterns)) if patterns else None
        if patterns is not None:
            for pattern in patterns:
                if pattern not in PATTERNS:
                    raise ValueError(
                        f"unknown pattern {pattern!r}; "
                        f"choose from {PATTERNS}")
        # validate the fully-resolved template for every grid combination
        # up front — a bad spec must fail at submission, not at point 37
        template = dict(traffic)
        for n_cores in self.cores:
            for mode in self.modes:
                for pattern in (patterns or [None]):
                    for load in (loads or [None]):
                        spec = resolve_traffic(template, n_cores,
                                               mode.value, pattern, load)
                        try:
                            TrafficSpec.from_dict(spec)
                        except TrafficSpecError as error:
                            raise ValueError(
                                f"invalid traffic spec for "
                                f"{n_cores} cores"
                                + (f", pattern {pattern!r}"
                                   if pattern else "")
                                + (f", load {load:g}" if load else "")
                                + f": {error.message}") from error
        normalised = TrafficSpec.from_dict(resolve_traffic(
            template, self.cores[0], self.modes[0].value,
            patterns[0] if patterns else None,
            loads[0] if loads else None)).to_dict()
        # keep the *template* fields the user wrote (minus the per-point
        # overrides) but in normalised, JSON-stable form
        for key in ("n_cores", "mode"):
            normalised.pop(key)
        if patterns is not None:
            normalised.pop("pattern")
        if loads is not None:
            normalised.pop("load")
        for key in list(normalised):
            if key not in template and normalised[key] is None:
                normalised.pop(key)
        return normalised, loads, patterns

    @staticmethod
    def from_dict(data: Dict) -> "SweepSpec":
        known = {"benchmark", "cores", "interconnects", "modes",
                 "app_params", "fault_spec", "fault_seed",
                 "traffic", "loads", "patterns", "backend",
                 "warmup_cycles", "warmup_fabric", "jobs"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep keys: {sorted(unknown)}")
        return SweepSpec(
            benchmark=data["benchmark"],
            cores=data["cores"],
            interconnects=data.get("interconnects"),
            modes=data.get("modes"),
            app_params=data.get("app_params"),
            fault_spec=data.get("fault_spec"),
            fault_seed=data.get("fault_seed", 0),
            traffic=data.get("traffic"),
            loads=data.get("loads"),
            patterns=data.get("patterns"),
            backend=data.get("backend", "classic"),
            warmup_cycles=data.get("warmup_cycles"),
            warmup_fabric=data.get("warmup_fabric", "tlm"),
            jobs=data.get("jobs"))

    def to_dict(self) -> Dict:
        """The canonical JSON-friendly form; round-trips via ``from_dict``.

        This is what the sweep journal stores in its header, so a
        ``--resume`` can rebuild the exact grid without the spec file.
        """
        data = {
            "benchmark": self.benchmark,
            "cores": list(self.cores),
            "interconnects": list(self.interconnects),
            "modes": [mode.value for mode in self.modes],
            "app_params": copy.deepcopy(self.app_params),
            "fault_spec": copy.deepcopy(self.fault_spec),
            "fault_seed": self.fault_seed,
        }
        if self.backend != "classic":
            data["backend"] = self.backend
        if self.warmup_cycles is not None:
            data["warmup_cycles"] = self.warmup_cycles
            data["warmup_fabric"] = self.warmup_fabric
        if self.jobs is not None:
            data["jobs"] = self.jobs
        if self.benchmark == SYNTHETIC:
            data["traffic"] = copy.deepcopy(self.traffic)
            if self.loads is not None:
                data["loads"] = list(self.loads)
            if self.patterns is not None:
                data["patterns"] = list(self.patterns)
        return data

    @property
    def points(self) -> int:
        count = len(self.cores) * len(self.interconnects) * len(self.modes)
        if self.benchmark == SYNTHETIC:
            count *= len(self.loads or [None]) \
                * len(self.patterns or [None])
        return count


def resolve_traffic(template: Dict, n_cores: int, mode: str,
                    pattern: Optional[str] = None,
                    load: Optional[float] = None) -> Dict:
    """One grid point's fully-resolved traffic-spec dict."""
    resolved = copy.deepcopy(dict(template))
    resolved["n_cores"] = n_cores
    resolved["mode"] = mode
    if pattern is not None:
        resolved["pattern"] = pattern
    if load is not None:
        resolved["load"] = load
    return resolved


def run_sweep(spec: SweepSpec) -> List[TGFlowResult]:
    """Run every grid point serially; returns results in grid order.

    Each point receives its own deep copy of ``spec.app_params`` — an app
    that mutates a nested parameter value (a list it appends to, a dict it
    fills in) must not poison later grid points, and the spec itself stays
    pristine for re-use.

    For parallel execution with caching and crash isolation, use
    :func:`repro.harness.parallel.run_sweep_parallel`.
    """
    if spec.benchmark == SYNTHETIC:
        from repro.apps.synthetic import TrafficSpec, synthetic_flow
        results = []
        for interconnect in spec.interconnects:
            for mode in spec.modes:
                for n_cores in spec.cores:
                    for pattern in (spec.patterns or [None]):
                        for load in (spec.loads or [None]):
                            traffic = TrafficSpec.from_dict(resolve_traffic(
                                spec.traffic, n_cores, mode.value,
                                pattern, load))
                            results.append(synthetic_flow(
                                traffic, interconnect,
                                config_overrides=_fault_overrides(spec),
                                backend=spec.backend,
                                warmup_cycles=spec.warmup_cycles,
                                warmup_fabric=spec.warmup_fabric))
        return results
    results = []
    for interconnect in spec.interconnects:
        for mode in spec.modes:
            for n_cores in spec.cores:
                params = copy.deepcopy(spec.app_params)
                results.append(tg_flow(
                    spec.app, n_cores, interconnect=interconnect,
                    mode=mode, app_params=params or None,
                    fault_spec=copy.deepcopy(spec.fault_spec),
                    fault_seed=spec.fault_seed,
                    backend=spec.backend,
                    warmup_cycles=spec.warmup_cycles,
                    warmup_fabric=spec.warmup_fabric))
    return results


def _fault_overrides(spec: SweepSpec) -> Optional[Dict]:
    if spec.fault_spec is None:
        return None
    return {"fault_spec": copy.deepcopy(spec.fault_spec),
            "fault_seed": spec.fault_seed}


def _is_synthetic_row(result) -> bool:
    return getattr(result, "offered_load", None) is not None


def sweep_table(results: List, title: Optional[str] = None) -> str:
    """Render sweep results as a fixed-width table.

    Accepts rich :class:`TGFlowResult` rows (serial sweeps), the
    picklable :class:`~repro.harness.parallel.PointResult` rows
    (parallel and cached sweeps) and
    :class:`~repro.apps.synthetic.SyntheticResult` rows, which get a
    load/latency column layout instead of the reference-comparison one.
    A *mixed* result list (synthetic and trace-benchmark rows together,
    e.g. concatenated sweeps) gets the union layout: one header with
    both column families, each row padded with ``-`` in the columns
    that do not apply to it.  Failed grid points render as a ``FAILED``
    row instead of fake numbers.
    """
    flags = [_is_synthetic_row(r) for r in results]
    if results and all(flags):
        return _synthetic_table(results, title)
    if any(flags):
        return _mixed_table(results, title)
    table = Table(["benchmark", "fabric", "mode", "#IPs", "ARM cycles",
                   "TG cycles", "error", "gain", "event gain"],
                  title=title)
    for result in results:
        if getattr(result, "status", "ok") != "ok":
            failure = getattr(result, "failure", None)
            label = "FAILED" if failure is None \
                else f"FAILED:{failure.kind}"
            table.add_row(result.benchmark, result.interconnect,
                          result.mode.value, f"{result.n_cores}P",
                          "-", "-", label, "-", "-")
            continue
        table.add_row(result.benchmark, result.interconnect,
                      result.mode.value, f"{result.n_cores}P",
                      result.ref_cycles, result.tg_cycles,
                      f"{result.error:.2%}", f"{result.gain:.2f}x",
                      f"{result.event_gain:.2f}x")
    return table.render()


def _synthetic_table(results: List, title: Optional[str]) -> str:
    table = Table(["pattern", "fabric", "mode", "#IPs", "load",
                   "TG cycles", "issued", "avg lat", "max lat",
                   "words/kcyc"], title=title)
    for result in results:
        pattern = getattr(result, "pattern", None) or "?"
        load = getattr(result, "offered_load", None)
        load_text = f"{load:.2f}" if load is not None else "-"
        if getattr(result, "status", "ok") != "ok":
            failure = getattr(result, "failure", None)
            label = "FAILED" if failure is None \
                else f"FAILED:{failure.kind}"
            table.add_row(pattern, result.interconnect,
                          result.mode.value, f"{result.n_cores}P",
                          load_text, "-", "-", label, "-", "-")
            continue
        table.add_row(pattern, result.interconnect, result.mode.value,
                      f"{result.n_cores}P", load_text, result.tg_cycles,
                      result.issued, f"{result.latency_avg:.1f}",
                      result.latency_max,
                      f"{result.throughput_wpkc:.1f}")
    return table.render()


def _mixed_table(results: List, title: Optional[str]) -> str:
    """Union layout for grids mixing synthetic and trace-benchmark rows.

    The header is computed once for the whole list; every row fills the
    columns its family defines and pads the rest with ``-`` — the old
    behaviour routed *all* rows through the synthetic layout, which
    crashed on trace-benchmark rows (no ``issued``/latency columns).
    """
    table = Table(["benchmark", "fabric", "mode", "#IPs",
                   "ARM cycles", "TG cycles", "error", "gain",
                   "load", "issued", "avg lat", "words/kcyc"],
                  title=title)
    for result in results:
        synthetic = _is_synthetic_row(result)
        name = result.benchmark
        if synthetic:
            name = getattr(result, "pattern", None) or name
        if getattr(result, "status", "ok") != "ok":
            failure = getattr(result, "failure", None)
            label = "FAILED" if failure is None \
                else f"FAILED:{failure.kind}"
            table.add_row(name, result.interconnect, result.mode.value,
                          f"{result.n_cores}P", "-", "-", label, "-",
                          "-", "-", "-", "-")
            continue
        if synthetic:
            load = getattr(result, "offered_load", None)
            table.add_row(name, result.interconnect, result.mode.value,
                          f"{result.n_cores}P", "-", result.tg_cycles,
                          "-", "-",
                          f"{load:.2f}" if load is not None else "-",
                          result.issued, f"{result.latency_avg:.1f}",
                          f"{result.throughput_wpkc:.1f}")
        else:
            table.add_row(name, result.interconnect, result.mode.value,
                          f"{result.n_cores}P", result.ref_cycles,
                          result.tg_cycles, f"{result.error:.2%}",
                          f"{result.gain:.2f}x", "-", "-", "-", "-")
    return table.render()


#: Extra CSV columns appended when any row is synthetic.
_SYNTHETIC_CSV_COLUMNS = ("pattern", "offered_load", "scheduled_load",
                          "realised_load", "issued", "latency_avg",
                          "latency_max", "throughput_wpkc")


def sweep_csv(results: List) -> str:
    """Render sweep results as CSV text (RFC-4180 quoting).

    Values containing commas, quotes or newlines (e.g. a fault-spec
    axis value rendered into a column, or a failure status) are
    properly quoted — plain ``",".join`` would corrupt such rows.  The
    trailing ``status`` column is ``ok``, or ``failed:<kind>`` with the
    failure-taxonomy kind (``worker-crash`` | ``timeout`` |
    ``simulation-error`` | ``interrupted``) when the row carries a
    typed failure; failed rows carry zeros in the numeric columns.
    Synthetic rows append the load/latency columns; classic rows leave
    them empty.
    """
    synthetic = any(_is_synthetic_row(r) for r in results)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    header = ["benchmark", "interconnect", "mode", "n_cores",
              "ref_cycles", "tg_cycles", "error", "ref_wall", "tg_wall",
              "gain", "event_gain", "status"]
    if synthetic:
        header += list(_SYNTHETIC_CSV_COLUMNS)
    writer.writerow(header)
    for result in results:
        status = getattr(result, "status", "ok")
        failure = getattr(result, "failure", None)
        if status != "ok" and failure is not None:
            status = f"{status}:{failure.kind}"
        row = [result.benchmark, result.interconnect, result.mode.value,
               result.n_cores, result.ref_cycles, result.tg_cycles,
               result.error, result.ref_wall, result.tg_wall,
               result.gain, result.event_gain, status]
        if synthetic:
            if _is_synthetic_row(result):
                # a failed synthetic row can carry None in columns that
                # were never measured; emit empty cells, not "None"
                extras = [getattr(result, name, None)
                          for name in _SYNTHETIC_CSV_COLUMNS]
                row += [value if value is not None else ""
                        for value in extras]
            else:
                row += [""] * len(_SYNTHETIC_CSV_COLUMNS)
        writer.writerow(row)
    return buffer.getvalue()
