"""Parameter sweeps: grids of TG-flow experiments from one spec.

Architectural exploration is "carrying out the same set of simulations
for each design alternative" — a sweep spec names the benchmark, the
core counts, the interconnects and the replay modes, and the runner
produces one :class:`~repro.harness.experiments.TGFlowResult` row per
grid point, plus table/CSV renderings.

Specs are plain dictionaries (JSON-friendly, used by ``repro-sweep``)::

    {
      "benchmark": "mp_matrix",
      "cores": [2, 4, 8],
      "interconnects": ["ahb", "xpipes"],
      "modes": ["reactive"],
      "app_params": {"n": 8}
    }
"""

from typing import Dict, List, Optional

from repro.core.modes import ReplayMode
from repro.harness.experiments import TGFlowResult, tg_flow
from repro.stats import Table

_APP_NAMES = ("sp_matrix", "cacheloop", "mp_matrix", "des")


def _resolve_app(name: str):
    from repro import apps
    if name not in _APP_NAMES:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"choose from {_APP_NAMES}")
    return getattr(apps, name)


class SweepSpec:
    """A validated sweep description."""

    def __init__(self, benchmark: str, cores: List[int],
                 interconnects: Optional[List[str]] = None,
                 modes: Optional[List[str]] = None,
                 app_params: Optional[Dict] = None):
        self.benchmark = benchmark
        self.app = _resolve_app(benchmark)
        if not cores:
            raise ValueError("sweep needs at least one core count")
        self.cores = list(cores)
        self.interconnects = list(interconnects or ["ahb"])
        self.modes = [ReplayMode.from_name(mode)
                      for mode in (modes or ["reactive"])]
        self.app_params = dict(app_params or {})

    @staticmethod
    def from_dict(data: Dict) -> "SweepSpec":
        known = {"benchmark", "cores", "interconnects", "modes",
                 "app_params"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep keys: {sorted(unknown)}")
        return SweepSpec(
            benchmark=data["benchmark"],
            cores=data["cores"],
            interconnects=data.get("interconnects"),
            modes=data.get("modes"),
            app_params=data.get("app_params"))

    @property
    def points(self) -> int:
        return len(self.cores) * len(self.interconnects) * len(self.modes)


def run_sweep(spec: SweepSpec) -> List[TGFlowResult]:
    """Run every grid point; returns results in grid order."""
    results = []
    for interconnect in spec.interconnects:
        for mode in spec.modes:
            for n_cores in spec.cores:
                results.append(tg_flow(
                    spec.app, n_cores, interconnect=interconnect,
                    mode=mode, app_params=spec.app_params or None))
    return results


def sweep_table(results: List[TGFlowResult],
                title: Optional[str] = None) -> str:
    """Render sweep results as a fixed-width table."""
    table = Table(["benchmark", "fabric", "mode", "#IPs", "ARM cycles",
                   "TG cycles", "error", "gain", "event gain"],
                  title=title)
    for result in results:
        table.add_row(result.benchmark, result.interconnect,
                      result.mode.value, f"{result.n_cores}P",
                      result.ref_cycles, result.tg_cycles,
                      f"{result.error:.2%}", f"{result.gain:.2f}x",
                      f"{result.event_gain:.2f}x")
    return table.render()


def sweep_csv(results: List[TGFlowResult]) -> str:
    """Render sweep results as CSV text."""
    lines = ["benchmark,interconnect,mode,n_cores,ref_cycles,tg_cycles,"
             "error,ref_wall,tg_wall,gain,event_gain"]
    for result in results:
        lines.append(",".join(str(value) for value in (
            result.benchmark, result.interconnect, result.mode.value,
            result.n_cores, result.ref_cycles, result.tg_cycles,
            result.error, result.ref_wall, result.tg_wall, result.gain,
            result.event_gain)))
    return "\n".join(lines) + "\n"
