"""Parameter sweeps: grids of TG-flow experiments from one spec.

Architectural exploration is "carrying out the same set of simulations
for each design alternative" — a sweep spec names the benchmark, the
core counts, the interconnects and the replay modes, and the runner
produces one :class:`~repro.harness.experiments.TGFlowResult` row per
grid point, plus table/CSV renderings.

Specs are plain dictionaries (JSON-friendly, used by ``repro-sweep``)::

    {
      "benchmark": "mp_matrix",
      "cores": [2, 4, 8],
      "interconnects": ["ahb", "xpipes"],
      "modes": ["reactive"],
      "app_params": {"n": 8}
    }

``run_sweep`` here executes the grid serially, in process, and keeps the
full platforms around for inspection.  The scalable path — a worker pool
with per-point crash isolation and an on-disk result cache — lives in
:mod:`repro.harness.parallel` / :mod:`repro.harness.cache` and shares
this module's :class:`SweepSpec` and renderers (see docs/SWEEPS.md).
"""

import copy
from typing import Dict, List, Optional, Union

from repro.core.modes import ReplayMode
from repro.faults import FaultSpec
from repro.harness.experiments import TGFlowResult, tg_flow
from repro.stats import Table

_APP_NAMES = ("sp_matrix", "cacheloop", "mp_matrix", "des")


def _resolve_app(name: str):
    from repro import apps
    if name not in _APP_NAMES:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"choose from {_APP_NAMES}")
    return getattr(apps, name)


def _validated_cores(cores: List[int]) -> List[int]:
    """Core counts must be ints >= 1; duplicates collapse, order kept."""
    if not cores:
        raise ValueError("sweep needs at least one core count")
    validated: List[int] = []
    for value in cores:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"core counts must be integers, got {value!r}")
        if value < 1:
            raise ValueError(f"core counts must be >= 1, got {value}")
        if value not in validated:
            validated.append(value)
    return validated


def _deduped(values: List) -> List:
    """Drop duplicate axis values, preserving first-seen order."""
    unique = []
    for value in values:
        if value not in unique:
            unique.append(value)
    return unique


class SweepSpec:
    """A validated sweep description.

    Every axis is validated on construction: the benchmark must be one of
    the four paper apps, core counts must be positive integers, and
    duplicate axis values (which would double-simulate grid points) are
    collapsed while preserving order.  An optional fault specification
    applies to the TG run of *every* grid point (degraded-platform
    sweeps); it participates in result cache keys.
    """

    def __init__(self, benchmark: str, cores: List[int],
                 interconnects: Optional[List[str]] = None,
                 modes: Optional[List[str]] = None,
                 app_params: Optional[Dict] = None,
                 fault_spec: Union[None, Dict, FaultSpec] = None,
                 fault_seed: int = 0):
        self.benchmark = benchmark
        self.app = _resolve_app(benchmark)
        self.cores = _validated_cores(cores)
        self.interconnects = _deduped(list(interconnects or ["ahb"]))
        self.modes = _deduped([ReplayMode.from_name(mode)
                               for mode in (modes or ["reactive"])])
        self.app_params = copy.deepcopy(dict(app_params or {}))
        if isinstance(fault_spec, dict):
            fault_spec = FaultSpec.from_dict(fault_spec)
        self.fault_spec: Optional[Dict] = (
            fault_spec.to_dict() if isinstance(fault_spec, FaultSpec)
            else None)
        if isinstance(fault_seed, bool) or not isinstance(fault_seed, int):
            raise ValueError(f"fault_seed must be an int, got {fault_seed!r}")
        self.fault_seed = fault_seed

    @staticmethod
    def from_dict(data: Dict) -> "SweepSpec":
        known = {"benchmark", "cores", "interconnects", "modes",
                 "app_params", "fault_spec", "fault_seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep keys: {sorted(unknown)}")
        return SweepSpec(
            benchmark=data["benchmark"],
            cores=data["cores"],
            interconnects=data.get("interconnects"),
            modes=data.get("modes"),
            app_params=data.get("app_params"),
            fault_spec=data.get("fault_spec"),
            fault_seed=data.get("fault_seed", 0))

    def to_dict(self) -> Dict:
        """The canonical JSON-friendly form; round-trips via ``from_dict``.

        This is what the sweep journal stores in its header, so a
        ``--resume`` can rebuild the exact grid without the spec file.
        """
        return {
            "benchmark": self.benchmark,
            "cores": list(self.cores),
            "interconnects": list(self.interconnects),
            "modes": [mode.value for mode in self.modes],
            "app_params": copy.deepcopy(self.app_params),
            "fault_spec": copy.deepcopy(self.fault_spec),
            "fault_seed": self.fault_seed,
        }

    @property
    def points(self) -> int:
        return len(self.cores) * len(self.interconnects) * len(self.modes)


def run_sweep(spec: SweepSpec) -> List[TGFlowResult]:
    """Run every grid point serially; returns results in grid order.

    Each point receives its own deep copy of ``spec.app_params`` — an app
    that mutates a nested parameter value (a list it appends to, a dict it
    fills in) must not poison later grid points, and the spec itself stays
    pristine for re-use.

    For parallel execution with caching and crash isolation, use
    :func:`repro.harness.parallel.run_sweep_parallel`.
    """
    results = []
    for interconnect in spec.interconnects:
        for mode in spec.modes:
            for n_cores in spec.cores:
                params = copy.deepcopy(spec.app_params)
                results.append(tg_flow(
                    spec.app, n_cores, interconnect=interconnect,
                    mode=mode, app_params=params or None,
                    fault_spec=copy.deepcopy(spec.fault_spec),
                    fault_seed=spec.fault_seed))
    return results


def sweep_table(results: List, title: Optional[str] = None) -> str:
    """Render sweep results as a fixed-width table.

    Accepts both rich :class:`TGFlowResult` rows (serial sweeps) and the
    picklable :class:`~repro.harness.parallel.PointResult` rows (parallel
    and cached sweeps).  Failed grid points render as a ``FAILED`` row
    instead of fake numbers.
    """
    table = Table(["benchmark", "fabric", "mode", "#IPs", "ARM cycles",
                   "TG cycles", "error", "gain", "event gain"],
                  title=title)
    for result in results:
        if getattr(result, "status", "ok") != "ok":
            failure = getattr(result, "failure", None)
            label = "FAILED" if failure is None \
                else f"FAILED:{failure.kind}"
            table.add_row(result.benchmark, result.interconnect,
                          result.mode.value, f"{result.n_cores}P",
                          "-", "-", label, "-", "-")
            continue
        table.add_row(result.benchmark, result.interconnect,
                      result.mode.value, f"{result.n_cores}P",
                      result.ref_cycles, result.tg_cycles,
                      f"{result.error:.2%}", f"{result.gain:.2f}x",
                      f"{result.event_gain:.2f}x")
    return table.render()


def sweep_csv(results: List) -> str:
    """Render sweep results as CSV text.

    The trailing ``status`` column is ``ok``, or ``failed:<kind>`` with
    the failure-taxonomy kind (``worker-crash`` | ``timeout`` |
    ``simulation-error`` | ``interrupted``) when the row carries a typed
    failure; failed rows carry zeros in the numeric columns.
    """
    lines = ["benchmark,interconnect,mode,n_cores,ref_cycles,tg_cycles,"
             "error,ref_wall,tg_wall,gain,event_gain,status"]
    for result in results:
        status = getattr(result, "status", "ok")
        failure = getattr(result, "failure", None)
        if status != "ok" and failure is not None:
            status = f"{status}:{failure.kind}"
        lines.append(",".join(str(value) for value in (
            result.benchmark, result.interconnect, result.mode.value,
            result.n_cores, result.ref_cycles, result.tg_cycles,
            result.error, result.ref_wall, result.tg_wall, result.gain,
            result.event_gain, status)))
    return "\n".join(lines) + "\n"
