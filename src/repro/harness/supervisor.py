"""Worker-pool supervision for parallel sweeps.

:mod:`concurrent.futures` treats a worker pool as one fragile unit: a
worker that dies takes the whole pool down (``BrokenProcessPool``), a
``future.cancel()`` on a running point is a no-op, and there is no way
to tell "the simulation raised" from "the process was OOM-killed".  A
long design-space-exploration sweep needs the opposite: per-worker
process handles, so one dead or hung worker is killed, reaped and
replaced without disturbing the other lanes.

:class:`WorkerSupervisor` owns N ``multiprocessing.Process`` children.
Each worker has a private task queue (so the supervisor always knows
which point a worker is holding) and shares one result queue on which
it reports ``started`` (pickup), ``done`` (a summary dict) and periodic
``heartbeat`` messages from a daemon thread.  The supervisor turns
queue traffic plus process liveness into typed :class:`WorkerEvent`
streams:

* ``started`` — the worker picked the point up (per-point timeout
  clocks start *here*, not at submission);
* ``result`` — the point finished with a summary (ok or failed);
* ``crashed`` — the worker process died mid-point (SIGKILL, OOM,
  segfault) or stopped heartbeating for ``heartbeat_timeout_s``
  (hung in a non-Python blocking call); the worker is hard-killed
  and respawned;
* ``timeout`` — the point exceeded its wall-clock budget measured
  from pickup; the worker is hard-killed and respawned.

:meth:`WorkerSupervisor.shutdown` guarantees that **no child process
survives** the sweep, graceful or not: sentinel, join, SIGTERM, then
SIGKILL, in that order, with bounded waits.

The typed failure taxonomy (:class:`SweepPointFailure`) and the
interrupt carrier (:class:`SweepInterrupted`) live here too, shared by
the execution engine in :mod:`repro.harness.parallel`, the journal and
the CLI.
"""

import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional

__all__ = [
    "EXIT_INTERRUPTED",
    "FAILURE_KINDS",
    "INTERRUPTED",
    "SIMULATION_ERROR",
    "SweepInterrupted",
    "SweepPointFailure",
    "TIMEOUT",
    "WORKER_CRASH",
    "WorkerEvent",
    "WorkerSupervisor",
]

#: Exit status of ``repro-sweep`` when the operator interrupted the
#: sweep (SIGINT/SIGTERM) and the journal/partial results were flushed.
#: Distinct from 1 (failed points) and the artifact codes 3-7.
EXIT_INTERRUPTED = 8

# ------------------------------------------------------ failure taxonomy

#: The worker process died mid-point (or stopped heartbeating).
WORKER_CRASH = "worker-crash"
#: The point exceeded its wall-clock budget, measured from pickup.
TIMEOUT = "timeout"
#: The simulation itself raised — same inputs will fail the same way.
SIMULATION_ERROR = "simulation-error"
#: The operator stopped the sweep before the point finished.
INTERRUPTED = "interrupted"

FAILURE_KINDS = (WORKER_CRASH, TIMEOUT, SIMULATION_ERROR, INTERRUPTED)

#: Kinds worth retrying: the failure came from the execution machinery,
#: not from the (deterministic) simulation, so a re-run can succeed.
_TRANSIENT_KINDS = frozenset({WORKER_CRASH, TIMEOUT})


@dataclass(frozen=True)
class SweepPointFailure:
    """Why one grid point failed, as typed data.

    ``kind`` is one of :data:`FAILURE_KINDS`; ``transient`` failures
    (worker crash, timeout) may succeed on retry, deterministic ones
    (simulation error) will not.  ``attempts`` counts how many times the
    point was tried in total.
    """

    kind: str
    message: str
    traceback: Optional[str] = None
    attempts: int = 1

    @property
    def transient(self) -> bool:
        return self.kind in _TRANSIENT_KINDS

    def as_dict(self) -> Dict:
        return {"kind": self.kind, "message": self.message,
                "traceback": self.traceback, "attempts": self.attempts,
                "transient": self.transient}

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message} (attempt {self.attempts})"


class SweepInterrupted(Exception):
    """The sweep was stopped by the operator before completing.

    Carries the partial ``results`` list (one row per grid point;
    unfinished points are marked ``interrupted``) so the CLI can render
    the partial table/CSV, plus the journal directory for the
    one-line resume hint.
    """

    def __init__(self, results: List, journal_dir: Optional[str] = None):
        count = sum(1 for r in results
                    if getattr(r, "status", "ok") == "ok")
        super().__init__(
            f"sweep interrupted after {count}/{len(results)} point(s)")
        self.results = results
        self.journal_dir = journal_dir


# ------------------------------------------------------------ worker side

#: Test-only knobs (set the env vars in tests to exercise crash paths).
#: ``CRASH_INDEX`` — any worker handed that grid-point index dies with
#: ``os._exit`` after reporting pickup (a deterministic mid-point kill).
_TEST_CRASH_INDEX_ENV = "REPRO_SWEEP_TEST_CRASH_INDEX"
#: ``CRASH_ONCE`` — the first worker to claim the named marker file dies
#: mid-point, exactly once across the pool (exercises crash + retry).
_TEST_CRASH_ONCE_ENV = "REPRO_SWEEP_TEST_CRASH_ONCE"
#: ``NO_HEARTBEAT`` — workers skip the heartbeat thread, so the
#: supervisor's hang detection sees a silent (hung) worker.
_TEST_NO_HEARTBEAT_ENV = "REPRO_SWEEP_TEST_NO_HEARTBEAT"

#: Seconds between worker heartbeats (a daemon thread in each worker).
HEARTBEAT_INTERVAL_S = 0.5


def _heartbeat_loop(result_queue, worker_id: int,
                    stop: threading.Event) -> None:
    while not stop.wait(HEARTBEAT_INTERVAL_S):
        try:
            result_queue.put(("heartbeat", worker_id, None, None))
        except (OSError, ValueError):
            return                  # queue closed: parent is gone


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Body of one pool worker: loop over tasks until the sentinel.

    SIGINT is ignored — a terminal Ctrl-C hits the whole process group,
    and shutdown is the *supervisor's* decision (it journals in-flight
    points first, then terminates the pool deliberately).
    """
    import signal
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # undo any SIGTERM handler inherited from the driver (the CLI's
    # interrupt handler, forked into us) so terminate() works first try
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    stop = threading.Event()
    if not os.environ.get(_TEST_NO_HEARTBEAT_ENV):
        beat = threading.Thread(target=_heartbeat_loop, daemon=True,
                                args=(result_queue, worker_id, stop))
        beat.start()

    from repro.harness.parallel import _execute_point
    crash_index = os.environ.get(_TEST_CRASH_INDEX_ENV)
    crash_once = os.environ.get(_TEST_CRASH_ONCE_ENV)
    while True:
        task = task_queue.get()
        if task is None:
            stop.set()
            return
        index, payload = task
        result_queue.put(("started", worker_id, index, None))
        if crash_index is not None and int(crash_index) == index:
            os._exit(42)
        if crash_once:
            try:
                os.close(os.open(crash_once,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                os._exit(42)
            except FileExistsError:
                pass                # another worker already crashed
        summary = _execute_point(payload)
        result_queue.put(("done", worker_id, index, summary))


# -------------------------------------------------------- supervisor side

class WorkerEvent(NamedTuple):
    """One supervision event, surfaced to the execution engine."""

    kind: str                 # "started" | "result" | "crashed" | "timeout"
    index: int                # grid-point index the event is about
    summary: Optional[Dict]   # for "result": the worker's summary dict
    detail: str = ""          # human-readable cause for crash/timeout


@dataclass
class _WorkerHandle:
    """One supervised child: its process, private queue and bookkeeping."""

    worker_id: int
    process: multiprocessing.Process
    task_queue: object
    index: Optional[int] = None          # grid point currently held
    dispatched_at: Optional[float] = None
    started_at: Optional[float] = None   # set on the "started" message
    last_heartbeat: float = field(default_factory=time.monotonic)

    @property
    def busy(self) -> bool:
        return self.index is not None


class WorkerSupervisor:
    """Owns a pool of worker processes with per-worker supervision.

    Unlike a ``ProcessPoolExecutor``, every worker is individually
    killable and replaceable: a crash or hang costs exactly the point
    that worker was running.  The supervisor never lets a child outlive
    it — :meth:`shutdown` escalates sentinel → join → SIGTERM → SIGKILL.
    """

    def __init__(self, workers: int,
                 heartbeat_timeout_s: Optional[float] = None):
        self.target = max(1, workers)
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._context = multiprocessing.get_context()
        self._result_queue = self._context.Queue()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._retired: List[_WorkerHandle] = []
        self._dead_ids: set = set()
        self._next_id = 0
        for _ in range(self.target):
            self._spawn()

    # ------------------------------------------------------------- state

    @property
    def busy_count(self) -> int:
        return sum(1 for w in self._workers.values() if w.busy)

    @property
    def idle_count(self) -> int:
        return len(self._workers) - self.busy_count

    @property
    def pids(self) -> List[int]:
        return [w.process.pid for w in self._workers.values()
                if w.process.pid is not None]

    # ---------------------------------------------------------- spawning

    def _spawn(self) -> _WorkerHandle:
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main, name=f"repro-sweep-worker-{worker_id}",
            args=(worker_id, task_queue, self._result_queue), daemon=True)
        process.start()
        handle = _WorkerHandle(worker_id, process, task_queue)
        self._workers[worker_id] = handle
        return handle

    def _kill(self, handle: _WorkerHandle) -> None:
        """Hard-kill one worker and reap it; it is never reused."""
        self._dead_ids.add(handle.worker_id)
        del self._workers[handle.worker_id]
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        handle.task_queue.close()

    # ----------------------------------------------------------- resizing

    def resize(self, target: int) -> None:
        """Match the pool to the outstanding work (never below 1).

        Shrinking retires surplus *idle* workers immediately (sentinel;
        reaped asynchronously) — a 2-point tail of a 16-worker sweep
        must not keep 14 idle processes alive.  Busy workers always
        finish their point first; :meth:`poll` retires them once idle.
        Growing just raises the respawn target.
        """
        target = max(1, target)
        if target == self.target:
            return
        self.target = target
        self._retire_surplus()

    def _retire_surplus(self) -> None:
        for handle in list(self._workers.values()):
            if len(self._workers) <= self.target:
                break
            if handle.busy:
                continue
            self._dead_ids.add(handle.worker_id)
            del self._workers[handle.worker_id]
            try:
                handle.task_queue.put(None)   # graceful: exits at once
            except (OSError, ValueError):
                pass
            self._retired.append(handle)

    def _reap_retired(self) -> None:
        for handle in self._retired[:]:
            if handle.process.is_alive():
                continue
            handle.process.join(timeout=0)
            handle.task_queue.close()
            self._retired.remove(handle)

    # --------------------------------------------------------- dispatch

    def dispatch(self, index: int, payload: Dict) -> None:
        """Hand one grid point to an idle worker (caller checks idle_count)."""
        for handle in list(self._workers.values()):
            if handle.busy:
                continue
            if not handle.process.is_alive():
                # died idle since the last poll(); queueing into the
                # corpse would misclassify a never-run point as a
                # worker-crash — reap and hand the point to a fresh
                # worker instead
                self._kill(handle)
                handle = self._spawn()
            handle.index = index
            handle.dispatched_at = time.monotonic()
            handle.started_at = None
            handle.last_heartbeat = time.monotonic()
            handle.task_queue.put((index, payload))
            return
        raise RuntimeError("dispatch() called with no idle worker")

    # ------------------------------------------------------------ polling

    def poll(self, timeout: float = 0.1,
             point_timeout_s: Optional[float] = None,
             respawn: bool = True) -> List[WorkerEvent]:
        """Drain worker traffic and health-check the pool.

        Returns the supervision events since the last call.  Dead or
        hung workers are killed and (when ``respawn``) replaced before
        returning, so one bad lane never stalls the others.
        """
        events: List[WorkerEvent] = []
        self._drain(timeout, events)
        now = time.monotonic()
        for handle in list(self._workers.values()):
            if not handle.process.is_alive():
                if handle.busy:
                    events.append(WorkerEvent(
                        "crashed", handle.index, None,
                        f"worker process (pid {handle.process.pid}) died "
                        f"with exit code {handle.process.exitcode}"))
                self._kill(handle)
                continue
            if not handle.busy:
                continue
            clock = handle.started_at if handle.started_at is not None \
                else handle.dispatched_at
            if point_timeout_s is not None and \
                    now - clock > point_timeout_s:
                events.append(WorkerEvent(
                    "timeout", handle.index, None,
                    f"grid point exceeded the per-point timeout of "
                    f"{point_timeout_s:g}s (measured from worker pickup); "
                    f"worker hard-killed"))
                self._kill(handle)
                continue
            if self.heartbeat_timeout_s is not None and \
                    now - handle.last_heartbeat > self.heartbeat_timeout_s:
                events.append(WorkerEvent(
                    "crashed", handle.index, None,
                    f"worker (pid {handle.process.pid}) sent no heartbeat "
                    f"for {self.heartbeat_timeout_s:g}s — presumed hung; "
                    f"hard-killed"))
                self._kill(handle)
        self._retire_surplus()         # workers freed past a shrunk target
        self._reap_retired()
        if respawn:
            while len(self._workers) < self.target:
                self._spawn()
        return events

    def _drain(self, timeout: float, events: List[WorkerEvent]) -> None:
        block = True
        while True:
            try:
                message = self._result_queue.get(
                    timeout=timeout if block else 0)
            except queue_module.Empty:
                return
            except (EOFError, OSError):
                return
            except Exception:
                # a worker killed mid-write can tear the stream; drop the
                # message — liveness checks will classify the worker
                continue
            block = False
            kind, worker_id, index, payload = message
            handle = self._workers.get(worker_id)
            if handle is None or worker_id in self._dead_ids:
                continue            # stale traffic from a killed worker
            handle.last_heartbeat = time.monotonic()
            if kind == "heartbeat":
                continue
            if kind == "started":
                handle.started_at = time.monotonic()
                events.append(WorkerEvent("started", index, None))
            elif kind == "done":
                handle.index = None
                handle.started_at = None
                events.append(WorkerEvent("result", index, payload))

    # ----------------------------------------------------------- shutdown

    def shutdown(self, graceful: bool = True, timeout: float = 2.0) -> None:
        """Stop every child, guaranteed: no worker survives this call.

        ``graceful`` sends the sentinel first (workers are idle between
        points at the end of a sweep, so they exit immediately); either
        way stragglers are escalated SIGTERM → SIGKILL with bounded
        joins, then joined once more so nothing is left as a zombie.
        """
        handles = list(self._workers.values()) + self._retired
        self._workers.clear()
        self._retired = []
        self._dead_ids.update(h.worker_id for h in handles)
        if graceful:
            for handle in handles:
                try:
                    handle.task_queue.put(None)
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + timeout
            for handle in handles:
                handle.process.join(
                    timeout=max(0.0, deadline - time.monotonic()))
        for handle in handles:
            if handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.process.join(
                timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join()
            handle.task_queue.close()
        self._result_queue.close()
        self._result_queue.join_thread()
