"""On-disk result cache for sweep grid points.

Design-space exploration re-runs "the same set of simulations for each
design alternative"; most of those simulations are *identical* between
sweep invocations.  The cache makes a re-run of an unchanged sweep free:
each grid point's scalar result is stored as one JSON file, keyed by a
content hash of everything that determines the simulation's outcome.

The cache key is the SHA-256 of the canonical (sorted, compact) JSON of:

* ``benchmark`` — the app name (``sp_matrix`` | ``cacheloop`` | ...);
* ``n_cores`` — the master count of the grid point;
* ``interconnect`` — the fabric name;
* ``mode`` — the replay-mode name (``reactive`` | ``cloning`` | ...);
* ``app_params`` — the benchmark parameter dict;
* ``fault_spec`` — the normalised fault-specification dict (or null);
* ``fault_seed`` — the fault injector's RNG seed;
* ``version`` — the ``repro`` package version, so upgrading the
  simulator invalidates every cached result.

Because the simulator is fully deterministic, two runs with equal keys
produce equal cycle counts — only the wall-time columns of a cached row
are historical (they report the run that populated the cache).

Entries are written atomically (temp file + ``os.replace``), and any
unreadable or malformed entry is treated as a miss, never an error.
"""

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["ResultCache", "default_cache_dir", "point_cache_key",
           "repro_version"]


def repro_version() -> str:
    """The installed ``repro`` version (part of every cache key)."""
    from repro import __version__
    return __version__


def point_cache_key(benchmark: str, n_cores: int, interconnect: str,
                    mode: str, app_params: Optional[Dict] = None,
                    fault_spec: Optional[Dict] = None, fault_seed: int = 0,
                    version: Optional[str] = None) -> str:
    """Content hash identifying one grid point's simulation outcome."""
    provenance = {
        "benchmark": benchmark,
        "n_cores": n_cores,
        "interconnect": interconnect,
        "mode": mode,
        "app_params": app_params or {},
        "fault_spec": fault_spec,
        "fault_seed": fault_seed,
        "version": version if version is not None else repro_version(),
    }
    blob = json.dumps(provenance, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro" / "sweeps"


class ResultCache:
    """A directory of ``<key>.json`` sweep-point results."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The cached result summary for ``key``, or None on a miss.

        Corrupted, truncated, or otherwise unreadable entries are misses.
        """
        try:
            with open(self.path_for(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("result"), dict):
            return None
        return entry["result"]

    def put(self, key: str, result: Dict,
            provenance: Optional[Dict] = None) -> None:
        """Store a result summary atomically under ``key``.

        ``provenance`` (the pre-hash key material) is stored alongside the
        result so a human can read *what* an entry describes.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "result": result}
        if provenance is not None:
            entry["provenance"] = provenance
        fd, tmp_path = tempfile.mkstemp(dir=str(self.directory),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache {self.directory} entries={len(self)}>"
