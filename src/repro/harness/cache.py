"""On-disk result cache for sweep grid points.

Design-space exploration re-runs "the same set of simulations for each
design alternative"; most of those simulations are *identical* between
sweep invocations.  The cache makes a re-run of an unchanged sweep free:
each grid point's scalar result is stored as one JSON file, keyed by a
content hash of everything that determines the simulation's outcome.

The cache key is the SHA-256 of the canonical (sorted, compact) JSON of:

* ``benchmark`` — the app name (``sp_matrix`` | ``cacheloop`` | ...);
* ``n_cores`` — the master count of the grid point;
* ``interconnect`` — the fabric name;
* ``mode`` — the replay-mode name (``reactive`` | ``cloning`` | ...);
* ``app_params`` — the benchmark parameter dict;
* ``fault_spec`` — the normalised fault-specification dict (or null);
* ``fault_seed`` — the fault injector's RNG seed;
* ``version`` — the ``repro`` package version, so upgrading the
  simulator invalidates every cached result.

Because the simulator is fully deterministic, two runs with equal keys
produce equal cycle counts — only the wall-time columns of a cached row
are historical (they report the run that populated the cache).

Entries are written atomically (temp file + ``os.replace``), and any
unreadable or malformed entry is treated as a miss, never an error.
"""

import hashlib
import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Union

__all__ = ["CacheIssue", "ResultCache", "default_cache_dir",
           "point_cache_key", "repro_version", "warmup_digest"]


class CacheIssue(NamedTuple):
    """One defective cache entry found by :meth:`ResultCache.verify`."""

    path: str
    kind: str       # "corrupt" | "stale"
    detail: str

    def __str__(self) -> str:
        return f"{self.kind:7s} {self.path}: {self.detail}"


def _result_crc32(result: Dict) -> str:
    """CRC32 (hex) of the canonical JSON of a stored result payload."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(blob.encode('utf-8')) & 0xFFFFFFFF:08x}"


def repro_version() -> str:
    """The installed ``repro`` version (part of every cache key)."""
    from repro import __version__
    return __version__


def point_cache_key(benchmark: str, n_cores: int, interconnect: str,
                    mode: str, app_params: Optional[Dict] = None,
                    fault_spec: Optional[Dict] = None, fault_seed: int = 0,
                    traffic: Optional[Dict] = None,
                    backend: Optional[str] = None,
                    version: Optional[str] = None,
                    warmup: Optional[str] = None) -> str:
    """Content hash identifying one grid point's simulation outcome.

    ``traffic`` (the resolved synthetic-traffic spec dict) joins the key
    material only when present, so every pre-existing classic-benchmark
    key is unchanged.  ``backend`` joins the same way, only when it is
    not the default ``"classic"`` engine: simulated numbers are
    bit-identical across backends, but the stored summary carries
    wall-clock columns, which are backend-dependent.  ``warmup`` (the
    :func:`warmup_digest` of a fast-forwarded point's warm-up material)
    also joins only when present: a point executed via warm-up restore
    is a different simulation than the same point cold-started from
    cycle 0, so the two must never share a cache entry.
    """
    provenance = {
        "benchmark": benchmark,
        "n_cores": n_cores,
        "interconnect": interconnect,
        "mode": mode,
        "app_params": app_params or {},
        "fault_spec": fault_spec,
        "fault_seed": fault_seed,
        "version": version if version is not None else repro_version(),
    }
    if traffic is not None:
        provenance["traffic"] = traffic
    if backend is not None and backend != "classic":
        provenance["backend"] = backend
    if warmup is not None:
        provenance["warmup"] = warmup
    blob = json.dumps(provenance, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def warmup_digest(material: Dict) -> str:
    """Content hash of one warm-up equivalence class.

    ``material`` is everything that determines the warm-up snapshot's
    bytes (workload identity + warm-up length + warm-up fabric — see
    :meth:`~repro.harness.parallel.SweepPoint.warmup_material`); the
    package version joins automatically, so a simulator upgrade
    invalidates every stored warm-up snapshot the same way it
    invalidates results.  The digest names the ``.snap`` entry in the
    cache directory, joins :func:`point_cache_key` and is recorded as
    ``warmup=<digest>`` provenance in the sweep journal.
    """
    provenance = dict(material)
    provenance["version"] = repro_version()
    blob = json.dumps(provenance, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro" / "sweeps"


class ResultCache:
    """A directory of ``<key>.json`` sweep-point results.

    Warm-up snapshots live alongside the results as
    ``<digest>.snap`` artifacts (see :func:`warmup_digest`); ``len()``
    counts result entries only.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def snap_path_for(self, digest: str) -> Path:
        return self.directory / f"{digest}.snap"

    def get(self, key: str,
            artifact_checksums: Optional[Dict[str, str]] = None,
            ) -> Optional[Dict]:
        """The cached result summary for ``key``, or None on a miss.

        An entry is a miss — never an error, never a wrong answer — when
        it is unreadable, malformed, recorded under a different package
        version, fails its own embedded result checksum, or disagrees
        with any caller-supplied ``artifact_checksums`` (``{name: crc32
        hex}`` of the artifacts the result was computed from).
        """
        try:
            with open(self.path_for(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("result"), dict):
            return None
        if entry.get("version") != repro_version():
            return None
        if entry.get("result_crc32") != _result_crc32(entry["result"]):
            return None
        if artifact_checksums:
            recorded = entry.get("artifact_checksums") or {}
            for name, checksum in artifact_checksums.items():
                if name in recorded and recorded[name] != checksum:
                    return None
        return entry["result"]

    def put(self, key: str, result: Dict,
            provenance: Optional[Dict] = None,
            artifact_checksums: Optional[Dict[str, str]] = None) -> None:
        """Store a result summary atomically under ``key``.

        ``provenance`` (the pre-hash key material) is stored alongside the
        result so a human can read *what* an entry describes;
        ``artifact_checksums`` records the CRC32 of any artifacts the
        result depends on.  The entry embeds the package version and its
        own result checksum, so :meth:`get` can tell corruption and
        staleness from a valid hit.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "result": result,
                 "version": repro_version(),
                 "result_crc32": _result_crc32(result)}
        if provenance is not None:
            entry["provenance"] = provenance
        if artifact_checksums is not None:
            entry["artifact_checksums"] = dict(artifact_checksums)
        fd, tmp_path = tempfile.mkstemp(dir=str(self.directory),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def get_snap(self, digest: str) -> Optional[Dict]:
        """The cached warm-up snapshot payload for ``digest``, or None.

        Like :meth:`get`, damage is a miss, never an error: the ``.snap``
        header's CRC32 and structural validation must pass.  The package
        version needs no separate check — it is part of the digest, so a
        stale snapshot is simply never looked up.
        """
        from repro.artifacts.errors import ArtifactError
        from repro.artifacts.snap import load_snap
        path = self.snap_path_for(digest)
        try:
            return load_snap(path).value
        except (OSError, ArtifactError):
            return None

    def put_snap(self, digest: str, payload: Dict) -> Path:
        """Store a warm-up snapshot atomically; returns its path.

        The path is handed to sweep workers, which re-verify the
        artifact (header CRC + recipe compatibility) before restoring.
        """
        from repro.artifacts.snap import dump_snap
        self.directory.mkdir(parents=True, exist_ok=True)
        text = dump_snap(payload)
        fd, tmp_path = tempfile.mkstemp(dir=str(self.directory),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            path = self.snap_path_for(digest)
            os.replace(tmp_path, path)
            return path
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def verify(self) -> List[CacheIssue]:
        """Audit every entry; returns the corrupt/stale ones.

        ``corrupt`` — unreadable JSON, malformed structure, a key that
        does not match the filename or the provenance hash, or a result
        that fails its embedded checksum.  ``stale`` — recorded under a
        different package version (valid once, obsolete now).  A clean
        cache returns an empty list.
        """
        issues: List[CacheIssue] = []
        if not self.directory.is_dir():
            return issues
        for path in sorted(self.directory.glob("*.json")):
            name = str(path)
            try:
                with open(path) as handle:
                    entry = json.load(handle)
            except OSError as error:
                issues.append(CacheIssue(name, "corrupt",
                                         f"unreadable: {error}"))
                continue
            except ValueError as error:
                issues.append(CacheIssue(name, "corrupt",
                                         f"not valid JSON: {error}"))
                continue
            if not isinstance(entry, dict) or \
                    not isinstance(entry.get("result"), dict):
                issues.append(CacheIssue(name, "corrupt",
                                         "missing result payload"))
                continue
            if entry.get("key") != path.stem:
                issues.append(CacheIssue(
                    name, "corrupt",
                    f"entry key {entry.get('key')!r} does not match "
                    f"filename"))
                continue
            if "result_crc32" in entry and \
                    entry["result_crc32"] != _result_crc32(entry["result"]):
                issues.append(CacheIssue(name, "corrupt",
                                         "result fails its checksum"))
                continue
            provenance = entry.get("provenance")
            if isinstance(provenance, dict):
                blob = json.dumps(provenance, sort_keys=True,
                                  separators=(",", ":"))
                digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
                if digest != path.stem:
                    issues.append(CacheIssue(
                        name, "corrupt",
                        "provenance does not hash to the entry key"))
                    continue
            version = entry.get("version")
            if version != repro_version():
                issues.append(CacheIssue(
                    name, "stale",
                    f"recorded by version {version or 'unknown'}, "
                    f"current is {repro_version()}"))
        from repro.artifacts.errors import ArtifactError
        from repro.artifacts.snap import load_snap
        for path in sorted(self.directory.glob("*.snap")):
            try:
                load_snap(path)
            except OSError as error:
                issues.append(CacheIssue(str(path), "corrupt",
                                         f"unreadable: {error}"))
            except ArtifactError as error:
                issues.append(CacheIssue(str(path), "corrupt",
                                         f"invalid snapshot: "
                                         f"{error.message}"))
        return issues

    def clear(self) -> int:
        """Delete every entry (results and snapshots); returns the
        number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for pattern in ("*.json", "*.snap"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache {self.directory} entries={len(self)}>"
