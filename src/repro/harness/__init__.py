"""Experiment harness: the full TG simulation flow, automated.

``tg_flow`` performs the complete methodology of paper Section 5 for one
benchmark configuration:

1. reference simulation with armlet cores (trace collection attached);
2. translate each core's trace into a TG program;
3. rebuild the platform with TGs in place of the cores;
4. run the TG simulation;
5. report accuracy (cumulative simulated cycles, as Table 2's "Error")
   and speedup (wall-clock, Table 2's "Gain").

``table2_row`` formats the result like a row of the paper's Table 2.

Sweeps over many configurations run through ``run_sweep_parallel``: a
supervised worker pool (``repro.harness.supervisor``) with an on-disk
result cache (``repro.harness.cache``) and a crash-safe write-ahead
journal (``repro.harness.journal``) so interrupted sweeps resume
without re-simulating completed points (see docs/SWEEPS.md).
"""

from repro.harness.experiments import (
    TGFlowResult,
    build_testchip_platform,
    build_tg_platform,
    reference_run,
    resilience_demo,
    table2_row,
    tg_flow,
    translate_traces,
)
from repro.harness.checkpoint import (
    CheckpointManager,
    SnapshotRecipeMismatch,
    branch,
    checkpointed_run,
    comparable_summary,
    ensure_recipe_compatible,
    fast_forward,
    load_snapshot,
    platform_recipe,
    rebuild_platform,
    restore_platform,
    warmup_snapshot,
)
from repro.harness.cache import (
    CacheIssue,
    ResultCache,
    default_cache_dir,
    point_cache_key,
    warmup_digest,
)
from repro.harness.journal import (
    JOURNAL_FILENAME,
    JournalState,
    SweepJournal,
    journal_path,
)
from repro.harness.parallel import (
    PointResult,
    SweepPoint,
    expand_grid,
    run_sweep_parallel,
)
from repro.harness.supervisor import (
    EXIT_INTERRUPTED,
    FAILURE_KINDS,
    SweepInterrupted,
    SweepPointFailure,
    WorkerSupervisor,
)
from repro.harness.sweep import (
    SweepSpec,
    run_sweep,
    sweep_csv,
    sweep_table,
)

__all__ = [
    "EXIT_INTERRUPTED",
    "FAILURE_KINDS",
    "JOURNAL_FILENAME",
    "JournalState",
    "PointResult",
    "CacheIssue",
    "CheckpointManager",
    "SnapshotRecipeMismatch",
    "branch",
    "checkpointed_run",
    "comparable_summary",
    "ensure_recipe_compatible",
    "fast_forward",
    "load_snapshot",
    "platform_recipe",
    "rebuild_platform",
    "restore_platform",
    "warmup_snapshot",
    "ResultCache",
    "SweepInterrupted",
    "SweepJournal",
    "SweepPoint",
    "SweepPointFailure",
    "SweepSpec",
    "WorkerSupervisor",
    "default_cache_dir",
    "expand_grid",
    "journal_path",
    "point_cache_key",
    "run_sweep_parallel",
    "warmup_digest",
    "TGFlowResult",
    "build_testchip_platform",
    "build_tg_platform",
    "reference_run",
    "resilience_demo",
    "run_sweep",
    "sweep_csv",
    "sweep_table",
    "table2_row",
    "tg_flow",
    "translate_traces",
]
