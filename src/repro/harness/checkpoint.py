"""Crash-durable TG simulation: auto-checkpointing, restore, branching.

The kernel layer (:mod:`repro.kernel.snapshot`) captures and re-applies
simulation state; this module makes that *self-contained on disk*:

* :func:`platform_recipe` embeds everything needed to rebuild the TG
  platform (programs as ``.tgp`` text, socket count, interconnect,
  config overrides, resilience knobs) into the snapshot payload, so
  ``repro-experiment --restore run.snap`` needs no reference re-run and
  no other files;
* :class:`CheckpointManager` writes ``.snap`` artifacts atomically
  (write-then-rename) and retains only the newest K — a SIGKILL at any
  instant leaves either the previous snapshot or the complete new one,
  never a torn file;
* :func:`checkpointed_run` drives a platform to completion, snapshotting
  at the first quiescent cycle at or after every cadence boundary;
* :func:`restore_platform` rebuilds a platform from a payload's embedded
  recipe and applies the snapshot — the continuation is bit-identical to
  the uninterrupted run, under either kernel backend;
* :func:`branch` is the fault-campaign primitive: restore the shared
  warm-up state with a *fresh* fault injector (new spec/seed), so N
  scenarios share one warm-up simulation.

See docs/CHECKPOINT.md for the format and the quiescence rules.
"""

import os
from typing import Dict, List, Optional, Union

from repro.artifacts.errors import SnapshotError, SnapshotRecipeMismatch
from repro.artifacts.snap import dump_snap, load_snap
from repro.core.program import TGProgram, parse_tgp
from repro.faults import FaultSpec, RetryPolicy
from repro.harness.experiments import build_tg_platform
from repro.platform import MparmPlatform

#: Snapshots retained per directory by default.
DEFAULT_KEEP = 3

_SNAP_SUFFIX = ".snap"


def _serializable_overrides(config_overrides: Optional[dict]) -> dict:
    overrides = dict(config_overrides or {})
    spec = overrides.get("fault_spec")
    if isinstance(spec, FaultSpec):
        overrides["fault_spec"] = spec.to_dict()
    return overrides


def platform_recipe(programs: Dict[int, TGProgram], n_cores: int,
                    interconnect: str = "ahb",
                    config_overrides: Optional[dict] = None,
                    retry_policy: Optional[RetryPolicy] = None,
                    watchdog_cycles: Optional[int] = None) -> dict:
    """Self-contained rebuild recipe for a TG platform.

    Mirrors the :func:`~repro.harness.experiments.build_tg_platform`
    signature; programs travel as ``.tgp`` text (their canonical,
    checksummable form — the TG validates the CRC at restore).
    """
    return {
        "kind": "tg_platform",
        "programs": {str(master_id): programs[master_id].to_tgp()
                     for master_id in sorted(programs)},
        "n_cores": n_cores,
        "interconnect": interconnect,
        "config_overrides": _serializable_overrides(config_overrides),
        "retry_policy": (retry_policy.to_dict()
                         if retry_policy is not None else None),
        "watchdog_cycles": watchdog_cycles,
    }


def rebuild_platform(recipe: dict,
                     config_overrides: Optional[dict] = None,
                     interconnect: Optional[str] = None,
                     programs: Optional[Dict[int, TGProgram]] = None,
                     ) -> MparmPlatform:
    """Build a fresh, un-started platform from a snapshot recipe.

    ``config_overrides`` are applied *on top* of the recipe's own
    overrides (the branch mechanism swaps fault spec/seed/backend this
    way).  ``interconnect`` replaces the recipe's fabric — the
    cross-fabric fast-forward path rebuilds the captured workload on a
    *different* interconnect.  ``programs`` skips the ``.tgp`` re-parse
    when the caller already holds the recipe's programs in memory; it is
    only safe after the recipe has been byte-compared against a
    :func:`platform_recipe` of those same programs (``.tgp`` text is
    canonical, so equal text means equal programs).
    """
    from repro.kernel.snapshot import state_get
    if not isinstance(recipe, dict) \
            or recipe.get("kind") != "tg_platform":
        raise SnapshotError(
            "snapshot has no embedded platform recipe",
            hint="only snapshots taken through the harness/CLI are "
                 "self-contained; rebuild the platform yourself and use "
                 "MparmPlatform.apply_snapshot")
    raw_programs = state_get(recipe, "programs", "platform recipe")
    if not isinstance(raw_programs, dict) or not raw_programs:
        raise SnapshotError(
            "snapshot platform recipe carries no programs")
    if programs is None:
        try:
            programs = {int(master_id): parse_tgp(text)
                        for master_id, text in raw_programs.items()}
        except SnapshotError:
            raise
        except Exception as error:
            raise SnapshotError(
                f"snapshot platform recipe has an unparsable program "
                f"({error})") from None
    overrides = dict(state_get(recipe, "config_overrides",
                               "platform recipe") or {})
    overrides.update(config_overrides or {})
    retry = state_get(recipe, "retry_policy", "platform recipe")
    return build_tg_platform(
        programs,
        state_get(recipe, "n_cores", "platform recipe"),
        interconnect if interconnect is not None
        else state_get(recipe, "interconnect", "platform recipe"),
        overrides,
        retry_policy=RetryPolicy.from_dict(retry),
        watchdog_cycles=state_get(recipe, "watchdog_cycles",
                                  "platform recipe"))


#: Recipe overrides that do not change the captured architectural state:
#: the kernel backend fires the same events in the same order, and a
#: warm-up snapshot is always captured healthy (fault state is branched
#: in fresh at the restore point).  Everything else in the overrides —
#: fabric parameters, memory timings, platform shape — defines the
#: workload identity and must match for a restore to be meaningful.
_PORTABLE_OVERRIDES = ("backend", "fault_spec", "fault_seed")


def _comparable_recipe(recipe: dict) -> dict:
    from repro.kernel.snapshot import state_get
    overrides = dict(state_get(recipe, "config_overrides",
                               "platform recipe") or {})
    for key in _PORTABLE_OVERRIDES:
        overrides.pop(key, None)
    return {
        "programs": state_get(recipe, "programs", "platform recipe"),
        "n_cores": state_get(recipe, "n_cores", "platform recipe"),
        "config_overrides": overrides,
        "retry_policy": state_get(recipe, "retry_policy",
                                  "platform recipe"),
        "watchdog_cycles": state_get(recipe, "watchdog_cycles",
                                     "platform recipe"),
    }


def ensure_recipe_compatible(recipe: dict, expected: dict) -> None:
    """Check that a snapshot recipe matches the workload it will serve.

    Cross-fabric restore maps state by component identity, so the two
    recipes must agree on everything that *defines* those components:
    core count, the TG programs (byte-compared as ``.tgp`` text), the
    retry/watchdog resilience knobs and all non-portable config
    overrides.  The ``interconnect`` and the :data:`_PORTABLE_OVERRIDES`
    (kernel backend, fault spec/seed) are deliberately excluded — those
    are exactly the axes mixed-fidelity fast-forward varies.  Raises
    :class:`SnapshotRecipeMismatch` naming every differing field.
    """
    ours = _comparable_recipe(recipe)
    theirs = _comparable_recipe(expected)
    mismatches: List[str] = []
    if ours["n_cores"] != theirs["n_cores"]:
        mismatches.append(f"n_cores: snapshot has {ours['n_cores']}, "
                          f"target expects {theirs['n_cores']}")
    our_programs = ours["programs"] or {}
    their_programs = theirs["programs"] or {}
    if sorted(our_programs) != sorted(their_programs):
        mismatches.append(
            f"programs: snapshot has masters "
            f"[{', '.join(sorted(our_programs))}], target expects "
            f"[{', '.join(sorted(their_programs))}]")
    else:
        differing = [master for master in sorted(our_programs)
                     if our_programs[master] != their_programs[master]]
        if differing:
            mismatches.append(
                f"programs: master(s) {', '.join(differing)} differ "
                f"(.tgp text is not byte-identical)")
    for field in ("config_overrides", "retry_policy", "watchdog_cycles"):
        if ours[field] != theirs[field]:
            mismatches.append(f"{field}: snapshot has {ours[field]!r}, "
                              f"target expects {theirs[field]!r}")
    if mismatches:
        raise SnapshotRecipeMismatch(
            f"snapshot recipe does not match the target workload "
            f"({len(mismatches)} field(s) differ)",
            hint="a snapshot can change fabric, backend and fault "
                 "configuration, but not the workload itself",
            mismatches=mismatches)


def restore_platform(payload: dict,
                     backend: Optional[str] = None,
                     interconnect: Optional[str] = None) -> MparmPlatform:
    """Rebuild the platform a snapshot embeds and apply the snapshot.

    The returned platform sits at the snapshot cycle, started, with the
    exact pending-event set of the captured run — ``platform.run()``
    continues it to a bit-identical completion.  ``backend`` optionally
    continues under a *different* kernel engine than the capture ran on
    (re-armed entries are structural, so the continuation is still
    bit-identical).  ``interconnect`` continues on a *different fabric*:
    the snapshot must have been taken at a quiescent cycle (all are),
    so the fabric's internal state is re-derived from quiescence while
    TG/OCP/memory/semaphore state restores by component identity.
    """
    from repro.kernel.snapshot import _require, state_get
    overrides = {"backend": backend} if backend is not None else None
    recipe = _require(payload, "platform", "payload")
    platform = rebuild_platform(recipe, overrides,
                                interconnect=interconnect)
    rederive = None
    if interconnect is not None and interconnect != state_get(
            recipe, "interconnect", "platform recipe"):
        rederive = ["fabric"]
    platform.apply_snapshot(payload, rederive=rederive)
    return platform


def branch(payload: dict,
           fault_spec: Union[None, dict, FaultSpec] = None,
           fault_seed: Optional[int] = None,
           backend: Optional[str] = None,
           interconnect: Optional[str] = None) -> MparmPlatform:
    """Branch a fault scenario off a shared warm-up snapshot.

    Rebuilds the platform with the given fault spec/seed (and optionally
    a different kernel backend and/or fabric), then applies the snapshot
    with a **fresh** injector: all architectural state — TG registers,
    memory contents, traffic counters — continues from the warm-up,
    while the fault sequence is the new scenario's own.  Simulate the
    warm-up once, branch N times.
    """
    overrides: dict = {}
    if fault_spec is not None:
        overrides["fault_spec"] = (fault_spec.to_dict()
                                   if isinstance(fault_spec, FaultSpec)
                                   else fault_spec)
    if fault_seed is not None:
        overrides["fault_seed"] = fault_seed
        if "fault_spec" not in overrides:
            raise SnapshotError(
                "branch got fault_seed without fault_spec",
                hint="pass the scenario's fault spec as well")
    if backend is not None:
        overrides["backend"] = backend
    from repro.kernel.snapshot import _require, state_get
    recipe = _require(payload, "platform", "payload")
    platform = rebuild_platform(recipe, overrides,
                                interconnect=interconnect)
    rederive = None
    if interconnect is not None and interconnect != state_get(
            recipe, "interconnect", "platform recipe"):
        rederive = ["fabric"]
    platform.apply_snapshot(payload, fresh=["injector"],
                            rederive=rederive)
    return platform


def warmup_snapshot(programs: Dict[int, TGProgram], n_cores: int,
                    warmup_cycles: int, warmup_fabric: str = "tlm",
                    config_overrides: Optional[dict] = None,
                    retry_policy: Optional[RetryPolicy] = None,
                    watchdog_cycles: Optional[int] = None,
                    scan_limit: Optional[int] = None) -> dict:
    """Simulate a warm-up prefix on a cheap fabric and snapshot it.

    Builds the workload on ``warmup_fabric`` (default: the contention-
    free TLM model), runs it for ``warmup_cycles`` and captures the
    first quiescent cycle at or after that boundary.  The warm-up is
    always **healthy**: fault spec/seed overrides are stripped, so one
    snapshot serves every fault scenario via the fresh-injector branch
    at restore time (and the snapshot digest can ignore the fault axes).

    A workload that finishes before ``warmup_cycles`` still snapshots
    cleanly — the queue is drained, the capture is trivially quiescent,
    and the restored run completes immediately.
    """
    from repro.kernel.snapshot import DEFAULT_SCAN_LIMIT
    if warmup_cycles < 1:
        raise SnapshotError(
            f"warm-up length must be >= 1 cycle, got {warmup_cycles}")
    overrides = _serializable_overrides(config_overrides)
    for key in ("fault_spec", "fault_seed"):
        overrides.pop(key, None)
    platform = build_tg_platform(programs, n_cores, warmup_fabric,
                                 overrides, retry_policy=retry_policy,
                                 watchdog_cycles=watchdog_cycles)
    recipe = platform_recipe(programs, n_cores, warmup_fabric, overrides,
                             retry_policy=retry_policy,
                             watchdog_cycles=watchdog_cycles)
    platform.run(until=warmup_cycles)
    return platform.snapshot(
        recipe,
        scan_limit if scan_limit is not None else DEFAULT_SCAN_LIMIT)


def fast_forward(payload: dict,
                 interconnect: Optional[str] = None,
                 config_overrides: Optional[dict] = None,
                 expected_recipe: Optional[dict] = None,
                 programs: Optional[Dict[int, TGProgram]] = None,
                 ) -> MparmPlatform:
    """Restore a warm-up snapshot onto the cycle-true target platform.

    The mixed-fidelity primitive: rebuild the snapshot's workload on
    ``interconnect`` (possibly a different fabric than the warm-up ran
    on), layer ``config_overrides`` (backend, fault spec/seed) on top of
    the recipe's own, and apply the snapshot with

    * the fault **injector fresh** — the warm-up is healthy, so fault
      injection arms exactly at the restore point, and
    * the **fabric re-derived** when the target fabric differs — its
      portable traffic statistics carry over, its internal machinery is
      rebuilt from quiescence.

    ``expected_recipe`` (a :func:`platform_recipe` of the workload the
    caller *meant* to restore) guards against serving a stale or
    foreign snapshot: any workload-identity difference raises
    :class:`SnapshotRecipeMismatch` (see
    :func:`ensure_recipe_compatible`).

    ``programs`` short-circuits the recipe's ``.tgp`` re-parse with
    the caller's in-memory programs — the hot path of a warm-up-shared
    sweep, where every worker already generated the point's programs.
    It requires ``expected_recipe`` built from those same programs: the
    byte-compare then proves the recipe text *is* their canonical
    ``.tgp`` form, so skipping the parse cannot change the workload.
    """
    from repro.kernel.snapshot import _require, state_get
    recipe = _require(payload, "platform", "payload")
    if expected_recipe is not None:
        ensure_recipe_compatible(recipe, expected_recipe)
    elif programs is not None:
        raise SnapshotError(
            "fast_forward(programs=...) requires expected_recipe",
            hint="the recipe byte-compare is what proves the in-memory "
                 "programs match the snapshot; pass platform_recipe("
                 "programs, ...) as expected_recipe")
    platform = rebuild_platform(recipe, config_overrides,
                                interconnect=interconnect,
                                programs=programs)
    rederive = None
    if interconnect is not None and interconnect != state_get(
            recipe, "interconnect", "platform recipe"):
        rederive = ["fabric"]
    platform.apply_snapshot(payload, fresh=["injector"],
                            rederive=rederive)
    return platform


class CheckpointManager:
    """Atomic ``.snap`` writer with bounded retention.

    Snapshots are named ``<prefix>-<cycle padded to 12>.snap`` so
    lexicographic order equals cycle order; :meth:`save` writes to a
    ``.tmp`` sibling and ``os.replace``-renames it into place, then
    prunes everything but the newest ``keep``.
    """

    def __init__(self, directory, keep: int = DEFAULT_KEEP,
                 prefix: str = "ckpt"):
        if keep < 1:
            raise SnapshotError(f"checkpoint retention must be >= 1, "
                                f"got {keep}")
        self.directory = str(directory)
        self.keep = keep
        self.prefix = prefix
        os.makedirs(self.directory, exist_ok=True)

    def _snapshots(self):
        names = [name for name in os.listdir(self.directory)
                 if name.startswith(self.prefix + "-")
                 and name.endswith(_SNAP_SUFFIX)]
        return sorted(names)

    def latest(self) -> Optional[str]:
        """Path of the newest retained snapshot, or None."""
        names = self._snapshots()
        if not names:
            return None
        return os.path.join(self.directory, names[-1])

    def save(self, payload: dict) -> str:
        """Atomically write one snapshot; returns its path."""
        cycle = payload.get("cycle", 0)
        name = f"{self.prefix}-{cycle:012d}{_SNAP_SUFFIX}"
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        text = dump_snap(payload)
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        for stale in self._snapshots()[:-self.keep]:
            os.unlink(os.path.join(self.directory, stale))
        return path


def checkpointed_run(platform: MparmPlatform, recipe: dict,
                     manager: CheckpointManager, every: int,
                     scan_limit: Optional[int] = None,
                     progress_window: Optional[int] = None) -> int:
    """Run a platform to completion, checkpointing as it goes.

    A snapshot is taken at the first quiescent cycle at or after each
    ``every``-cycle boundary (quiescence scans may overshoot slightly;
    the next boundary is measured from the snapshot cycle).  Completion
    semantics — deadlock detection, the livelock watchdog — match a
    plain ``platform.run(progress_window=...)``.
    """
    if every < 1:
        raise SnapshotError(
            f"checkpoint cadence must be >= 1 cycle, got {every}")
    sim = platform.sim
    if not platform._started:
        platform.start()  # run() starts lazily; we peek the queue first
    while True:
        boundary = sim.now + every
        # fire cluster-by-cluster so the clock stops on the last event
        # when the run completes inside this segment — run(until=X)
        # would coast to X and overshoot the natural completion cycle
        while True:
            next_time = sim._queue.peek_time()
            if next_time is None or next_time > boundary:
                break
            platform.run(until=next_time,
                         progress_window=progress_window)
        if sim._queue.peek_time() is None:
            break
        manager.save(platform.snapshot(recipe, scan_limit))
    # drained (or finished): let the normal run path apply its
    # completion/deadlock checks
    return platform.run(progress_window=progress_window)


def load_snapshot(path) -> dict:
    """Load + verify a ``.snap`` file; returns the payload dict."""
    return load_snap(path).value


#: Kernel diagnostics whose values depend on the *dispatch mode* (batched
#: drain vs bounded stepping) on the fast backend, not on the simulated
#: behaviour — the same set test_backend_parity already treats as
#: backend-structural.  Everything else in a summary is bit-stable.
STRUCTURAL_KERNEL_KEYS = ("heap_compactions", "peak_heap_size",
                          "queued_tombstones")


def comparable_summary(summary: dict) -> dict:
    """A stats summary with dispatch-mode-dependent diagnostics removed.

    Use this to compare a checkpointed/restored run against an
    uninterrupted one on the ``fast`` backend; on ``classic`` the full
    summaries already match bit-for-bit.
    """
    trimmed = dict(summary)
    kernel = trimmed.get("kernel")
    if isinstance(kernel, dict):
        trimmed["kernel"] = {key: value for key, value in kernel.items()
                             if key not in STRUCTURAL_KERNEL_KEYS}
    return trimmed


__all__ = [
    "DEFAULT_KEEP",
    "STRUCTURAL_KERNEL_KEYS",
    "CheckpointManager",
    "SnapshotRecipeMismatch",
    "branch",
    "checkpointed_run",
    "comparable_summary",
    "ensure_recipe_compatible",
    "fast_forward",
    "load_snapshot",
    "platform_recipe",
    "rebuild_platform",
    "restore_platform",
    "warmup_snapshot",
]
