"""Crash-durable TG simulation: auto-checkpointing, restore, branching.

The kernel layer (:mod:`repro.kernel.snapshot`) captures and re-applies
simulation state; this module makes that *self-contained on disk*:

* :func:`platform_recipe` embeds everything needed to rebuild the TG
  platform (programs as ``.tgp`` text, socket count, interconnect,
  config overrides, resilience knobs) into the snapshot payload, so
  ``repro-experiment --restore run.snap`` needs no reference re-run and
  no other files;
* :class:`CheckpointManager` writes ``.snap`` artifacts atomically
  (write-then-rename) and retains only the newest K — a SIGKILL at any
  instant leaves either the previous snapshot or the complete new one,
  never a torn file;
* :func:`checkpointed_run` drives a platform to completion, snapshotting
  at the first quiescent cycle at or after every cadence boundary;
* :func:`restore_platform` rebuilds a platform from a payload's embedded
  recipe and applies the snapshot — the continuation is bit-identical to
  the uninterrupted run, under either kernel backend;
* :func:`branch` is the fault-campaign primitive: restore the shared
  warm-up state with a *fresh* fault injector (new spec/seed), so N
  scenarios share one warm-up simulation.

See docs/CHECKPOINT.md for the format and the quiescence rules.
"""

import os
from typing import Dict, Optional, Union

from repro.artifacts.errors import SnapshotError
from repro.artifacts.snap import dump_snap, load_snap
from repro.core.program import TGProgram, parse_tgp
from repro.faults import FaultSpec, RetryPolicy
from repro.harness.experiments import build_tg_platform
from repro.platform import MparmPlatform

#: Snapshots retained per directory by default.
DEFAULT_KEEP = 3

_SNAP_SUFFIX = ".snap"


def _serializable_overrides(config_overrides: Optional[dict]) -> dict:
    overrides = dict(config_overrides or {})
    spec = overrides.get("fault_spec")
    if isinstance(spec, FaultSpec):
        overrides["fault_spec"] = spec.to_dict()
    return overrides


def platform_recipe(programs: Dict[int, TGProgram], n_cores: int,
                    interconnect: str = "ahb",
                    config_overrides: Optional[dict] = None,
                    retry_policy: Optional[RetryPolicy] = None,
                    watchdog_cycles: Optional[int] = None) -> dict:
    """Self-contained rebuild recipe for a TG platform.

    Mirrors the :func:`~repro.harness.experiments.build_tg_platform`
    signature; programs travel as ``.tgp`` text (their canonical,
    checksummable form — the TG validates the CRC at restore).
    """
    return {
        "kind": "tg_platform",
        "programs": {str(master_id): programs[master_id].to_tgp()
                     for master_id in sorted(programs)},
        "n_cores": n_cores,
        "interconnect": interconnect,
        "config_overrides": _serializable_overrides(config_overrides),
        "retry_policy": (retry_policy.to_dict()
                         if retry_policy is not None else None),
        "watchdog_cycles": watchdog_cycles,
    }


def rebuild_platform(recipe: dict,
                     config_overrides: Optional[dict] = None,
                     ) -> MparmPlatform:
    """Build a fresh, un-started platform from a snapshot recipe.

    ``config_overrides`` are applied *on top* of the recipe's own
    overrides (the branch mechanism swaps fault spec/seed/backend this
    way).
    """
    from repro.kernel.snapshot import state_get
    if not isinstance(recipe, dict) \
            or recipe.get("kind") != "tg_platform":
        raise SnapshotError(
            "snapshot has no embedded platform recipe",
            hint="only snapshots taken through the harness/CLI are "
                 "self-contained; rebuild the platform yourself and use "
                 "MparmPlatform.apply_snapshot")
    raw_programs = state_get(recipe, "programs", "platform recipe")
    if not isinstance(raw_programs, dict) or not raw_programs:
        raise SnapshotError(
            "snapshot platform recipe carries no programs")
    try:
        programs = {int(master_id): parse_tgp(text)
                    for master_id, text in raw_programs.items()}
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"snapshot platform recipe has an unparsable program "
            f"({error})") from None
    overrides = dict(state_get(recipe, "config_overrides",
                               "platform recipe") or {})
    overrides.update(config_overrides or {})
    retry = state_get(recipe, "retry_policy", "platform recipe")
    return build_tg_platform(
        programs,
        state_get(recipe, "n_cores", "platform recipe"),
        state_get(recipe, "interconnect", "platform recipe"),
        overrides,
        retry_policy=RetryPolicy.from_dict(retry),
        watchdog_cycles=state_get(recipe, "watchdog_cycles",
                                  "platform recipe"))


def restore_platform(payload: dict,
                     backend: Optional[str] = None) -> MparmPlatform:
    """Rebuild the platform a snapshot embeds and apply the snapshot.

    The returned platform sits at the snapshot cycle, started, with the
    exact pending-event set of the captured run — ``platform.run()``
    continues it to a bit-identical completion.  ``backend`` optionally
    continues under a *different* kernel engine than the capture ran on
    (re-armed entries are structural, so the continuation is still
    bit-identical).
    """
    from repro.kernel.snapshot import _require
    overrides = {"backend": backend} if backend is not None else None
    platform = rebuild_platform(_require(payload, "platform", "payload"),
                                overrides)
    platform.apply_snapshot(payload)
    return platform


def branch(payload: dict,
           fault_spec: Union[None, dict, FaultSpec] = None,
           fault_seed: Optional[int] = None,
           backend: Optional[str] = None) -> MparmPlatform:
    """Branch a fault scenario off a shared warm-up snapshot.

    Rebuilds the platform with the given fault spec/seed (and optionally
    a different kernel backend), then applies the snapshot with a
    **fresh** injector: all architectural state — TG registers, memory
    contents, traffic counters — continues from the warm-up, while the
    fault sequence is the new scenario's own.  Simulate the warm-up
    once, branch N times.
    """
    overrides: dict = {}
    if fault_spec is not None:
        overrides["fault_spec"] = (fault_spec.to_dict()
                                   if isinstance(fault_spec, FaultSpec)
                                   else fault_spec)
    if fault_seed is not None:
        overrides["fault_seed"] = fault_seed
        if "fault_spec" not in overrides:
            raise SnapshotError(
                "branch got fault_seed without fault_spec",
                hint="pass the scenario's fault spec as well")
    if backend is not None:
        overrides["backend"] = backend
    from repro.kernel.snapshot import _require
    platform = rebuild_platform(
        _require(payload, "platform", "payload"), overrides)
    platform.apply_snapshot(payload, fresh=["injector"])
    return platform


class CheckpointManager:
    """Atomic ``.snap`` writer with bounded retention.

    Snapshots are named ``<prefix>-<cycle padded to 12>.snap`` so
    lexicographic order equals cycle order; :meth:`save` writes to a
    ``.tmp`` sibling and ``os.replace``-renames it into place, then
    prunes everything but the newest ``keep``.
    """

    def __init__(self, directory, keep: int = DEFAULT_KEEP,
                 prefix: str = "ckpt"):
        if keep < 1:
            raise SnapshotError(f"checkpoint retention must be >= 1, "
                                f"got {keep}")
        self.directory = str(directory)
        self.keep = keep
        self.prefix = prefix
        os.makedirs(self.directory, exist_ok=True)

    def _snapshots(self):
        names = [name for name in os.listdir(self.directory)
                 if name.startswith(self.prefix + "-")
                 and name.endswith(_SNAP_SUFFIX)]
        return sorted(names)

    def latest(self) -> Optional[str]:
        """Path of the newest retained snapshot, or None."""
        names = self._snapshots()
        if not names:
            return None
        return os.path.join(self.directory, names[-1])

    def save(self, payload: dict) -> str:
        """Atomically write one snapshot; returns its path."""
        cycle = payload.get("cycle", 0)
        name = f"{self.prefix}-{cycle:012d}{_SNAP_SUFFIX}"
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        text = dump_snap(payload)
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        for stale in self._snapshots()[:-self.keep]:
            os.unlink(os.path.join(self.directory, stale))
        return path


def checkpointed_run(platform: MparmPlatform, recipe: dict,
                     manager: CheckpointManager, every: int,
                     scan_limit: Optional[int] = None,
                     progress_window: Optional[int] = None) -> int:
    """Run a platform to completion, checkpointing as it goes.

    A snapshot is taken at the first quiescent cycle at or after each
    ``every``-cycle boundary (quiescence scans may overshoot slightly;
    the next boundary is measured from the snapshot cycle).  Completion
    semantics — deadlock detection, the livelock watchdog — match a
    plain ``platform.run(progress_window=...)``.
    """
    if every < 1:
        raise SnapshotError(
            f"checkpoint cadence must be >= 1 cycle, got {every}")
    sim = platform.sim
    if not platform._started:
        platform.start()  # run() starts lazily; we peek the queue first
    while True:
        boundary = sim.now + every
        # fire cluster-by-cluster so the clock stops on the last event
        # when the run completes inside this segment — run(until=X)
        # would coast to X and overshoot the natural completion cycle
        while True:
            next_time = sim._queue.peek_time()
            if next_time is None or next_time > boundary:
                break
            platform.run(until=next_time,
                         progress_window=progress_window)
        if sim._queue.peek_time() is None:
            break
        manager.save(platform.snapshot(recipe, scan_limit))
    # drained (or finished): let the normal run path apply its
    # completion/deadlock checks
    return platform.run(progress_window=progress_window)


def load_snapshot(path) -> dict:
    """Load + verify a ``.snap`` file; returns the payload dict."""
    return load_snap(path).value


#: Kernel diagnostics whose values depend on the *dispatch mode* (batched
#: drain vs bounded stepping) on the fast backend, not on the simulated
#: behaviour — the same set test_backend_parity already treats as
#: backend-structural.  Everything else in a summary is bit-stable.
STRUCTURAL_KERNEL_KEYS = ("heap_compactions", "peak_heap_size",
                          "queued_tombstones")


def comparable_summary(summary: dict) -> dict:
    """A stats summary with dispatch-mode-dependent diagnostics removed.

    Use this to compare a checkpointed/restored run against an
    uninterrupted one on the ``fast`` backend; on ``classic`` the full
    summaries already match bit-for-bit.
    """
    trimmed = dict(summary)
    kernel = trimmed.get("kernel")
    if isinstance(kernel, dict):
        trimmed["kernel"] = {key: value for key, value in kernel.items()
                             if key not in STRUCTURAL_KERNEL_KEYS}
    return trimmed


__all__ = [
    "DEFAULT_KEEP",
    "STRUCTURAL_KERNEL_KEYS",
    "CheckpointManager",
    "branch",
    "checkpointed_run",
    "comparable_summary",
    "load_snapshot",
    "platform_recipe",
    "rebuild_platform",
    "restore_platform",
]
