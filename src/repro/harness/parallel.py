"""Parallel, cached, journalled execution of sweep grids.

The paper's economics argument — trace once, then evaluate every design
alternative cheaply — only pays off if the *batch* of evaluations is
cheap too, and stays cheap when something goes wrong at point 412 of a
500-point overnight sweep.  This module fans the grid points of a
:class:`~repro.harness.sweep.SweepSpec` out over a supervised worker
pool (:mod:`repro.harness.supervisor`), consults an on-disk
:class:`~repro.harness.cache.ResultCache` first, and can journal every
state transition to a :class:`~repro.harness.journal.SweepJournal` so
an interrupted sweep resumes exactly where it stopped.

Execution contract:

* **Deterministic assembly** — results always come back in grid order
  (fabric-major, then mode, then core count), regardless of which worker
  finished first.  The simulator itself is deterministic, so cycle
  counts are identical between serial and parallel runs; only wall-time
  columns differ.
* **Crash isolation** — an exception inside a grid point marks *that
  point* failed (``simulation-error``); a worker process dying
  (``worker-crash``) costs only the point it was running — the
  supervisor hard-kills and respawns the worker, the other lanes never
  notice.
* **Per-point timeout** — a point still running ``point_timeout_s``
  after its *worker pickup* (not submission — queued points don't age)
  has its worker hard-killed and is marked ``timeout``.
* **Retries** — transient failures (``worker-crash``/``timeout``) are
  retried up to ``retries`` times with exponential backoff and seeded
  jitter; a point that exhausts its budget is quarantined.
  Deterministic failures (``simulation-error``) are never retried.
* **Interruption** — when ``cancel`` is set (or Ctrl-C arrives),
  in-flight points are journalled ``interrupted``, every worker is
  terminated, and :class:`~repro.harness.supervisor.SweepInterrupted`
  carries the partial results out.
* **Progress** — an optional callback receives ``k/N done`` lines with
  cached/failed counts and an ETA extrapolated from completed points.

``jobs=1`` runs the same engine in-process (no pool, so no crash/hang
protection), which is also the fallback for single-point grids.
"""

import copy
import os
import random
import shutil
import tempfile
import threading
import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.modes import ReplayMode
from repro.harness.cache import (
    ResultCache,
    point_cache_key,
    repro_version,
    warmup_digest,
)
from repro.harness.journal import SweepJournal
from repro.harness.supervisor import (
    INTERRUPTED,
    SIMULATION_ERROR,
    SweepInterrupted,
    SweepPointFailure,
    TIMEOUT,
    WORKER_CRASH,
    WorkerSupervisor,
)
from repro.harness.sweep import (
    SYNTHETIC,
    SweepSpec,
    _resolve_app,
    resolve_traffic,
)

__all__ = ["PointResult", "SweepPoint", "expand_grid",
           "run_sweep_parallel"]

#: Test-only knob: every worker sleeps this many seconds before
#: simulating (set the env var in tests to exercise the timeout path).
_TEST_SLEEP_ENV = "REPRO_SWEEP_TEST_SLEEP_S"

#: Kill a worker that stops heartbeating for this long (presumed hung).
DEFAULT_HEARTBEAT_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class SweepPoint:
    """One grid point, as plain picklable data (no app modules)."""

    index: int
    benchmark: str
    n_cores: int
    interconnect: str
    mode: str                      # ReplayMode.value, JSON-friendly
    app_params: Dict = field(default_factory=dict)
    fault_spec: Optional[Dict] = None
    fault_seed: int = 0
    traffic: Optional[Dict] = None  # synthetic sweeps: resolved spec dict
    backend: str = "classic"        # kernel dispatch engine
    warmup_cycles: Optional[int] = None   # mixed-fidelity fast-forward
    warmup_fabric: str = "tlm"

    def warmup_material(self) -> Optional[Dict]:
        """The warm-up equivalence-class material (None when disabled).

        Everything that determines the warm-up snapshot's bytes.  A
        synthetic point's material deliberately *excludes* the target
        interconnect, the kernel backend and the fault axes — the
        warm-up always runs on ``warmup_fabric``, healthy, and backends
        are bit-identical — so grid points differing only along those
        axes share one warm-up simulation.  Classic-benchmark points
        include the interconnect (their programs are translated from
        traces collected on it), so each is its own singleton class and
        warms up in-worker.
        """
        if self.warmup_cycles is None:
            return None
        material: Dict = {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "mode": self.mode,
            "warmup_cycles": self.warmup_cycles,
            "warmup_fabric": self.warmup_fabric,
        }
        if self.traffic is not None:
            material["traffic"] = self.traffic
        else:
            material["interconnect"] = self.interconnect
            material["app_params"] = self.app_params
        return material

    def warmup_key(self) -> Optional[str]:
        """Digest naming this point's warm-up snapshot (None = cold)."""
        material = self.warmup_material()
        return None if material is None else warmup_digest(material)

    def provenance(self, version: Optional[str] = None) -> Dict:
        """The pre-hash cache-key material (human-readable)."""
        provenance = {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "interconnect": self.interconnect,
            "mode": self.mode,
            "app_params": self.app_params,
            "fault_spec": self.fault_spec,
            "fault_seed": self.fault_seed,
            "version": version if version is not None else repro_version(),
        }
        if self.traffic is not None:
            provenance["traffic"] = self.traffic
        if self.backend != "classic":
            provenance["backend"] = self.backend
        warmup = self.warmup_key()
        if warmup is not None:
            provenance["warmup"] = warmup
        return provenance

    def cache_key(self, version: Optional[str] = None) -> str:
        return point_cache_key(
            self.benchmark, self.n_cores, self.interconnect, self.mode,
            self.app_params, self.fault_spec, self.fault_seed,
            traffic=self.traffic, backend=self.backend, version=version,
            warmup=self.warmup_key())

    def payload(self) -> Dict:
        """The dict shipped to a worker process (deep-copied params)."""
        payload = {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "interconnect": self.interconnect,
            "mode": self.mode,
            "app_params": copy.deepcopy(self.app_params),
            "fault_spec": copy.deepcopy(self.fault_spec),
            "fault_seed": self.fault_seed,
            "traffic": copy.deepcopy(self.traffic),
            "backend": self.backend,
        }
        if self.warmup_cycles is not None:
            payload["warmup"] = {"cycles": self.warmup_cycles,
                                 "fabric": self.warmup_fabric,
                                 "digest": self.warmup_key()}
        return payload


def expand_grid(spec: SweepSpec) -> List[SweepPoint]:
    """Grid points in canonical sweep order (fabric → mode → cores).

    The order matches :func:`repro.harness.sweep.run_sweep`, so serial
    and parallel sweeps render identical tables.  Every point gets its
    own deep copy of the app params.
    """
    points: List[SweepPoint] = []
    for interconnect in spec.interconnects:
        for mode in spec.modes:
            for n_cores in spec.cores:
                if spec.benchmark == SYNTHETIC:
                    for pattern in (spec.patterns or [None]):
                        for load in (spec.loads or [None]):
                            points.append(SweepPoint(
                                index=len(points),
                                benchmark=spec.benchmark,
                                n_cores=n_cores,
                                interconnect=interconnect,
                                mode=mode.value,
                                fault_spec=copy.deepcopy(spec.fault_spec),
                                fault_seed=spec.fault_seed,
                                traffic=resolve_traffic(
                                    spec.traffic, n_cores, mode.value,
                                    pattern=pattern, load=load),
                                backend=spec.backend,
                                warmup_cycles=spec.warmup_cycles,
                                warmup_fabric=spec.warmup_fabric))
                    continue
                points.append(SweepPoint(
                    index=len(points), benchmark=spec.benchmark,
                    n_cores=n_cores, interconnect=interconnect,
                    mode=mode.value,
                    app_params=copy.deepcopy(spec.app_params),
                    fault_spec=copy.deepcopy(spec.fault_spec),
                    fault_seed=spec.fault_seed,
                    backend=spec.backend,
                    warmup_cycles=spec.warmup_cycles,
                    warmup_fabric=spec.warmup_fabric))
    return points


class PointResult:
    """Picklable outcome of one grid point.

    Mirrors the scalar fields and derived columns of
    :class:`~repro.harness.experiments.TGFlowResult` (so the
    ``sweep_table``/``sweep_csv`` renderers accept either), plus the
    execution metadata resilient sweeps need: ``status`` (``"ok"`` or
    ``"failed"``), the typed ``failure``
    (:class:`~repro.harness.supervisor.SweepPointFailure`, None when
    ok), how many ``attempts`` the point consumed, whether it was
    ``quarantined`` after exhausting retries, and whether the row was
    served from the ``cached`` results or the ``journaled`` record of
    an earlier run.  ``traceback`` mirrors ``failure`` for rendering.
    """

    def __init__(self, benchmark: str, n_cores: int, interconnect: str,
                 mode: ReplayMode):
        self.benchmark = benchmark
        self.n_cores = n_cores
        self.interconnect = interconnect
        self.mode = mode
        self.ref_cycles = 0
        self.tg_cycles = 0
        self.ref_wall = 0.0
        self.tg_wall = 0.0
        self.ref_events = 0
        self.tg_events = 0
        # synthetic-sweep columns (None on classic benchmark rows; a
        # non-None offered_load marks the row synthetic for renderers)
        self.offered_load: Optional[float] = None
        self.pattern: Optional[str] = None
        self.scheduled_load: Optional[float] = None
        self.realised_load: Optional[float] = None
        self.latency_avg: Optional[float] = None
        self.latency_max: Optional[int] = None
        self.issued: Optional[int] = None
        self.words: Optional[int] = None
        self.throughput_wpkc: Optional[float] = None
        self.status = "ok"
        self.failure: Optional[SweepPointFailure] = None
        self.traceback: Optional[str] = None
        self.attempts = 1
        self.quarantined = False
        self.cached = False
        self.journaled = False
        #: this row was simulated *in this run* by restoring a warm-up
        #: snapshot (cache/journal-served rows keep it False — their
        #: provenance is the cache or journal, however they were first
        #: computed)
        self.warm_restored = False
        self.cache_key: Optional[str] = None

    def fail(self, failure: SweepPointFailure,
             quarantined: bool = False) -> "PointResult":
        self.status = "failed"
        self.failure = failure
        self.traceback = failure.traceback or failure.message
        self.attempts = failure.attempts
        self.quarantined = quarantined
        return self

    @classmethod
    def from_summary(cls, point: SweepPoint, summary: Dict,
                     cached: bool = False,
                     cache_key: Optional[str] = None) -> "PointResult":
        result = cls(point.benchmark, point.n_cores, point.interconnect,
                     ReplayMode.from_name(point.mode))
        status = summary.get("status")
        if status == "ok":
            for name in ("ref_cycles", "tg_cycles", "ref_wall", "tg_wall",
                         "ref_events", "tg_events", "offered_load",
                         "pattern", "scheduled_load", "realised_load",
                         "latency_avg", "latency_max", "issued", "words",
                         "throughput_wpkc"):
                if name in summary:
                    setattr(result, name, summary[name])
        elif status == "failed":
            result.fail(SweepPointFailure(
                SIMULATION_ERROR, "grid point raised inside the worker",
                traceback=summary.get("traceback")))
        else:
            # a summary with no (or an unknown) status is untrustworthy —
            # e.g. a stale cache entry from an older schema; defaulting
            # to "ok" here would report zeros as real cycle counts
            result.fail(SweepPointFailure(
                SIMULATION_ERROR,
                f"result summary carries an invalid status {status!r} "
                f"(stale cache entry from an older schema?); treating "
                f"the point as failed"))
        result.cached = cached
        result.cache_key = cache_key
        return result

    @property
    def error(self) -> float:
        if self.ref_cycles == 0:
            return 0.0
        return abs(self.tg_cycles - self.ref_cycles) / self.ref_cycles

    @property
    def gain(self) -> float:
        return self.ref_wall / self.tg_wall if self.tg_wall > 0 else 0.0

    @property
    def event_gain(self) -> float:
        return self.ref_events / self.tg_events if self.tg_events else 0.0

    def __repr__(self) -> str:
        flags = " cached" if self.cached else ""
        flags += " journaled" if self.journaled else ""
        status = self.status if self.failure is None \
            else f"{self.status}:{self.failure.kind}"
        return (f"<PointResult {self.benchmark} {self.n_cores}P "
                f"{self.interconnect} {status}{flags}>")


def _execute_point(payload: Dict) -> Dict:
    """Worker body: run one grid point, return a picklable summary.

    Runs in a pool worker (or in-process for ``jobs=1``).  All failures
    are folded into a ``{"status": "failed"}`` summary so an exploding
    grid point cannot take the pool down with it.
    """
    sleep_s = float(os.environ.get(_TEST_SLEEP_ENV, "0") or 0.0)
    if sleep_s > 0:
        time.sleep(sleep_s)
    try:
        warmup = payload.get("warmup")
        warmup_cycles = warmup["cycles"] if warmup is not None else None
        warmup_fabric = warmup["fabric"] if warmup is not None else "tlm"
        if payload["benchmark"] == SYNTHETIC:
            from repro.apps.synthetic import TrafficSpec, synthetic_flow
            spec = TrafficSpec.from_dict(payload["traffic"])
            overrides = None
            if payload.get("fault_spec") is not None:
                overrides = {
                    "fault_spec": payload["fault_spec"],
                    "fault_seed": payload.get("fault_seed", 0),
                }
            warmup_payload = None
            if warmup is not None and warmup.get("snap_path"):
                # a damaged or vanished driver snapshot is a cache-style
                # miss, not a failure: the worker re-derives the same
                # warm-up itself (deterministic, so same result)
                from repro.artifacts.errors import ArtifactError
                from repro.harness.checkpoint import load_snapshot
                try:
                    warmup_payload = load_snapshot(warmup["snap_path"])
                except (OSError, ArtifactError):
                    warmup_payload = None
            result = synthetic_flow(spec, payload["interconnect"],
                                    config_overrides=overrides,
                                    backend=payload.get("backend"),
                                    warmup_cycles=warmup_cycles,
                                    warmup_fabric=warmup_fabric,
                                    warmup_payload=warmup_payload)
            summary = result.summary()
            summary["status"] = "ok"
            return summary
        from repro.harness.experiments import tg_flow
        app = _resolve_app(payload["benchmark"])
        result = tg_flow(
            app, payload["n_cores"],
            interconnect=payload["interconnect"],
            mode=ReplayMode.from_name(payload["mode"]),
            app_params=payload["app_params"] or None,
            fault_spec=payload.get("fault_spec"),
            fault_seed=payload.get("fault_seed", 0),
            backend=payload.get("backend"),
            warmup_cycles=warmup_cycles,
            warmup_fabric=warmup_fabric)
        summary = result.summary()
        summary["status"] = "ok"
        return summary
    except Exception:
        return {"status": "failed",
                "traceback": traceback_module.format_exc()}


def _shared_warmup_payload(point: SweepPoint) -> Dict:
    """Simulate one equivalence class's warm-up prefix in the driver.

    Programs are built through
    :func:`repro.apps.synthetic.synthetic_programs` — the same helper
    the restoring workers use — so the snapshot's embedded recipe
    byte-matches the recipe each worker derives independently (and
    :func:`~repro.harness.checkpoint.ensure_recipe_compatible` accepts
    the restore).  The warm-up is healthy and fabric/backend-agnostic
    by construction (see :meth:`SweepPoint.warmup_material`).
    """
    from repro.apps.synthetic import TrafficSpec, synthetic_programs
    from repro.harness.checkpoint import warmup_snapshot
    spec = TrafficSpec.from_dict(point.traffic)
    programs, _ = synthetic_programs(spec)
    return warmup_snapshot(programs, point.n_cores, point.warmup_cycles,
                           point.warmup_fabric)


def _prepare_warmups(pending: List["_Task"], cache: Optional[ResultCache],
                     share: bool, progress, report: Optional[Dict],
                     cancel: threading.Event, finish_failed, interrupt):
    """Phase A of a warm-up-enabled sweep: one simulation per class.

    Groups the pending synthetic points into warm-up equivalence
    classes, simulates each class's warm-up once (driver-side, serial),
    persists the ``.snap`` into the result cache (or a temporary
    directory with ``--no-cache``) and points every member task at it.
    Classic-benchmark points — and everything when ``share`` is False —
    keep ``snap_path`` unset and warm up in-worker instead.  A class
    whose warm-up simulation fails marks every member point failed
    (``simulation-error``, final, never retried — the failure is
    deterministic).  Returns ``(runnable_tasks, temp_dir)``.
    """
    classes: Dict[str, List[_Task]] = {}
    if share:
        for task in pending:
            point = task.point
            if point.warmup_cycles is None or point.traffic is None:
                continue
            classes.setdefault(point.warmup_key(), []).append(task)
    info: List[Dict] = []
    failed_ids = set()
    warm_tmp: Optional[str] = None
    simulated = cached = 0
    for digest in sorted(classes):
        members = classes[digest]
        if cancel.is_set():
            interrupt([t for t in pending if id(t) not in failed_ids])
        path: Optional[str] = None
        if cache is not None and cache.get_snap(digest) is not None:
            path = str(cache.snap_path_for(digest))
            cached += 1
            source = "cache"
        else:
            try:
                payload = _shared_warmup_payload(members[0].point)
            except Exception:
                detail = traceback_module.format_exc()
                for task in members:
                    finish_failed(task, SweepPointFailure(
                        SIMULATION_ERROR,
                        "warm-up simulation failed for this point's "
                        "equivalence class", traceback=detail,
                        attempts=task.attempt + 1))
                    failed_ids.add(id(task))
                info.append({"digest": digest, "points": len(members),
                             "source": "failed"})
                continue
            simulated += 1
            source = "simulated"
            if cache is not None:
                path = str(cache.put_snap(digest, payload))
            else:
                from repro.artifacts.snap import save_snap
                if warm_tmp is None:
                    warm_tmp = tempfile.mkdtemp(prefix="repro-warmup-")
                path = os.path.join(warm_tmp, f"{digest}.snap")
                save_snap(path, payload)
        for task in members:
            task.snap_path = path
        info.append({"digest": digest, "points": len(members),
                     "source": source})
    if classes and progress is not None:
        progress(f"[sweep] warm-up: {len(classes)} equivalence "
                 f"class(es) — {simulated} simulated, {cached} cached")
    if report is not None:
        report["classes"] = info
        report["simulated"] = simulated
        report["cached"] = cached
    return [t for t in pending if id(t) not in failed_ids], warm_tmp


def _retry_delay(attempt: int, backoff_s: float, jitter_seed: int,
                 index: int) -> float:
    """Exponential backoff with deterministic (seeded) jitter."""
    rng = random.Random(f"{jitter_seed}:{index}:{attempt}")
    return backoff_s * (2 ** attempt) + rng.uniform(0.0, backoff_s)


@dataclass
class _Task:
    """Engine-side state of one not-yet-finished grid point."""

    point: SweepPoint
    key: Optional[str]
    attempt: int = 0
    eligible_at: float = 0.0       # monotonic time a retry may dispatch
    picked_up: Optional[float] = None
    #: driver-captured warm-up snapshot the worker restores from (set
    #: by the warm-up-sharing phase; None = the worker warms up itself)
    snap_path: Optional[str] = None

    def payload(self) -> Dict:
        payload = self.point.payload()
        if self.snap_path is not None and payload.get("warmup"):
            payload["warmup"]["snap_path"] = self.snap_path
        return payload


def run_sweep_parallel(spec: SweepSpec, jobs: Optional[int] = None,
                       cache: Optional[ResultCache] = None,
                       point_timeout_s: Optional[float] = None,
                       progress: Optional[Callable[[str], None]] = None,
                       retries: int = 0,
                       retry_backoff_s: float = 0.5,
                       retry_jitter_seed: int = 0,
                       journal: Optional[SweepJournal] = None,
                       heartbeat_timeout_s: Optional[float]
                       = DEFAULT_HEARTBEAT_TIMEOUT_S,
                       requeue_failed: bool = False,
                       warmup_share: bool = True,
                       warmup_report: Optional[Dict] = None,
                       cancel: Optional[threading.Event] = None,
                       ) -> List[PointResult]:
    """Run a sweep grid over a supervised worker pool.

    Completed points are served, in priority order, from the sweep
    ``journal`` (a resumed run), then the result ``cache``, and only
    then simulated.

    Args:
        spec: The validated sweep description.
        jobs: Worker processes (default: ``os.cpu_count()``); ``1`` runs
            in-process with identical result semantics (but no
            crash/hang/timeout protection).
        cache: Optional :class:`ResultCache`; hits skip simulation, and
            fresh ``ok`` results are stored back.
        point_timeout_s: Per-point wall-clock budget, measured from
            *worker pickup*; the worker of an exceeded point is
            hard-killed and the point fails with kind ``timeout``.
        progress: Callback for human-readable progress lines.
        retries: Re-run a transiently-failed point (worker crash,
            timeout) up to this many extra times; a point that exhausts
            the budget is quarantined.
        retry_backoff_s: Base of the exponential retry backoff.
        retry_jitter_seed: Seed of the deterministic retry jitter.
        journal: Open :class:`SweepJournal`; every state transition is
            appended (write-ahead), and points already terminal in the
            journal are served from it without re-simulation.
        heartbeat_timeout_s: Kill a worker silent for this long
            (presumed hung); None disables hang detection.
        requeue_failed: Re-run points the journal recorded as
            terminally failed or quarantined (default: leave them
            failed).
        warmup_share: When the spec enables warm-up
            (``warmup_cycles``), simulate each warm-up equivalence
            class once in the driver and hand every member worker the
            ``.snap`` to restore from; False makes each worker re-run
            its own warm-up (same results, no sharing).
        warmup_report: Optional dict the warm-up-sharing phase fills
            with ``classes``/``simulated``/``cached`` provenance for
            diagnostics.
        cancel: Event checked between dispatches; once set, the sweep
            journals in-flight points as interrupted, terminates every
            worker and raises :class:`SweepInterrupted` with the
            partial results.

    Returns:
        One :class:`PointResult` per grid point, in grid order.

    Raises:
        SweepInterrupted: The sweep was cancelled (``cancel`` set, or
            ``KeyboardInterrupt``); ``.results`` holds one row per
            point with unfinished ones marked ``interrupted``.
    """
    points = expand_grid(spec)
    total = len(points)
    results: List[Optional[PointResult]] = [None] * total
    counters = {"done": 0, "cached": 0, "journaled": 0, "failed": 0,
                "warm": 0}
    walls: List[float] = []
    if jobs is None:
        jobs = getattr(spec, "jobs", None)
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1
    if cancel is None:
        cancel = threading.Event()
    journal_state = journal.state if journal is not None else None
    if journal_state is not None and \
            journal_state.version != repro_version():
        # results recorded by another simulator version are not
        # bit-identity-trustworthy; re-run everything unfinished
        journal_state = None

    def emit() -> None:
        if progress is None:
            return
        remaining = total - counters["done"]
        if remaining and walls:
            lanes = max(1, min(jobs, remaining))
            eta = f"{sum(walls) / len(walls) * remaining / lanes:.1f}s"
        else:
            eta = "0s" if not remaining else "?"
        segments = [f"{counters['cached']} cached",
                    f"{counters['failed']} failed"]
        if counters["warm"]:
            segments.append(f"{counters['warm']} warm-restored")
        progress(f"[sweep] {counters['done']}/{total} done "
                 f"({', '.join(segments)}), ETA {eta}")

    def finish_ok(task: _Task, summary: Dict,
                  wall: Optional[float] = None) -> None:
        point = task.point
        result = PointResult.from_summary(point, summary, cached=False,
                                          cache_key=task.key)
        result.attempts = task.attempt + 1
        if result.status == "ok":
            warmup = point.warmup_key()
            if warmup is not None:
                result.warm_restored = True
                counters["warm"] += 1
            if wall is not None:
                walls.append(wall)
            if journal is not None:
                journal.record_ok(point.index, task.attempt, summary,
                                  wall=wall, warmup=warmup)
            if cache is not None and task.key is not None:
                cache.put(task.key, summary,
                          provenance=point.provenance())
        else:                      # a "failed" summary from the worker
            if journal is not None:
                journal.record_failed(
                    point.index, task.attempt, SIMULATION_ERROR,
                    result.failure.message,
                    traceback=result.failure.traceback, final=True)
            counters["failed"] += 1
        results[point.index] = result
        counters["done"] += 1
        emit()

    def finish_failed(task: _Task, failure: SweepPointFailure,
                      quarantined: bool = False) -> None:
        point = task.point
        if journal is not None:
            journal.record_failed(point.index, task.attempt, failure.kind,
                                  failure.message,
                                  traceback=failure.traceback, final=True)
            if quarantined:
                journal.record_quarantined(point.index, failure.attempts)
        result = PointResult(point.benchmark, point.n_cores,
                             point.interconnect,
                             ReplayMode.from_name(point.mode))
        result.cache_key = task.key
        result.fail(failure, quarantined=quarantined)
        results[point.index] = result
        counters["failed"] += 1
        counters["done"] += 1
        emit()

    def serve_journal(point: SweepPoint, key: Optional[str]) -> bool:
        """Fill a row from the journal's terminal record, if any."""
        if journal_state is None:
            return False
        if point.index in journal_state.ok:
            record = journal_state.ok[point.index]
            result = PointResult.from_summary(point, record["summary"],
                                              cached=False, cache_key=key)
            result.journaled = True
            result.attempts = record.get("attempt", 0) + 1
            results[point.index] = result
            counters["done"] += 1
            counters["journaled"] += 1
            return True
        if requeue_failed:
            return False
        if point.index in journal_state.failed:
            record = journal_state.failed[point.index]
            result = PointResult(point.benchmark, point.n_cores,
                                 point.interconnect,
                                 ReplayMode.from_name(point.mode))
            result.cache_key = key
            result.fail(
                SweepPointFailure(
                    record.get("kind", SIMULATION_ERROR),
                    record.get("message", "failed in an earlier run"),
                    traceback=record.get("traceback"),
                    attempts=record.get("attempt", 0) + 1),
                quarantined=point.index in journal_state.quarantined)
            result.journaled = True
            results[point.index] = result
            counters["done"] += 1
            counters["journaled"] += 1
            counters["failed"] += 1
            return True
        return False

    def interrupt(unfinished: List[_Task]) -> None:
        """Mark every unfinished point interrupted and carry results out."""
        for task in unfinished:
            point = task.point
            failure = SweepPointFailure(
                INTERRUPTED, "sweep interrupted before the point finished",
                attempts=task.attempt + 1)
            result = PointResult(point.benchmark, point.n_cores,
                                 point.interconnect,
                                 ReplayMode.from_name(point.mode))
            result.cache_key = task.key
            result.fail(failure)
            results[point.index] = result
        journal_dir = str(journal.path.parent) if journal is not None \
            else None
        raise SweepInterrupted([r for r in results if r is not None],
                               journal_dir=journal_dir)

    pending: List[_Task] = []
    for point in points:
        key = point.cache_key() if cache is not None else None
        if serve_journal(point, key):
            continue
        summary = cache.get(key) if cache is not None else None
        if summary is not None:
            results[point.index] = PointResult.from_summary(
                point, summary, cached=True, cache_key=key)
            counters["done"] += 1
            counters["cached"] += 1
            # guard on the live journal state (not the version-nulled
            # journal_state) so a resume under a new repro version does
            # not re-append a duplicate cache record every run
            if journal is not None and point.index not in journal.state.ok:
                journal.record_ok(point.index, 0, summary, source="cache")
            continue
        # attempts consumed by earlier runs count against the retry
        # budget; a resume must not hand every point a fresh one
        prior_attempts = journal_state.attempts.get(point.index, 0) \
            if journal_state is not None else 0
        pending.append(_Task(point, key, attempt=prior_attempts))
    emit()

    if not pending:
        return results            # every point served without simulating

    warm_tmp: Optional[str] = None
    try:
        if any(t.point.warmup_cycles is not None for t in pending):
            pending, warm_tmp = _prepare_warmups(
                pending, cache=cache, share=warmup_share,
                progress=progress, report=warmup_report, cancel=cancel,
                finish_failed=finish_failed, interrupt=interrupt)
            if not pending:
                return results    # every class's warm-up failed

        if jobs == 1 or len(pending) == 1:
            _run_in_process(pending, journal, cancel, finish_ok,
                            interrupt)
            return results

        _run_pool(pending, jobs=min(jobs, len(pending)), journal=journal,
                  cancel=cancel, point_timeout_s=point_timeout_s,
                  heartbeat_timeout_s=heartbeat_timeout_s,
                  retries=retries, retry_backoff_s=retry_backoff_s,
                  retry_jitter_seed=retry_jitter_seed,
                  finish_ok=finish_ok, finish_failed=finish_failed,
                  interrupt=interrupt)
        return results
    finally:
        if warm_tmp is not None:
            shutil.rmtree(warm_tmp, ignore_errors=True)


def _run_in_process(pending: List[_Task], journal: Optional[SweepJournal],
                    cancel: threading.Event, finish_ok, interrupt) -> None:
    """``jobs=1``: same engine, no pool (and no crash/hang protection)."""
    for position, task in enumerate(pending):
        if cancel.is_set():
            interrupt(pending[position:])
        if journal is not None:
            journal.record_started(task.point.index, task.attempt,
                                   key=task.key)
        start = time.perf_counter()
        try:
            summary = _execute_point(task.payload())
        except KeyboardInterrupt:
            if journal is not None:
                journal.record_interrupted(task.point.index, task.attempt)
            interrupt(pending[position:])
        finish_ok(task, summary, wall=time.perf_counter() - start)


def _run_pool(pending: List[_Task], jobs: int,
              journal: Optional[SweepJournal], cancel: threading.Event,
              point_timeout_s: Optional[float],
              heartbeat_timeout_s: Optional[float], retries: int,
              retry_backoff_s: float, retry_jitter_seed: int,
              finish_ok, finish_failed, interrupt) -> None:
    """Fan the pending tasks over a supervised worker pool."""
    tasks = {task.point.index: task for task in pending}
    ready = deque(task.point.index for task in pending)
    deferred: List[int] = []       # waiting out a retry backoff
    in_flight: Dict[int, _Task] = {}
    remaining = len(pending)
    supervisor = WorkerSupervisor(
        min(jobs, len(pending)), heartbeat_timeout_s=heartbeat_timeout_s)
    interrupted = False
    try:
        while remaining > 0:
            if cancel.is_set():
                interrupted = True
                break
            # the pool tracks the outstanding work: a long sweep's last
            # few points (or a mostly-cached resume) must not keep a
            # full complement of idle workers alive
            supervisor.resize(min(jobs, remaining))
            now = time.monotonic()
            for index in list(deferred):
                if tasks[index].eligible_at <= now:
                    deferred.remove(index)
                    ready.append(index)
            while ready and supervisor.idle_count > 0:
                index = ready.popleft()
                task = tasks[index]
                task.picked_up = None
                in_flight[index] = task
                supervisor.dispatch(index, task.payload())
            events = supervisor.poll(timeout=0.05,
                                     point_timeout_s=point_timeout_s)
            for event in events:
                task = tasks.get(event.index)
                if task is None or event.index not in in_flight:
                    continue
                if event.kind == "started":
                    task.picked_up = time.monotonic()
                    if journal is not None:
                        journal.record_started(event.index, task.attempt,
                                               key=task.key)
                    continue
                del in_flight[event.index]
                if event.kind == "result":
                    wall = None if task.picked_up is None \
                        else time.monotonic() - task.picked_up
                    finish_ok(task, event.summary, wall=wall)
                    remaining -= 1
                    continue
                # "crashed" / "timeout" — transient machinery failures
                kind = TIMEOUT if event.kind == "timeout" else WORKER_CRASH
                if task.attempt < retries:
                    if journal is not None:
                        journal.record_failed(event.index, task.attempt,
                                              kind, event.detail,
                                              final=False)
                    delay = _retry_delay(task.attempt, retry_backoff_s,
                                         retry_jitter_seed, event.index)
                    task.attempt += 1
                    task.eligible_at = time.monotonic() + delay
                    deferred.append(event.index)
                else:
                    finish_failed(
                        task,
                        SweepPointFailure(kind, event.detail,
                                          attempts=task.attempt + 1),
                        quarantined=True)
                    remaining -= 1
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if interrupted and journal is not None:
            for index, task in sorted(in_flight.items()):
                journal.record_interrupted(index, task.attempt)
        supervisor.shutdown(graceful=not interrupted)
    if interrupted:
        unfinished = [tasks[i] for i in sorted(
            set(in_flight) | set(ready) | set(deferred))]
        interrupt(unfinished)
