"""Parallel, cached execution of sweep grids.

The paper's economics argument — trace once, then evaluate every design
alternative cheaply — only pays off if the *batch* of evaluations is
cheap too.  This module fans the grid points of a
:class:`~repro.harness.sweep.SweepSpec` out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and consults an
on-disk :class:`~repro.harness.cache.ResultCache` first, so a re-run of
an unchanged sweep performs zero simulations.

Execution contract:

* **Deterministic assembly** — results always come back in grid order
  (fabric-major, then mode, then core count), regardless of which worker
  finished first.  The simulator itself is deterministic, so cycle
  counts are identical between serial and parallel runs; only wall-time
  columns differ.
* **Crash isolation** — an exception inside a grid point (including a
  worker process dying) marks *that point* failed, with its traceback
  attached; the sweep always returns one row per point.
* **Per-point timeout** — a point still outstanding after
  ``point_timeout_s`` (measured from submission) is marked failed; its
  worker is abandoned, never joined mid-simulation.
* **Progress** — an optional callback receives ``k/N done`` lines with
  cached/failed counts and an ETA extrapolated from completed points.

``jobs=1`` runs the same engine in-process (no pool), which is also the
fallback for single-point grids.
"""

import copy
import os
import time
import traceback as traceback_module
from concurrent import futures as cf
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.modes import ReplayMode
from repro.harness.cache import ResultCache, point_cache_key, repro_version
from repro.harness.sweep import SweepSpec, _resolve_app

__all__ = ["PointResult", "SweepPoint", "expand_grid",
           "run_sweep_parallel"]

#: Test-only knob: every worker sleeps this many seconds before
#: simulating (set the env var in tests to exercise the timeout path).
_TEST_SLEEP_ENV = "REPRO_SWEEP_TEST_SLEEP_S"


@dataclass(frozen=True)
class SweepPoint:
    """One grid point, as plain picklable data (no app modules)."""

    index: int
    benchmark: str
    n_cores: int
    interconnect: str
    mode: str                      # ReplayMode.value, JSON-friendly
    app_params: Dict = field(default_factory=dict)
    fault_spec: Optional[Dict] = None
    fault_seed: int = 0

    def provenance(self, version: Optional[str] = None) -> Dict:
        """The pre-hash cache-key material (human-readable)."""
        return {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "interconnect": self.interconnect,
            "mode": self.mode,
            "app_params": self.app_params,
            "fault_spec": self.fault_spec,
            "fault_seed": self.fault_seed,
            "version": version if version is not None else repro_version(),
        }

    def cache_key(self, version: Optional[str] = None) -> str:
        return point_cache_key(
            self.benchmark, self.n_cores, self.interconnect, self.mode,
            self.app_params, self.fault_spec, self.fault_seed,
            version=version)

    def payload(self) -> Dict:
        """The dict shipped to a worker process (deep-copied params)."""
        return {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "interconnect": self.interconnect,
            "mode": self.mode,
            "app_params": copy.deepcopy(self.app_params),
            "fault_spec": copy.deepcopy(self.fault_spec),
            "fault_seed": self.fault_seed,
        }


def expand_grid(spec: SweepSpec) -> List[SweepPoint]:
    """Grid points in canonical sweep order (fabric → mode → cores).

    The order matches :func:`repro.harness.sweep.run_sweep`, so serial
    and parallel sweeps render identical tables.  Every point gets its
    own deep copy of the app params.
    """
    points: List[SweepPoint] = []
    for interconnect in spec.interconnects:
        for mode in spec.modes:
            for n_cores in spec.cores:
                points.append(SweepPoint(
                    index=len(points), benchmark=spec.benchmark,
                    n_cores=n_cores, interconnect=interconnect,
                    mode=mode.value,
                    app_params=copy.deepcopy(spec.app_params),
                    fault_spec=copy.deepcopy(spec.fault_spec),
                    fault_seed=spec.fault_seed))
    return points


class PointResult:
    """Picklable outcome of one grid point.

    Mirrors the scalar fields and derived columns of
    :class:`~repro.harness.experiments.TGFlowResult` (so the
    ``sweep_table``/``sweep_csv`` renderers accept either), plus the
    execution metadata parallel sweeps need: ``status`` (``"ok"`` or
    ``"failed"``), the failure ``traceback``, whether the row was served
    from ``cached`` results, and the ``cache_key`` it lives under.
    """

    def __init__(self, benchmark: str, n_cores: int, interconnect: str,
                 mode: ReplayMode):
        self.benchmark = benchmark
        self.n_cores = n_cores
        self.interconnect = interconnect
        self.mode = mode
        self.ref_cycles = 0
        self.tg_cycles = 0
        self.ref_wall = 0.0
        self.tg_wall = 0.0
        self.ref_events = 0
        self.tg_events = 0
        self.status = "ok"
        self.traceback: Optional[str] = None
        self.cached = False
        self.cache_key: Optional[str] = None

    @classmethod
    def from_summary(cls, point: SweepPoint, summary: Dict,
                     cached: bool = False,
                     cache_key: Optional[str] = None) -> "PointResult":
        result = cls(point.benchmark, point.n_cores, point.interconnect,
                     ReplayMode.from_name(point.mode))
        result.status = summary.get("status", "ok")
        result.traceback = summary.get("traceback")
        for name in ("ref_cycles", "tg_cycles", "ref_wall", "tg_wall",
                     "ref_events", "tg_events"):
            if name in summary:
                setattr(result, name, summary[name])
        result.cached = cached
        result.cache_key = cache_key
        return result

    @property
    def error(self) -> float:
        if self.ref_cycles == 0:
            return 0.0
        return abs(self.tg_cycles - self.ref_cycles) / self.ref_cycles

    @property
    def gain(self) -> float:
        return self.ref_wall / self.tg_wall if self.tg_wall > 0 else 0.0

    @property
    def event_gain(self) -> float:
        return self.ref_events / self.tg_events if self.tg_events else 0.0

    def __repr__(self) -> str:
        flags = " cached" if self.cached else ""
        return (f"<PointResult {self.benchmark} {self.n_cores}P "
                f"{self.interconnect} {self.status}{flags}>")


def _execute_point(payload: Dict) -> Dict:
    """Worker body: run one grid point, return a picklable summary.

    Runs in a pool worker (or in-process for ``jobs=1``).  All failures
    are folded into a ``{"status": "failed"}`` summary so an exploding
    grid point cannot take the pool down with it.
    """
    sleep_s = float(os.environ.get(_TEST_SLEEP_ENV, "0") or 0.0)
    if sleep_s > 0:
        time.sleep(sleep_s)
    try:
        from repro.harness.experiments import tg_flow
        app = _resolve_app(payload["benchmark"])
        result = tg_flow(
            app, payload["n_cores"],
            interconnect=payload["interconnect"],
            mode=ReplayMode.from_name(payload["mode"]),
            app_params=payload["app_params"] or None,
            fault_spec=payload.get("fault_spec"),
            fault_seed=payload.get("fault_seed", 0))
        summary = result.summary()
        summary["status"] = "ok"
        return summary
    except Exception:
        return {"status": "failed",
                "traceback": traceback_module.format_exc()}


def run_sweep_parallel(spec: SweepSpec, jobs: Optional[int] = None,
                       cache: Optional[ResultCache] = None,
                       point_timeout_s: Optional[float] = None,
                       progress: Optional[Callable[[str], None]] = None,
                       ) -> List[PointResult]:
    """Run a sweep grid over a worker pool, consulting ``cache`` first.

    Args:
        spec: The validated sweep description.
        jobs: Worker processes (default: ``os.cpu_count()``); ``1`` runs
            in-process with identical semantics.
        cache: Optional :class:`ResultCache`; hits skip simulation, and
            fresh ``ok`` results are stored back.
        point_timeout_s: Per-point wall-clock budget, measured from
            submission; exceeded points are marked failed.
        progress: Callback for human-readable progress lines.

    Returns:
        One :class:`PointResult` per grid point, in grid order.
    """
    points = expand_grid(spec)
    total = len(points)
    results: List[Optional[PointResult]] = [None] * total
    counters = {"done": 0, "cached": 0, "failed": 0}
    walls: List[float] = []
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1

    def emit() -> None:
        if progress is None:
            return
        remaining = total - counters["done"]
        if remaining and walls:
            lanes = max(1, min(jobs, remaining))
            eta = f"{sum(walls) / len(walls) * remaining / lanes:.1f}s"
        else:
            eta = "0s" if not remaining else "?"
        progress(f"[sweep] {counters['done']}/{total} done "
                 f"({counters['cached']} cached, "
                 f"{counters['failed']} failed), ETA {eta}")

    def finish(point: SweepPoint, key: Optional[str], summary: Dict,
               wall: Optional[float] = None) -> None:
        result = PointResult.from_summary(point, summary, cached=False,
                                          cache_key=key)
        if result.status == "ok":
            if wall is not None:
                walls.append(wall)
            if cache is not None and key is not None:
                cache.put(key, summary, provenance=point.provenance())
        else:
            counters["failed"] += 1
        results[point.index] = result
        counters["done"] += 1
        emit()

    pending: List[tuple] = []
    for point in points:
        key = point.cache_key() if cache is not None else None
        summary = cache.get(key) if cache is not None else None
        if summary is not None:
            results[point.index] = PointResult.from_summary(
                point, summary, cached=True, cache_key=key)
            counters["done"] += 1
            counters["cached"] += 1
            continue
        pending.append((point, key))
    emit()

    if not pending:
        return results            # every point served from cache

    if jobs == 1 or len(pending) == 1:
        for point, key in pending:
            start = time.perf_counter()
            summary = _execute_point(point.payload())
            finish(point, key, summary,
                   wall=time.perf_counter() - start)
        return results

    pool = cf.ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    try:
        submitted = {}
        for point, key in pending:
            future = pool.submit(_execute_point, point.payload())
            submitted[future] = (point, key, time.perf_counter())
        waiting = set(submitted)
        while waiting:
            done, waiting = cf.wait(waiting, timeout=0.2,
                                    return_when=cf.FIRST_COMPLETED)
            for future in done:
                point, key, started = submitted[future]
                try:
                    summary = future.result()
                except Exception:
                    # the worker process died (BrokenProcessPool, ...) —
                    # isolate the damage to this one grid point
                    summary = {"status": "failed",
                               "traceback": traceback_module.format_exc()}
                finish(point, key, summary,
                       wall=time.perf_counter() - started)
            if point_timeout_s is None:
                continue
            now = time.perf_counter()
            for future in list(waiting):
                point, key, started = submitted[future]
                if now - started > point_timeout_s:
                    future.cancel()
                    waiting.discard(future)
                    finish(point, key, {
                        "status": "failed",
                        "traceback": (
                            f"grid point exceeded the per-point timeout "
                            f"of {point_timeout_s:g}s")})
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results
