"""The end-to-end TG experiment flow."""

import time
from typing import Dict, Optional, Tuple, Union

from repro.apps.common import pollable_ranges
from repro.core import ReplayMode, TGMaster, TGProgram
from repro.core.assembler import assemble_binary, disassemble_binary
from repro.faults import FaultSpec, RetryPolicy
from repro.platform import MparmPlatform, PlatformConfig
from repro.trace import TraceCollector, Translator, TranslatorOptions, collect_traces


class TGFlowResult:
    """Everything one benchmark configuration produced."""

    def __init__(self) -> None:
        self.benchmark: str = ""
        self.n_cores: int = 0
        self.interconnect: str = ""
        self.mode: ReplayMode = ReplayMode.REACTIVE
        self.ref_cycles: int = 0          # cumulative execution time, cores
        self.tg_cycles: int = 0           # cumulative execution time, TGs
        self.ref_wall: float = 0.0        # seconds
        self.tg_wall: float = 0.0
        self.ref_events: int = 0          # simulator effort proxies
        self.tg_events: int = 0
        # set on fast-forwarded TG runs: the quiescent cycle the warm-up
        # snapshot was captured at, and the fabric it ran on
        self.warmup_cycle: Optional[int] = None
        self.warmup_fabric: Optional[str] = None
        self.programs: Dict[int, TGProgram] = {}
        self.traces: Dict[int, TraceCollector] = {}
        self.ref_platform: Optional[MparmPlatform] = None
        self.tg_platform: Optional[MparmPlatform] = None

    def summary(self) -> Dict[str, object]:
        """Picklable scalar view of the result (no platforms/programs).

        This is what parallel sweep workers ship back to the parent process
        and what the on-disk result cache stores: every Table-2 number plus
        the provenance fields that identify the configuration, without the
        heavyweight simulation objects (which are neither picklable nor
        worth serialising).

        The warm-up keys appear only on fast-forwarded runs, so
        cold-run summaries are byte-identical to what older versions
        produced.
        """
        data = {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "interconnect": self.interconnect,
            "mode": self.mode.value,
            "ref_cycles": self.ref_cycles,
            "tg_cycles": self.tg_cycles,
            "ref_wall": self.ref_wall,
            "tg_wall": self.tg_wall,
            "ref_events": self.ref_events,
            "tg_events": self.tg_events,
        }
        if self.warmup_cycle is not None:
            data["warmup_cycle"] = self.warmup_cycle
            data["warmup_fabric"] = self.warmup_fabric
        return data

    @property
    def error(self) -> float:
        """Relative cycle error, Table 2's "Error" column."""
        if self.ref_cycles == 0:
            return 0.0
        return abs(self.tg_cycles - self.ref_cycles) / self.ref_cycles

    @property
    def gain(self) -> float:
        """Wall-clock speedup, Table 2's "Gain" column."""
        return self.ref_wall / self.tg_wall if self.tg_wall > 0 else 0.0

    @property
    def event_gain(self) -> float:
        """Speedup in simulator events — a wall-clock-noise-free proxy."""
        return self.ref_events / self.tg_events if self.tg_events else 0.0

    def __repr__(self) -> str:
        return (f"<TGFlowResult {self.benchmark} {self.n_cores}P "
                f"{self.interconnect} err={self.error:.2%} "
                f"gain={self.gain:.2f}x>")


def _build_config(n_cores: int, interconnect: str,
                  config_overrides: Optional[dict]) -> PlatformConfig:
    overrides = dict(config_overrides or {})
    return PlatformConfig(n_masters=n_cores, interconnect=interconnect,
                          **overrides)


def reference_run(app, n_cores: int, interconnect: str = "ahb",
                  app_params: Optional[dict] = None,
                  config_overrides: Optional[dict] = None,
                  collect: bool = True,
                  ) -> Tuple[MparmPlatform, Dict[int, TraceCollector], float]:
    """Run the bit-/cycle-true reference simulation.

    Returns ``(platform, collectors, wall_seconds)``; ``collectors`` is
    empty when ``collect`` is False (used to measure tracing overhead).
    """
    params = dict(app_params or {})
    platform = MparmPlatform(_build_config(n_cores, interconnect,
                                           config_overrides))
    for core_id in range(n_cores):
        platform.add_core(app.source(core_id, n_cores, **params))
    collectors = collect_traces(platform) if collect else {}
    start = time.perf_counter()
    platform.run()
    wall = time.perf_counter() - start
    return platform, collectors, wall


def translate_traces(collectors: Dict[int, TraceCollector], n_cores: int,
                     mode: ReplayMode = ReplayMode.REACTIVE,
                     ) -> Dict[int, TGProgram]:
    """Translate every master's trace into a TG program.

    The programs are additionally pushed through the ``.bin``
    assemble/disassemble cycle, mirroring the real flow (the TG executes
    the binary image, not the symbolic program).
    """
    options = TranslatorOptions(mode=mode,
                                pollable_ranges=pollable_ranges(n_cores))
    translator = Translator(options)
    programs: Dict[int, TGProgram] = {}
    for master_id, collector in collectors.items():
        program = translator.translate_events(collector.events, master_id)
        programs[master_id] = disassemble_binary(assemble_binary(program))
    return programs


def build_tg_platform(programs: Dict[int, TGProgram], n_cores: int,
                      interconnect: str = "ahb",
                      config_overrides: Optional[dict] = None,
                      retry_policy: Optional[RetryPolicy] = None,
                      watchdog_cycles: Optional[int] = None,
                      ) -> MparmPlatform:
    """Build a platform with TGs occupying every master socket.

    ``retry_policy``/``watchdog_cycles`` arm each TG's resilience features;
    a fault spec travels inside ``config_overrides`` (``fault_spec`` /
    ``fault_seed`` keys of :class:`PlatformConfig`).
    """
    platform = MparmPlatform(_build_config(n_cores, interconnect,
                                           config_overrides))
    for master_id in range(n_cores):
        tg = TGMaster(platform.sim, f"tg{master_id}", programs[master_id],
                      retry_policy=retry_policy,
                      watchdog_cycles=watchdog_cycles)
        platform.add_master(tg)
    return platform


def build_testchip_platform(programs: Dict[int, TGProgram], n_cores: int,
                            interconnect: str = "ahb",
                            config_overrides: Optional[dict] = None,
                            ) -> MparmPlatform:
    """Build the all-TG configuration of paper Figure 1(b).

    Master TGs in every socket *and* TG entities for the memories: the
    shared memory becomes a :class:`~repro.core.TGSharedMemorySlave` (a
    real data structure, because the values masters read back matter) and
    each private memory a :class:`~repro.core.TGDummySlave` (master TGs
    never interpret refill data, so dummy values suffice — the paper's
    argument for the simple slave TG).  The synchronisation devices stay,
    since their state *is* the reactive behaviour.  This is the
    configuration a silicon NoC test chip would carry.
    """
    from repro.core import TGDummySlave, TGSharedMemorySlave
    from repro.memory.slave import MemorySlave
    from repro.ocp import OCPSlavePort

    platform = MparmPlatform(_build_config(n_cores, interconnect,
                                           config_overrides))
    config = platform.config
    # swap the RAM models behind the already-mapped slave ports
    for core_id, mem in enumerate(platform.private_mems):
        dummy = TGDummySlave(platform.sim, f"tg_{mem.name}", mem.base,
                             mem.size_bytes, config.private_timings,
                             core_id=core_id)
        platform.address_map.find(mem.base).slave_port.slave = dummy
    shared_tg = TGSharedMemorySlave(
        platform.sim, "tg_shared", platform.shared_mem.base,
        platform.shared_mem.size_bytes, config.shared_timings)
    platform.address_map.find(shared_tg.base).slave_port.slave = shared_tg
    platform.shared_mem = shared_tg
    for master_id in range(n_cores):
        tg = TGMaster(platform.sim, f"tg{master_id}", programs[master_id])
        platform.add_master(tg)
    return platform


def tg_flow(app, n_cores: int, interconnect: str = "ahb",
            tg_interconnect: Optional[str] = None,
            mode: ReplayMode = ReplayMode.REACTIVE,
            app_params: Optional[dict] = None,
            config_overrides: Optional[dict] = None,
            fault_spec: Union[None, dict, FaultSpec] = None,
            fault_seed: int = 0,
            retry_policy: Optional[RetryPolicy] = None,
            watchdog_cycles: Optional[int] = None,
            progress_window: Optional[int] = None,
            backend: Optional[str] = None,
            checkpoint_every: Optional[int] = None,
            checkpoint_dir=None,
            checkpoint_keep: Optional[int] = None,
            warmup_cycles: Optional[int] = None,
            warmup_fabric: str = "tlm") -> TGFlowResult:
    """Full flow: reference run → translate → TG run → compare.

    ``tg_interconnect`` lets the TG simulation run on a *different* fabric
    than the reference (the design-space-exploration use case); accuracy
    is only meaningful when both are the same.

    ``backend`` selects the kernel dispatch engine for *both* runs (see
    :mod:`repro.kernel.backend`); results are bit-identical either way,
    only wall-clock changes.  ``None`` keeps whatever
    ``config_overrides`` says (default ``"classic"``).

    The resilience knobs (``fault_spec``/``fault_seed``/``retry_policy``/
    ``watchdog_cycles``/``progress_window``) apply to the **TG** run only:
    the trace is collected on a healthy reference platform, then replayed
    against a degraded interconnect — the paper's decoupling, exercised
    under adverse conditions.

    ``checkpoint_every`` (cycles) arms crash-durable auto-checkpointing of
    the TG run: self-contained ``.snap`` artifacts land in
    ``checkpoint_dir`` (keeping the newest ``checkpoint_keep``), each
    restorable with ``repro-experiment --restore`` to a bit-identical
    continuation (see docs/CHECKPOINT.md).

    ``warmup_cycles`` arms mixed-fidelity fast-forward of the TG run
    (the reference run is untouched): the translated programs first run
    on ``warmup_fabric`` up to the first quiescent cycle at or after
    the boundary, and the snapshot is then restored onto the TG fabric
    — fault injection arming at the restore point.  Mutually exclusive
    with ``checkpoint_every``.
    """
    if warmup_cycles is not None and checkpoint_every is not None:
        raise ValueError("warm-up fast-forward and auto-checkpointing "
                         "are mutually exclusive")
    result = TGFlowResult()
    result.benchmark = getattr(app, "__name__", str(app)).split(".")[-1]
    result.n_cores = n_cores
    result.interconnect = interconnect
    result.mode = mode

    if backend is not None:
        config_overrides = dict(config_overrides or {})
        config_overrides["backend"] = backend

    platform, collectors, ref_wall = reference_run(
        app, n_cores, interconnect, app_params, config_overrides)
    result.ref_platform = platform
    result.traces = collectors
    result.ref_wall = ref_wall
    result.ref_events = platform.sim.events_fired
    result.ref_cycles = platform.cumulative_execution_time

    result.programs = translate_traces(collectors, n_cores, mode)

    tg_overrides = dict(config_overrides or {})
    if fault_spec is not None:
        tg_overrides["fault_spec"] = fault_spec
        tg_overrides["fault_seed"] = fault_seed
    if warmup_cycles is not None:
        from repro.harness.checkpoint import fast_forward, warmup_snapshot
        payload = warmup_snapshot(result.programs, n_cores, warmup_cycles,
                                  warmup_fabric, tg_overrides,
                                  retry_policy=retry_policy,
                                  watchdog_cycles=watchdog_cycles)
        start = time.perf_counter()
        tg_platform = fast_forward(payload,
                                   interconnect=tg_interconnect
                                   or interconnect,
                                   config_overrides=tg_overrides)
        tg_platform.run(progress_window=progress_window)
        result.warmup_cycle = payload["cycle"]
        result.warmup_fabric = warmup_fabric
        result.tg_wall = time.perf_counter() - start
        result.tg_platform = tg_platform
        result.tg_events = tg_platform.sim.events_fired
        result.tg_cycles = tg_platform.cumulative_execution_time
        return result
    tg_platform = build_tg_platform(result.programs, n_cores,
                                    tg_interconnect or interconnect,
                                    tg_overrides,
                                    retry_policy=retry_policy,
                                    watchdog_cycles=watchdog_cycles)
    start = time.perf_counter()
    if checkpoint_every is not None:
        from repro.harness.checkpoint import (
            DEFAULT_KEEP,
            CheckpointManager,
            checkpointed_run,
            platform_recipe,
        )
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        recipe = platform_recipe(result.programs, n_cores,
                                 tg_interconnect or interconnect,
                                 tg_overrides, retry_policy,
                                 watchdog_cycles)
        manager = CheckpointManager(
            checkpoint_dir,
            keep=checkpoint_keep if checkpoint_keep else DEFAULT_KEEP)
        checkpointed_run(tg_platform, recipe, manager, checkpoint_every,
                         progress_window=progress_window)
    else:
        tg_platform.run(progress_window=progress_window)
    result.tg_wall = time.perf_counter() - start
    result.tg_platform = tg_platform
    result.tg_events = tg_platform.sim.events_fired
    result.tg_cycles = tg_platform.cumulative_execution_time
    return result


def resilience_demo(app, n_cores: int = 2, interconnect: str = "ahb",
                    fault_spec: Union[None, dict, FaultSpec] = None,
                    fault_seed: int = 0,
                    retry_policy: Optional[RetryPolicy] = None,
                    watchdog_cycles: Optional[int] = 50_000,
                    app_params: Optional[dict] = None) -> Dict[str, object]:
    """Demonstrate TG resilience: healthy TG run vs. seeded degraded run.

    Collects one trace, replays it twice — once on a healthy platform and
    once under ``fault_spec`` with retrying TGs — and reports the injected
    fault counts, the retry accounting, and the cycle-count degradation.
    A spec of recoverable faults plus a retry policy must complete instead
    of hanging; that completion is the demo.
    """
    if fault_spec is None:
        # default scenario: the shared memory errors every 7th read, the
        # TGs absorb it with three-attempt exponential backoff
        fault_spec = FaultSpec.from_dict(
            {"slave_errors": [{"slave": "shared", "nth": 7}]})
    if retry_policy is None:
        retry_policy = RetryPolicy(max_attempts=4, backoff=2,
                                   backoff_factor=2, on_exhaust="degrade")
    healthy = tg_flow(app, n_cores, interconnect, app_params=app_params)
    degraded = tg_flow(app, n_cores, interconnect, app_params=app_params,
                       fault_spec=fault_spec, fault_seed=fault_seed,
                       retry_policy=retry_policy,
                       watchdog_cycles=watchdog_cycles)
    counters = degraded.tg_platform.resilience_counters()
    healthy_cycles = healthy.tg_cycles
    degraded_cycles = degraded.tg_cycles
    return {
        "benchmark": healthy.benchmark,
        "n_cores": n_cores,
        "interconnect": interconnect,
        "fault_seed": fault_seed,
        "healthy_tg_cycles": healthy_cycles,
        "degraded_tg_cycles": degraded_cycles,
        "slowdown": (degraded_cycles / healthy_cycles
                     if healthy_cycles else 0.0),
        "resilience": counters.as_dict(),
        "completed": degraded.tg_platform.all_finished,
    }


def table2_row(result: TGFlowResult) -> str:
    """Format one result like a row of the paper's Table 2."""
    return (f"{result.n_cores}P  ARM={result.ref_cycles}  "
            f"TG={result.tg_cycles}  Error={result.error:.2%}  "
            f"ref={result.ref_wall:.3f}s  tg={result.tg_wall:.3f}s  "
            f"Gain={result.gain:.2f}x")
