"""Command-line toolchain.

The paper's flow is file-based: OCP monitors write ``.trc`` traces, a
translator emits symbolic ``.tgp`` programs, an assembler produces
``.bin`` images for the TG instruction memory.  These commands expose
that flow (plus the experiment runner) from the shell:

========================= ============================================
command                   purpose
========================= ============================================
``repro-trc2tgp``         translate a ``.trc`` trace into a ``.tgp``
``repro-tgasm``           assemble ``.tgp`` → ``.bin``
``repro-tgdump``          disassemble ``.bin`` → ``.tgp`` text
``repro-trace-stats``     summarise a ``.trc`` (mix, latencies, gaps)
``repro-traceset``        inspect/translate trace-set directories
``repro-experiment``      run one Table-2 configuration end to end
``repro-sweep``           run an experiment grid from a JSON spec
``repro-traffic``         generate/simulate synthetic TG traffic
========================= ============================================

Each command is also importable (``main(argv) -> int``) for testing.
"""

from repro.cli.tools import (
    experiment_main,
    sweep_main,
    tgasm_main,
    tgdump_main,
    trace_stats_main,
    traceset_main,
    traffic_main,
    trc2tgp_main,
)

__all__ = [
    "experiment_main",
    "sweep_main",
    "tgasm_main",
    "tgdump_main",
    "trace_stats_main",
    "traceset_main",
    "traffic_main",
    "trc2tgp_main",
]
