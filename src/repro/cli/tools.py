"""Implementations of the command-line tools.

Failure contract (see docs/ARTIFACTS.md for the full table): artifact
defects exit with the error class's distinct code (3 missing file,
4 parse, 5 checksum, 6 version, 7 truncated) and one actionable stderr
line — never a traceback.  ``--diagnostics-json FILE`` additionally
writes a machine-readable report (``-`` for stdout); ``--permissive``
(trace-reading tools) skips recoverably-bad records instead of failing.
"""

import argparse
import json
import sys
from typing import List, Optional

from repro.artifacts import (
    EXIT_MISSING_FILE,
    EXIT_PARSE,
    ArtifactError,
    DiagnosticReport,
)
from repro.core import ReplayMode
from repro.trace import Translator, TranslatorOptions, group_events


def _parse_range(text: str):
    """``BASE:SIZE`` (both int literals, hex ok) -> (base, size)."""
    try:
        base_text, size_text = text.split(":")
        return int(base_text, 0), int(size_text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected BASE:SIZE (e.g. 0x1a000000:0x80), got {text!r}")


# ------------------------------------------------------ failure plumbing

def _write_diagnostics(path: Optional[str], payload: dict) -> None:
    if not path:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text + "\n")


def _diagnostics_payload(tool: str, ok: bool,
                         error: Optional[Exception] = None,
                         report: Optional[DiagnosticReport] = None) -> dict:
    payload = {"tool": tool, "ok": ok}
    if isinstance(error, ArtifactError):
        payload["error"] = error.as_dict()
    elif error is not None:
        payload["error"] = {"type": type(error).__name__,
                            "message": str(error),
                            "exit_code": EXIT_MISSING_FILE}
    if report is not None:
        payload["skipped"] = len(report)
        payload["diagnostics"] = report.as_dict()["diagnostics"]
    return payload


def _guarded(tool: str, body, diagnostics: Optional[str] = None) -> int:
    """Run ``body()``; map artifact/file failures to exit codes + 1 line."""
    try:
        return body()
    except ArtifactError as error:
        print(f"{tool}: error: {error}", file=sys.stderr)
        _write_diagnostics(diagnostics,
                           _diagnostics_payload(tool, False, error=error))
        return error.exit_code
    except OSError as error:
        print(f"{tool}: error: {error}", file=sys.stderr)
        _write_diagnostics(diagnostics,
                           _diagnostics_payload(tool, False, error=error))
        return EXIT_MISSING_FILE


# --------------------------------------------------------------- trc2tgp

def trc2tgp_main(argv: Optional[List[str]] = None) -> int:
    """Translate a ``.trc`` trace file into a symbolic ``.tgp`` program."""
    parser = argparse.ArgumentParser(
        prog="repro-trc2tgp",
        description="Translate an OCP .trc trace into a TG .tgp program.")
    parser.add_argument("trace", help="input .trc file")
    parser.add_argument("-o", "--output",
                        help="output .tgp file (default: stdout)")
    parser.add_argument("--mode", choices=[m.value for m in ReplayMode],
                        default=ReplayMode.REACTIVE.value,
                        help="replay fidelity (default: reactive)")
    parser.add_argument("--pollable", type=_parse_range, action="append",
                        default=[], metavar="BASE:SIZE",
                        help="pollable address range (repeatable)")
    parser.add_argument("--default-poll-gap", type=int, default=4,
                        help="inner poll idle when the trace shows no "
                             "failed polls (cycles, default 4)")
    parser.add_argument("--borrow-idle-debt", action="store_true",
                        help="carry negative idle gaps (setup overhead "
                             "exceeding the trace gap) forward into later "
                             "idles instead of dropping them; changes "
                             "emitted idle values")
    parser.add_argument("--permissive", action="store_true",
                        help="skip recoverably-bad trace records instead "
                             "of failing on the first defect")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.artifacts import load_trc, save_tgp
        artifact = load_trc(args.trace, strict=not args.permissive)
        master_id, events = artifact.value
        if artifact.report:
            print(f"repro-trc2tgp: {artifact.report.summary()}",
                  file=sys.stderr)
        options = TranslatorOptions(
            mode=ReplayMode.from_name(args.mode),
            pollable_ranges=args.pollable,
            default_poll_gap=args.default_poll_gap,
            borrow_idle_debt=args.borrow_idle_debt)
        translator = Translator(options)
        program = translator.translate_events(events, master_id)
        stats = translator.stats
        if args.output:
            save_tgp(args.output, program)
            print(f"{args.trace}: {len(events)} events -> "
                  f"{len(program)} TG instructions -> {args.output}",
                  file=sys.stderr)
        else:
            sys.stdout.write(program.to_tgp())
        if stats is not None and stats.clamped_gaps:
            print(f"repro-trc2tgp: {stats.clamped_gaps} clamped idle "
                  f"gap(s) totalling {stats.clamped_cycles} cycle(s); "
                  f"{stats.borrowed_cycles} borrowed, "
                  f"{stats.residual_debt} residual", file=sys.stderr)
        payload = _diagnostics_payload("repro-trc2tgp", True,
                                       report=artifact.report)
        if stats is not None:
            payload["translation_stats"] = stats.as_dict()
        _write_diagnostics(args.diagnostics_json, payload)
        return 0

    return _guarded("repro-trc2tgp", body,
                    diagnostics=args.diagnostics_json)


# ----------------------------------------------------------------- tgasm

def tgasm_main(argv: Optional[List[str]] = None) -> int:
    """Assemble a ``.tgp`` program into a ``.bin`` image."""
    parser = argparse.ArgumentParser(
        prog="repro-tgasm",
        description="Assemble a .tgp program into a TG .bin image.")
    parser.add_argument("program", help="input .tgp file")
    parser.add_argument("-o", "--output", required=True,
                        help="output .bin file")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        import os

        from repro.artifacts import load_tgp, save_bin
        program = load_tgp(args.program).value
        save_bin(args.output, program)
        print(f"{args.program}: {len(program)} instructions, "
              f"{len(program.pool)} pool words -> "
              f"{os.path.getsize(args.output)} bytes",
              file=sys.stderr)
        _write_diagnostics(args.diagnostics_json,
                           _diagnostics_payload("repro-tgasm", True))
        return 0

    return _guarded("repro-tgasm", body, diagnostics=args.diagnostics_json)


# ---------------------------------------------------------------- tgdump

def tgdump_main(argv: Optional[List[str]] = None) -> int:
    """Disassemble a ``.bin`` image back to ``.tgp`` text."""
    parser = argparse.ArgumentParser(
        prog="repro-tgdump",
        description="Disassemble a TG .bin image to .tgp text.")
    parser.add_argument("image", help="input .bin file")
    parser.add_argument("-o", "--output",
                        help="output .tgp file (default: stdout)")
    parser.add_argument("--stats", action="store_true",
                        help="print the program footprint summary instead")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.artifacts import load_bin, save_tgp
        program = load_bin(args.image).value
        if args.stats:
            print(json.dumps(program.stats(), indent=2, sort_keys=True))
            return 0
        if args.output:
            save_tgp(args.output, program)
        else:
            sys.stdout.write(program.to_tgp())
        _write_diagnostics(args.diagnostics_json,
                           _diagnostics_payload("repro-tgdump", True))
        return 0

    return _guarded("repro-tgdump", body, diagnostics=args.diagnostics_json)


# ----------------------------------------------------------- trace-stats

def trace_stats_main(argv: Optional[List[str]] = None) -> int:
    """Summarise a ``.trc`` trace (mix, latencies, idle gaps)."""
    from repro.stats import trace_summary
    parser = argparse.ArgumentParser(
        prog="repro-trace-stats",
        description="Print summary statistics of a .trc trace.")
    parser.add_argument("trace", help="input .trc file")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--timeline", action="store_true",
                        help="render an ASCII activity timeline")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in characters")
    parser.add_argument("--vcd", metavar="FILE",
                        help="export a VCD waveform of the trace")
    parser.add_argument("--permissive", action="store_true",
                        help="skip recoverably-bad trace records instead "
                             "of failing on the first defect")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.artifacts import load_trc
        artifact = load_trc(args.trace, strict=not args.permissive)
        master_id, events = artifact.value
        if artifact.report:
            print(f"repro-trace-stats: {artifact.report.summary()}",
                  file=sys.stderr)
        _write_diagnostics(args.diagnostics_json, _diagnostics_payload(
            "repro-trace-stats", True, report=artifact.report))
        if args.vcd:
            from repro.stats import export_vcd
            export_vcd({f"M{master_id}": group_events(events)},
                       path=args.vcd)
            print(f"wrote {args.vcd}", file=sys.stderr)
            return 0
        if args.timeline:
            from repro.stats import render_timeline
            print(render_timeline({f"M{master_id}": group_events(events)},
                                  width=args.width))
            return 0
        summary = trace_summary(group_events(events))
        summary["master"] = master_id
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"master {master_id}: {summary['transactions']} "
                  f"transactions, {summary['beats']} beats over "
                  f"{summary['duration_cycles']} cycles "
                  f"({summary['beats_per_kcycle']} beats/kcycle)")
            print(f"  mix: {summary['mix']}")
            print(f"  read latency:  {summary['read_latency']}")
            print(f"  write latency: {summary['write_latency']}")
            print(f"  idle gaps:     {summary['idle_gaps']}")
        return 0

    return _guarded("repro-trace-stats", body,
                    diagnostics=args.diagnostics_json)


# ----------------------------------------------------------------- sweep

def _point_provenance(result) -> str:
    """How this row's numbers were obtained, for diagnostics.

    ``journal`` (terminal record replayed from a resumed journal),
    ``cache`` (content-addressed result-cache hit), ``warmup-restored``
    (simulated this run, fast-forwarded from a warm-up snapshot) or
    ``simulated`` (cold simulation this run).
    """
    if getattr(result, "journaled", False):
        return "journal"
    if getattr(result, "cached", False):
        return "cache"
    if getattr(result, "warm_restored", False):
        return "warmup-restored"
    return "simulated"


def _sweep_diagnostics(results, interrupted: bool, journal_dir,
                       exit_code: int, warmup=None) -> dict:
    """Machine-readable sweep report (per-point failure taxonomy)."""
    points = []
    provenance = {"simulated": 0, "cache": 0, "journal": 0,
                  "warmup-restored": 0}
    for result in results:
        failure = getattr(result, "failure", None)
        source = _point_provenance(result)
        if result.status == "ok":
            provenance[source] += 1
        points.append({
            "benchmark": result.benchmark,
            "n_cores": result.n_cores,
            "interconnect": result.interconnect,
            "mode": result.mode.value,
            "status": result.status,
            "failure": failure.as_dict() if failure is not None else None,
            "attempts": getattr(result, "attempts", 1),
            "quarantined": getattr(result, "quarantined", False),
            "cached": getattr(result, "cached", False),
            "journaled": getattr(result, "journaled", False),
            "warm_restored": getattr(result, "warm_restored", False),
            "provenance": source,
        })
    return {"tool": "repro-sweep",
            "ok": exit_code == 0,
            "interrupted": interrupted,
            "journal": journal_dir,
            "exit_code": exit_code,
            "provenance": provenance,
            "warmup": warmup,
            "points": points}


def sweep_main(argv: Optional[List[str]] = None) -> int:
    """Run a grid of TG-flow experiments described by a JSON spec.

    Grid points fan out over a supervised process pool and consult the
    on-disk result cache first, so re-running an unchanged sweep
    performs zero simulations.  With ``--journal DIR`` every state
    transition is journalled, crashed/hung workers are replaced, and an
    interrupted sweep (Ctrl-C → exit 8) resumes with ``--resume DIR``
    re-running only the unfinished points (see docs/SWEEPS.md).
    Exit status is 1 when any grid point failed, 0 otherwise.
    """
    import signal
    import threading
    import time as time_module

    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run a sweep of reference+TG experiments from a "
                    "JSON spec (see repro.harness.sweep).")
    parser.add_argument("spec", nargs="?",
                        help="JSON sweep specification file")
    parser.add_argument("--csv", metavar="FILE",
                        help="also write results as CSV (on interrupt: "
                             "the partial results)")
    parser.add_argument("--cache-verify", action="store_true",
                        help="audit the cache directory for corrupt/stale "
                             "entries and exit (no sweep is run)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        metavar="N",
                        help="worker processes (default: the spec's "
                             "'jobs' key, else all CPUs; 0 = all CPUs; "
                             "1 = in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate; neither read nor write "
                             "the result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point wall-clock budget, measured from "
                             "worker pickup; the worker of an exceeded "
                             "point is killed and the point marked failed")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="journal every state transition to "
                             "DIR/sweep.journal.jsonl (created fresh, or "
                             "resumed when it already matches this spec)")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="continue the interrupted sweep journalled "
                             "in DIR; completed points are served from "
                             "the journal, only unfinished ones re-run "
                             "(no spec file needed)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-run a transiently-failed point (worker "
                             "crash, timeout) up to N extra times with "
                             "exponential backoff; a point that exhausts "
                             "the budget is quarantined (default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base of the exponential retry backoff "
                             "(default 0.5)")
    parser.add_argument("--retry-quarantined", action="store_true",
                        help="on --resume, re-run points the journal "
                             "recorded as quarantined or terminally "
                             "failed instead of keeping them failed")
    parser.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="kill and replace a worker that sends no "
                             "heartbeat for this long — presumed hung "
                             "(default 30; 0 disables)")
    parser.add_argument("--backend", choices=["classic", "fast"],
                        default=None,
                        help="kernel event-dispatch engine for every grid "
                             "point, overriding the spec's 'backend' key "
                             "(bit-identical results; part of the cache "
                             "key when not 'classic')")
    parser.add_argument("--warmup-cycles", type=int, default=None,
                        metavar="N",
                        help="fast-forward every grid point through an "
                             "N-cycle warm-up captured once per "
                             "equivalence class on the warm-up fabric, "
                             "overriding the spec's 'warmup_cycles' key "
                             "(see docs/CHECKPOINT.md)")
    parser.add_argument("--warmup-fabric", default=None,
                        choices=["ahb", "stbus", "tlm", "xpipes"],
                        help="fabric the shared warm-up prefix is "
                             "simulated on (default: the spec's "
                             "'warmup_fabric' key, else tlm)")
    parser.add_argument("--no-warmup-share", action="store_true",
                        help="re-run the warm-up inside every worker "
                             "instead of sharing one snapshot per "
                             "equivalence class (identical results, "
                             "no speedup)")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable sweep report with "
                             "the per-point failure taxonomy ('-' for "
                             "stdout)")
    args = parser.parse_args(argv)

    from repro.harness import (
        EXIT_INTERRUPTED,
        ResultCache,
        SweepInterrupted,
        SweepJournal,
        SweepSpec,
        default_cache_dir,
        run_sweep_parallel,
        sweep_csv,
        sweep_table,
    )
    from repro.harness.cache import repro_version
    if args.cache_verify:
        cache = ResultCache(args.cache_dir or default_cache_dir())
        issues = cache.verify()
        clean = len(cache) - len(issues)
        for issue in issues:
            print(issue, file=sys.stderr)
        print(f"[cache-verify] {cache.directory}: {clean} ok, "
              f"{sum(1 for i in issues if i.kind == 'corrupt')} corrupt, "
              f"{sum(1 for i in issues if i.kind == 'stale')} stale",
              file=sys.stderr)
        return 1 if issues else 0
    if args.resume and args.journal:
        parser.error("--resume and --journal are mutually exclusive "
                     "(--resume reopens the existing journal)")
    if not args.spec and not args.resume:
        parser.error("spec is required unless --cache-verify or "
                     "--resume DIR is given")
    if args.resume and (args.warmup_cycles is not None
                        or args.warmup_fabric is not None):
        # the journal pins the spec (and with it every cache key); a
        # different warm-up would mix incompatible rows into one sweep
        parser.error("--warmup-cycles/--warmup-fabric cannot be changed "
                     "on --resume")

    def _apply_overrides(spec):
        """Fold --backend/--warmup-* overrides into a parsed spec."""
        if spec is None:
            return spec
        data = spec.to_dict()
        changed = False
        if args.backend is not None and spec.backend != args.backend:
            data["backend"] = args.backend
            changed = True
        if args.warmup_cycles is not None \
                and spec.warmup_cycles != args.warmup_cycles:
            data["warmup_cycles"] = args.warmup_cycles
            changed = True
        if args.warmup_fabric is not None \
                and spec.warmup_fabric != args.warmup_fabric:
            data["warmup_fabric"] = args.warmup_fabric
            changed = True
        return SweepSpec.from_dict(data) if changed else spec

    spec = None
    if args.spec:
        try:
            with open(args.spec) as handle:
                spec = _apply_overrides(
                    SweepSpec.from_dict(json.load(handle)))
        except OSError as error:
            print(f"repro-sweep: error: {error}", file=sys.stderr)
            return EXIT_MISSING_FILE
        except ArtifactError as error:
            print(f"repro-sweep: error: {error}", file=sys.stderr)
            return error.exit_code
        except ValueError as error:
            # invalid JSON or a spec that fails validation — a defect in
            # the input file, not a crash
            print(f"repro-sweep: error: {args.spec}: {error}",
                  file=sys.stderr)
            return EXIT_PARSE

    journal = None
    journal_dir = args.resume or args.journal
    try:
        if args.resume:
            journal = SweepJournal.resume(
                args.resume, spec.to_dict() if spec is not None else None)
            journal_spec = SweepSpec.from_dict(journal.state.spec)
            if args.backend is not None \
                    and journal_spec.backend != args.backend:
                # folding the override in would serve journal/cache rows
                # computed under the other backend as this run's results
                journal.close()
                from repro.artifacts.errors import ParseDiagnostic
                raise ParseDiagnostic(
                    f"journal was recorded with backend "
                    f"{journal_spec.backend!r}; refusing --backend "
                    f"{args.backend} on resume",
                    path=journal.path,
                    hint="resume without --backend, or start a fresh "
                         "sweep for the other engine")
            spec = journal_spec
            done = journal.state.records
            print(f"[sweep] resuming {journal.path}: {done} of "
                  f"{journal.state.total} point(s) already journalled",
                  file=sys.stderr)
        elif args.journal:
            from repro.harness import journal_path
            if journal_path(args.journal).exists():
                journal = SweepJournal.resume(args.journal, spec.to_dict())
                print(f"[sweep] journal matches this spec — resuming "
                      f"{journal.path}", file=sys.stderr)
            else:
                journal = SweepJournal.create(
                    args.journal, spec.to_dict(), spec.points,
                    repro_version())
    except ArtifactError as error:
        print(f"repro-sweep: error: {error}", file=sys.stderr)
        _write_diagnostics(args.diagnostics_json, _diagnostics_payload(
            "repro-sweep", False, error=error))
        return error.exit_code

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    # graceful shutdown: first SIGINT/SIGTERM finishes the journal and
    # terminates the workers; a second one force-raises
    cancel = threading.Event()

    def _interrupt_handler(signum, frame):
        if cancel.is_set():
            raise KeyboardInterrupt
        print("[sweep] interrupt received — journalling in-flight points "
              "and stopping workers (interrupt again to force)",
              file=sys.stderr)
        cancel.set()

    previous_handlers = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, _interrupt_handler)
    except ValueError:
        pass                       # not the main thread (tests)

    interrupted = False
    warmup_report: dict = {}
    print(f"running {spec.points} grid point(s)...", file=sys.stderr)
    start = time_module.perf_counter()
    try:
        results = run_sweep_parallel(
            spec, jobs=args.jobs, cache=cache,
            point_timeout_s=args.timeout,
            progress=lambda line: print(line, file=sys.stderr),
            retries=args.retries, retry_backoff_s=args.retry_backoff,
            journal=journal,
            heartbeat_timeout_s=args.heartbeat_timeout or None,
            requeue_failed=args.retry_quarantined,
            warmup_share=not args.no_warmup_share,
            warmup_report=warmup_report, cancel=cancel)
    except SweepInterrupted as stop:
        results = stop.results
        interrupted = True
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        if journal is not None:
            journal.close()
    wall = time_module.perf_counter() - start

    print(sweep_table(results, title=f"Sweep: {spec.benchmark}"))
    simulated = sum(1 for r in results
                    if not r.cached and not getattr(r, "journaled", False)
                    and r.status == "ok")
    cached = sum(1 for r in results if r.cached)
    journaled = sum(1 for r in results
                    if getattr(r, "journaled", False))
    failed = sum(1 for r in results if r.status != "ok")
    warm = sum(1 for r in results
               if getattr(r, "warm_restored", False))
    segments = [f"{simulated} simulated", f"{cached} cached"]
    if journal is not None:
        segments.append(f"{journaled} journaled")
    segments.append(f"{failed} failed")
    if spec.warmup_cycles is not None:
        segments.append(f"{warm} warmup-restored")
    print(f"[sweep] {len(results)} point(s): {', '.join(segments)} "
          f"in {wall:.1f}s", file=sys.stderr)
    for result in results:
        failure = getattr(result, "failure", None)
        if result.status != "ok" and result.traceback and (
                failure is None or failure.kind != "interrupted"):
            kind = f" ({failure.kind})" if failure is not None else ""
            print(f"--- FAILED{kind} {result.benchmark} "
                  f"{result.n_cores}P "
                  f"{result.interconnect}/{result.mode.value} ---\n"
                  f"{result.traceback}", file=sys.stderr)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_csv(results))
        print(f"wrote {args.csv}", file=sys.stderr)

    exit_code = EXIT_INTERRUPTED if interrupted else (1 if failed else 0)
    _write_diagnostics(args.diagnostics_json, _sweep_diagnostics(
        results, interrupted, journal_dir, exit_code,
        warmup=warmup_report or None))
    if interrupted:
        hint = journal_dir if journal is not None else None
        if hint:
            print(f"[sweep] interrupted — resume with: "
                  f"repro-sweep --resume {hint}", file=sys.stderr)
        else:
            print("[sweep] interrupted — re-run with --journal DIR to "
                  "make sweeps resumable", file=sys.stderr)
    return exit_code


# -------------------------------------------------------------- traceset

def traceset_main(argv: Optional[List[str]] = None) -> int:
    """Operate on trace-set directories (manifest + per-core traces)."""
    parser = argparse.ArgumentParser(
        prog="repro-traceset",
        description="Inspect or translate a trace-set directory.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    info = subparsers.add_parser("info", help="print manifest summary")
    info.add_argument("directory")
    translate = subparsers.add_parser(
        "translate", help="translate every trace to .tgp/.bin")
    translate.add_argument("directory")
    translate.add_argument("--mode", choices=[m.value for m in ReplayMode],
                           default=ReplayMode.REACTIVE.value)
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.trace import load_trace_set, translate_trace_set
        if args.command == "info":
            manifest, traces = load_trace_set(args.directory)
            print(f"benchmark:     "
                  f"{manifest.get('benchmark') or '(unknown)'}")
            print(f"interconnect:  "
                  f"{manifest.get('interconnect') or '(unknown)'}")
            print(f"masters:       {manifest['n_masters']}")
            for master_id, events in sorted(traces.items()):
                print(f"  core {master_id}: {len(events)} events")
            return 0
        programs = translate_trace_set(args.directory,
                                       mode=ReplayMode.from_name(args.mode))
        for master_id, program in sorted(programs.items()):
            print(f"core {master_id}: {len(program)} TG instructions -> "
                  f"core{master_id}.tgp / .bin")
        return 0

    return _guarded("repro-traceset", body)


# ------------------------------------------------------------ experiment

_APPS = {}


def _app_by_name(name: str):
    if not _APPS:
        from repro.apps import cacheloop, des, mp_matrix, sp_matrix
        _APPS.update({"sp_matrix": sp_matrix, "cacheloop": cacheloop,
                      "mp_matrix": mp_matrix, "des": des})
    try:
        return _APPS[name]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown benchmark {name!r}; choose from {sorted(_APPS)}")


def experiment_main(argv: Optional[List[str]] = None) -> int:
    """Run one Table-2 configuration and print the row."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run a reference + TG simulation pair and report "
                    "accuracy and speedup (one Table-2 row).")
    parser.add_argument("benchmark", type=_app_by_name, nargs="?",
                        help="sp_matrix | cacheloop | mp_matrix | des "
                             "(not needed with --restore: snapshots are "
                             "self-contained)")
    parser.add_argument("-n", "--cores", type=int, default=2)
    parser.add_argument("--interconnect", default="ahb",
                        choices=["ahb", "xpipes", "stbus", "tlm"])
    parser.add_argument("--tg-interconnect", default=None,
                        choices=["ahb", "xpipes", "stbus", "tlm"],
                        help="run the TGs on a different fabric (DSE)")
    parser.add_argument("--mode", choices=[m.value for m in ReplayMode],
                        default=ReplayMode.REACTIVE.value)
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="benchmark parameter, e.g. n=8 or blocks=4")
    parser.add_argument("--save-traces", metavar="DIR",
                        help="archive the reference traces as a trace set")
    parser.add_argument("--fault-spec", metavar="FILE",
                        help="JSON fault specification applied to the TG "
                             "run (see docs/FAULTS.md)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault injector's private RNG "
                             "(default 0; same spec+seed = same faults)")
    parser.add_argument("--retry-attempts", type=int, default=None,
                        metavar="N",
                        help="arm a TG retry policy with N total attempts "
                             "per erroring transaction")
    parser.add_argument("--retry-backoff", type=int, default=2,
                        metavar="CYCLES",
                        help="initial retry backoff in cycles, doubled per "
                             "retry (default 2)")
    parser.add_argument("--on-exhaust", choices=["raise", "degrade"],
                        default="degrade",
                        help="when retries run out: abort the run or "
                             "continue degraded (default degrade)")
    parser.add_argument("--watchdog", type=int, default=None,
                        metavar="CYCLES",
                        help="per-request TG watchdog: abort with "
                             "WatchdogTimeout if a transaction is still "
                             "outstanding after CYCLES cycles")
    parser.add_argument("--progress-window", type=int, default=None,
                        metavar="EVENTS",
                        help="kernel livelock watchdog: abort after EVENTS "
                             "events with no simulated-time progress")
    parser.add_argument("--backend", choices=["classic", "fast"],
                        default=None,
                        help="kernel event-dispatch engine for both runs "
                             "(bit-identical results; 'fast' is quicker)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="CYCLES",
                        help="snapshot the TG run at the first quiescent "
                             "cycle on/after every CYCLES-cycle boundary "
                             "(requires --checkpoint-dir; see "
                             "docs/CHECKPOINT.md)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="directory for .snap checkpoints (written "
                             "atomically; newest K retained)")
    parser.add_argument("--checkpoint-keep", type=int, default=None,
                        metavar="K",
                        help="checkpoints to retain (default 3)")
    parser.add_argument("--restore", metavar="SNAP", default=None,
                        help="resume a checkpointed TG run from this "
                             ".snap file and run it to completion "
                             "(bit-identical to the uninterrupted run)")
    parser.add_argument("--warmup-cycles", type=int, default=None,
                        metavar="N",
                        help="fast-forward the TG run through an N-cycle "
                             "warm-up simulated on --warmup-fabric and "
                             "restored onto the target fabric (see "
                             "docs/CHECKPOINT.md)")
    parser.add_argument("--warmup-fabric", default="tlm",
                        choices=["ahb", "stbus", "tlm", "xpipes"],
                        help="fabric the warm-up prefix is simulated on "
                             "(default tlm, the cheapest)")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)
    if args.restore is None and args.benchmark is None:
        parser.error("benchmark is required unless --restore SNAP "
                     "is given")
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        parser.error("--checkpoint-every requires --checkpoint-dir")
    if args.warmup_cycles is not None \
            and args.checkpoint_every is not None:
        parser.error("--warmup-cycles cannot be combined with "
                     "--checkpoint-every (a fast-forwarded run starts "
                     "past the early checkpoint boundaries)")

    def body() -> int:
        if args.restore:
            from repro.harness import load_snapshot, restore_platform
            snapshot = load_snapshot(args.restore)
            platform = restore_platform(snapshot,
                                        backend=args.backend)
            platform.run(progress_window=args.progress_window)
            out = {
                "restored_from": args.restore,
                "restore_cycle": snapshot["cycle"],
                "tg_summary": platform.stats_summary(),
            }
            print(json.dumps(out, indent=2, sort_keys=True))
            _write_diagnostics(args.diagnostics_json,
                               _diagnostics_payload("repro-experiment",
                                                    True))
            return 0

        app_params = {}
        for item in args.param:
            key, _, value = item.partition("=")
            app_params[key] = int(value, 0)

        fault_spec = None
        if args.fault_spec:
            from repro.faults import FaultSpec
            fault_spec = FaultSpec.load(args.fault_spec)
        retry_policy = None
        if args.retry_attempts is not None:
            from repro.faults import RetryPolicy
            retry_policy = RetryPolicy(max_attempts=args.retry_attempts,
                                       backoff=args.retry_backoff,
                                       on_exhaust=args.on_exhaust)

        from repro.harness import table2_row, tg_flow
        result = tg_flow(args.benchmark, args.cores,
                         interconnect=args.interconnect,
                         tg_interconnect=args.tg_interconnect,
                         mode=ReplayMode.from_name(args.mode),
                         app_params=app_params or None,
                         fault_spec=fault_spec,
                         fault_seed=args.fault_seed,
                         retry_policy=retry_policy,
                         watchdog_cycles=args.watchdog,
                         progress_window=args.progress_window,
                         backend=args.backend,
                         checkpoint_every=args.checkpoint_every,
                         checkpoint_dir=args.checkpoint_dir,
                         checkpoint_keep=args.checkpoint_keep,
                         warmup_cycles=args.warmup_cycles,
                         warmup_fabric=args.warmup_fabric)
        if args.save_traces:
            from repro.apps.common import pollable_ranges
            from repro.trace import save_trace_set
            save_trace_set(args.save_traces, result.traces,
                           benchmark=result.benchmark,
                           interconnect=result.interconnect,
                           pollable_ranges=pollable_ranges(result.n_cores))
            print(f"traces archived to {args.save_traces}",
                  file=sys.stderr)
        payload = {
            "benchmark": result.benchmark,
            "n_cores": result.n_cores,
            "interconnect": result.interconnect,
            "mode": result.mode.value,
            "ref_cycles": result.ref_cycles,
            "tg_cycles": result.tg_cycles,
            "error": result.error,
            "ref_wall_s": result.ref_wall,
            "tg_wall_s": result.tg_wall,
            "gain": result.gain,
            "event_gain": result.event_gain,
        }
        if result.warmup_cycle is not None:
            payload["warmup_cycle"] = result.warmup_cycle
            payload["warmup_fabric"] = result.warmup_fabric
        if args.checkpoint_every is not None:
            # same shape the --restore path prints, so a crash-restore
            # continuation can be byte-compared against this run
            payload["tg_summary"] = result.tg_platform.stats_summary()
        resilience = None
        if result.tg_platform is not None and \
                result.tg_platform.fault_injector is not None:
            resilience = result.tg_platform.resilience_counters().as_dict()
            payload["fault_seed"] = args.fault_seed
            payload["resilience"] = resilience
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(table2_row(result))
            if resilience is not None:
                from repro.stats import resilience_report
                print(resilience_report(resilience))
        _write_diagnostics(args.diagnostics_json,
                           _diagnostics_payload("repro-experiment", True))
        return 0

    return _guarded("repro-experiment", body,
                    diagnostics=args.diagnostics_json)


# --------------------------------------------------------------- traffic

def _parse_burst(text: str):
    """``ON:OFF`` transaction/idle phase lengths."""
    try:
        on_text, off_text = text.split(":")
        return {"on": int(on_text, 0), "off": int(off_text, 0)}
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected ON:OFF (e.g. 8:200), got {text!r}")


def _parse_hot_target(text: str):
    """``shared`` or a slave/core index."""
    if text == "shared":
        return text
    try:
        return int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'shared' or a core index, got {text!r}")


def traffic_main(argv: Optional[List[str]] = None) -> int:
    """Generate synthetic-traffic TG programs from a declarative spec.

    The spec comes from a JSON file, command-line flags, or both (flags
    override file values).  Programs are written as ``core<i>.tgp`` +
    ``core<i>.bin`` pairs; generation is deterministic, so re-running
    with the same spec produces byte-identical artifacts.  With
    ``--simulate FABRIC`` the workload also runs on the TG platform and
    the load/latency metrics are printed (see docs/TRAFFIC.md).
    """
    from repro.apps.synthetic import PATTERNS
    parser = argparse.ArgumentParser(
        prog="repro-traffic",
        description="Generate (and optionally simulate) synthetic "
                    "TG traffic from a declarative spec.")
    parser.add_argument("spec", nargs="?",
                        help="JSON traffic specification file "
                             "(flags override its values)")
    parser.add_argument("-o", "--output", metavar="DIR",
                        help="write core<i>.tgp/.bin program pairs here")
    parser.add_argument("--cores", type=int, default=None, metavar="N",
                        help="number of traffic generators")
    parser.add_argument("--pattern", choices=list(PATTERNS), default=None,
                        help="spatial destination pattern")
    parser.add_argument("--load", type=float, default=None,
                        help="offered load fraction in (0, 1]")
    parser.add_argument("--transactions", type=int, default=None,
                        metavar="N", help="transactions per core")
    parser.add_argument("--seed", type=int, default=None,
                        help="RNG seed (same seed -> same programs)")
    parser.add_argument("--read-fraction", type=float, default=None,
                        metavar="F", help="fraction of reads in [0, 1]")
    parser.add_argument("--size-words", type=int, default=None,
                        metavar="N", help="fixed transaction size (words)")
    parser.add_argument("--size-uniform", type=_parse_range, default=None,
                        metavar="MIN:MAX",
                        help="uniform transaction size range (words)")
    parser.add_argument("--size-cdf", metavar="FILE", default=None,
                        help="packet-size CDF file "
                             "(lines: '<bytes> <cumulative-percent>')")
    parser.add_argument("--burst", type=_parse_burst, default=None,
                        metavar="ON:OFF",
                        help="bursty on/off phases: ON transactions, "
                             "then OFF idle cycles")
    parser.add_argument("--hot-target", type=_parse_hot_target,
                        default=None, metavar="SLAVE",
                        help="hotspot target: 'shared' or a core index")
    parser.add_argument("--hot-weight", type=float, default=None,
                        help="hotspot weight relative to other slaves")
    parser.add_argument("--mode", choices=[m.value for m in ReplayMode],
                        default=None, help="TG replay mode")
    parser.add_argument("--simulate", metavar="FABRIC", default=None,
                        choices=["ahb", "xpipes", "stbus", "tlm"],
                        help="also run the workload on this fabric and "
                             "print load/latency metrics")
    parser.add_argument("--backend", choices=["classic", "fast"],
                        default=None,
                        help="kernel event-dispatch engine for --simulate "
                             "(bit-identical results; 'fast' is quicker)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="CYCLES",
                        help="with --simulate: snapshot the run at every "
                             "CYCLES-cycle boundary (requires "
                             "--checkpoint-dir; see docs/CHECKPOINT.md)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="directory for .snap checkpoints")
    parser.add_argument("--checkpoint-keep", type=int, default=None,
                        metavar="K",
                        help="checkpoints to retain (default 3)")
    parser.add_argument("--restore", metavar="SNAP", default=None,
                        help="resume a checkpointed simulation from this "
                             ".snap file instead of generating traffic")
    parser.add_argument("--warmup-cycles", type=int, default=None,
                        metavar="N",
                        help="with --simulate: fast-forward the run "
                             "through an N-cycle warm-up simulated on "
                             "--warmup-fabric and restored onto the "
                             "target fabric (see docs/CHECKPOINT.md)")
    parser.add_argument("--warmup-fabric", default="tlm",
                        choices=["ahb", "stbus", "tlm", "xpipes"],
                        help="fabric the warm-up prefix is simulated on "
                             "(default tlm, the cheapest)")
    parser.add_argument("--json", action="store_true",
                        help="print the simulation summary as JSON")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)
    if args.checkpoint_every is not None:
        if args.checkpoint_dir is None:
            parser.error("--checkpoint-every requires --checkpoint-dir")
        if args.simulate is None:
            parser.error("--checkpoint-every requires --simulate FABRIC")
    if args.warmup_cycles is not None:
        if args.simulate is None:
            parser.error("--warmup-cycles requires --simulate FABRIC")
        if args.checkpoint_every is not None:
            parser.error("--warmup-cycles cannot be combined with "
                         "--checkpoint-every (a fast-forwarded run "
                         "starts past the early checkpoint boundaries)")

    def body() -> int:
        import os

        if args.restore:
            from repro.harness import load_snapshot, restore_platform
            snapshot = load_snapshot(args.restore)
            platform = restore_platform(snapshot, backend=args.backend)
            platform.run()
            out = {
                "restored_from": args.restore,
                "restore_cycle": snapshot["cycle"],
                "tg_summary": platform.stats_summary(),
            }
            print(json.dumps(out, indent=2, sort_keys=True))
            _write_diagnostics(args.diagnostics_json,
                               _diagnostics_payload("repro-traffic",
                                                    True))
            return 0

        from repro.apps.synthetic import (
            TrafficSpec,
            TrafficSpecError,
            generate,
            synthetic_flow,
        )
        from repro.artifacts import save_bin, save_tgp

        data = {}
        if args.spec:
            with open(args.spec) as handle:
                try:
                    data = json.load(handle)
                except ValueError as error:
                    raise TrafficSpecError(str(error), path=args.spec)
            if not isinstance(data, dict):
                raise TrafficSpecError(
                    "traffic spec must be a JSON object", path=args.spec)
        overrides = {
            "n_cores": args.cores,
            "pattern": args.pattern,
            "load": args.load,
            "transactions": args.transactions,
            "seed": args.seed,
            "read_fraction": args.read_fraction,
            "burst": args.burst,
            "hot_target": args.hot_target,
            "hot_weight": args.hot_weight,
            "mode": args.mode,
        }
        data.update({key: value for key, value in overrides.items()
                     if value is not None})
        sizes = [flag for flag in (args.size_words, args.size_uniform,
                                   args.size_cdf) if flag is not None]
        if len(sizes) > 1:
            parser.error("--size-words, --size-uniform and --size-cdf "
                         "are mutually exclusive")
        if args.size_words is not None:
            data["size"] = {"kind": "fixed", "words": args.size_words}
        elif args.size_uniform is not None:
            low, high = args.size_uniform
            data["size"] = {"kind": "uniform", "min_words": low,
                            "max_words": high}
        elif args.size_cdf is not None:
            data["size"] = {"kind": "cdf", "file": args.size_cdf}
        if "n_cores" not in data:
            parser.error("--cores N is required (or an 'n_cores' key "
                         "in the spec file)")
        try:
            spec = TrafficSpec.from_dict(data)
        except ValueError as error:
            raise TrafficSpecError(str(error), path=args.spec)

        programs, report = generate(spec)
        payload = _diagnostics_payload("repro-traffic", True)
        payload["spec"] = spec.to_dict()
        payload["cores"] = report

        if args.output:
            os.makedirs(args.output, exist_ok=True)
            for core_id in sorted(programs):
                base = os.path.join(args.output, f"core{core_id}")
                save_tgp(base + ".tgp", programs[core_id])
                save_bin(base + ".bin", programs[core_id])
            total = sum(entry["instructions"] for entry in report)
            print(f"repro-traffic: {spec.pattern} x{spec.n_cores} "
                  f"load={spec.load:g}: {total} instructions -> "
                  f"{args.output}/core<i>.tgp|.bin", file=sys.stderr)

        if args.simulate:
            result = synthetic_flow(
                spec, args.simulate, backend=args.backend,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_keep=args.checkpoint_keep,
                warmup_cycles=args.warmup_cycles,
                warmup_fabric=args.warmup_fabric)
            summary = result.summary()
            if args.checkpoint_every is not None:
                # same shape --restore prints, for crash-restore compares
                summary = dict(summary)
                summary["tg_summary"] = \
                    result.tg_platform.stats_summary()
            payload["simulation"] = summary
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                print(f"{spec.pattern} {spec.n_cores}P {args.simulate} "
                      f"load={spec.load:g}: {result.tg_cycles} cycles, "
                      f"{result.issued} transactions, "
                      f"scheduled={result.scheduled_load:.3f} "
                      f"realised={result.realised_load:.3f}, "
                      f"latency avg={result.latency_avg:.1f} "
                      f"max={result.latency_max}, "
                      f"{result.throughput_wpkc:.1f} words/kcycle")
        elif args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif not args.output:
            # no sink requested: dump the .tgp text like the other tools
            for core_id in sorted(programs):
                sys.stdout.write(f"# --- core {core_id} ---\n")
                sys.stdout.write(programs[core_id].to_tgp())

        _write_diagnostics(args.diagnostics_json, payload)
        return 0

    return _guarded("repro-traffic", body,
                    diagnostics=args.diagnostics_json)
