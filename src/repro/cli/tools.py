"""Implementations of the command-line tools.

Failure contract (see docs/ARTIFACTS.md for the full table): artifact
defects exit with the error class's distinct code (3 missing file,
4 parse, 5 checksum, 6 version, 7 truncated) and one actionable stderr
line — never a traceback.  ``--diagnostics-json FILE`` additionally
writes a machine-readable report (``-`` for stdout); ``--permissive``
(trace-reading tools) skips recoverably-bad records instead of failing.
"""

import argparse
import json
import sys
from typing import List, Optional

from repro.artifacts import (
    EXIT_MISSING_FILE,
    ArtifactError,
    DiagnosticReport,
)
from repro.core import ReplayMode
from repro.trace import Translator, TranslatorOptions, group_events


def _parse_range(text: str):
    """``BASE:SIZE`` (both int literals, hex ok) -> (base, size)."""
    try:
        base_text, size_text = text.split(":")
        return int(base_text, 0), int(size_text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected BASE:SIZE (e.g. 0x1a000000:0x80), got {text!r}")


# ------------------------------------------------------ failure plumbing

def _write_diagnostics(path: Optional[str], payload: dict) -> None:
    if not path:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text + "\n")


def _diagnostics_payload(tool: str, ok: bool,
                         error: Optional[Exception] = None,
                         report: Optional[DiagnosticReport] = None) -> dict:
    payload = {"tool": tool, "ok": ok}
    if isinstance(error, ArtifactError):
        payload["error"] = error.as_dict()
    elif error is not None:
        payload["error"] = {"type": type(error).__name__,
                            "message": str(error),
                            "exit_code": EXIT_MISSING_FILE}
    if report is not None:
        payload["skipped"] = len(report)
        payload["diagnostics"] = report.as_dict()["diagnostics"]
    return payload


def _guarded(tool: str, body, diagnostics: Optional[str] = None) -> int:
    """Run ``body()``; map artifact/file failures to exit codes + 1 line."""
    try:
        return body()
    except ArtifactError as error:
        print(f"{tool}: error: {error}", file=sys.stderr)
        _write_diagnostics(diagnostics,
                           _diagnostics_payload(tool, False, error=error))
        return error.exit_code
    except OSError as error:
        print(f"{tool}: error: {error}", file=sys.stderr)
        _write_diagnostics(diagnostics,
                           _diagnostics_payload(tool, False, error=error))
        return EXIT_MISSING_FILE


# --------------------------------------------------------------- trc2tgp

def trc2tgp_main(argv: Optional[List[str]] = None) -> int:
    """Translate a ``.trc`` trace file into a symbolic ``.tgp`` program."""
    parser = argparse.ArgumentParser(
        prog="repro-trc2tgp",
        description="Translate an OCP .trc trace into a TG .tgp program.")
    parser.add_argument("trace", help="input .trc file")
    parser.add_argument("-o", "--output",
                        help="output .tgp file (default: stdout)")
    parser.add_argument("--mode", choices=[m.value for m in ReplayMode],
                        default=ReplayMode.REACTIVE.value,
                        help="replay fidelity (default: reactive)")
    parser.add_argument("--pollable", type=_parse_range, action="append",
                        default=[], metavar="BASE:SIZE",
                        help="pollable address range (repeatable)")
    parser.add_argument("--default-poll-gap", type=int, default=4,
                        help="inner poll idle when the trace shows no "
                             "failed polls (cycles, default 4)")
    parser.add_argument("--permissive", action="store_true",
                        help="skip recoverably-bad trace records instead "
                             "of failing on the first defect")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.artifacts import load_trc, save_tgp
        artifact = load_trc(args.trace, strict=not args.permissive)
        master_id, events = artifact.value
        if artifact.report:
            print(f"repro-trc2tgp: {artifact.report.summary()}",
                  file=sys.stderr)
        options = TranslatorOptions(
            mode=ReplayMode.from_name(args.mode),
            pollable_ranges=args.pollable,
            default_poll_gap=args.default_poll_gap)
        program = Translator(options).translate_events(events, master_id)
        if args.output:
            save_tgp(args.output, program)
            print(f"{args.trace}: {len(events)} events -> "
                  f"{len(program)} TG instructions -> {args.output}",
                  file=sys.stderr)
        else:
            sys.stdout.write(program.to_tgp())
        _write_diagnostics(args.diagnostics_json, _diagnostics_payload(
            "repro-trc2tgp", True, report=artifact.report))
        return 0

    return _guarded("repro-trc2tgp", body,
                    diagnostics=args.diagnostics_json)


# ----------------------------------------------------------------- tgasm

def tgasm_main(argv: Optional[List[str]] = None) -> int:
    """Assemble a ``.tgp`` program into a ``.bin`` image."""
    parser = argparse.ArgumentParser(
        prog="repro-tgasm",
        description="Assemble a .tgp program into a TG .bin image.")
    parser.add_argument("program", help="input .tgp file")
    parser.add_argument("-o", "--output", required=True,
                        help="output .bin file")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        import os

        from repro.artifacts import load_tgp, save_bin
        program = load_tgp(args.program).value
        save_bin(args.output, program)
        print(f"{args.program}: {len(program)} instructions, "
              f"{len(program.pool)} pool words -> "
              f"{os.path.getsize(args.output)} bytes",
              file=sys.stderr)
        _write_diagnostics(args.diagnostics_json,
                           _diagnostics_payload("repro-tgasm", True))
        return 0

    return _guarded("repro-tgasm", body, diagnostics=args.diagnostics_json)


# ---------------------------------------------------------------- tgdump

def tgdump_main(argv: Optional[List[str]] = None) -> int:
    """Disassemble a ``.bin`` image back to ``.tgp`` text."""
    parser = argparse.ArgumentParser(
        prog="repro-tgdump",
        description="Disassemble a TG .bin image to .tgp text.")
    parser.add_argument("image", help="input .bin file")
    parser.add_argument("-o", "--output",
                        help="output .tgp file (default: stdout)")
    parser.add_argument("--stats", action="store_true",
                        help="print the program footprint summary instead")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.artifacts import load_bin, save_tgp
        program = load_bin(args.image).value
        if args.stats:
            print(json.dumps(program.stats(), indent=2, sort_keys=True))
            return 0
        if args.output:
            save_tgp(args.output, program)
        else:
            sys.stdout.write(program.to_tgp())
        _write_diagnostics(args.diagnostics_json,
                           _diagnostics_payload("repro-tgdump", True))
        return 0

    return _guarded("repro-tgdump", body, diagnostics=args.diagnostics_json)


# ----------------------------------------------------------- trace-stats

def trace_stats_main(argv: Optional[List[str]] = None) -> int:
    """Summarise a ``.trc`` trace (mix, latencies, idle gaps)."""
    from repro.stats import trace_summary
    parser = argparse.ArgumentParser(
        prog="repro-trace-stats",
        description="Print summary statistics of a .trc trace.")
    parser.add_argument("trace", help="input .trc file")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--timeline", action="store_true",
                        help="render an ASCII activity timeline")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in characters")
    parser.add_argument("--vcd", metavar="FILE",
                        help="export a VCD waveform of the trace")
    parser.add_argument("--permissive", action="store_true",
                        help="skip recoverably-bad trace records instead "
                             "of failing on the first defect")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable diagnostics report "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.artifacts import load_trc
        artifact = load_trc(args.trace, strict=not args.permissive)
        master_id, events = artifact.value
        if artifact.report:
            print(f"repro-trace-stats: {artifact.report.summary()}",
                  file=sys.stderr)
        _write_diagnostics(args.diagnostics_json, _diagnostics_payload(
            "repro-trace-stats", True, report=artifact.report))
        if args.vcd:
            from repro.stats import export_vcd
            export_vcd({f"M{master_id}": group_events(events)},
                       path=args.vcd)
            print(f"wrote {args.vcd}", file=sys.stderr)
            return 0
        if args.timeline:
            from repro.stats import render_timeline
            print(render_timeline({f"M{master_id}": group_events(events)},
                                  width=args.width))
            return 0
        summary = trace_summary(group_events(events))
        summary["master"] = master_id
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"master {master_id}: {summary['transactions']} "
                  f"transactions, {summary['beats']} beats over "
                  f"{summary['duration_cycles']} cycles "
                  f"({summary['beats_per_kcycle']} beats/kcycle)")
            print(f"  mix: {summary['mix']}")
            print(f"  read latency:  {summary['read_latency']}")
            print(f"  write latency: {summary['write_latency']}")
            print(f"  idle gaps:     {summary['idle_gaps']}")
        return 0

    return _guarded("repro-trace-stats", body,
                    diagnostics=args.diagnostics_json)


# ----------------------------------------------------------------- sweep

def _sweep_diagnostics(results, interrupted: bool, journal_dir,
                       exit_code: int) -> dict:
    """Machine-readable sweep report (per-point failure taxonomy)."""
    points = []
    for result in results:
        failure = getattr(result, "failure", None)
        points.append({
            "benchmark": result.benchmark,
            "n_cores": result.n_cores,
            "interconnect": result.interconnect,
            "mode": result.mode.value,
            "status": result.status,
            "failure": failure.as_dict() if failure is not None else None,
            "attempts": getattr(result, "attempts", 1),
            "quarantined": getattr(result, "quarantined", False),
            "cached": getattr(result, "cached", False),
            "journaled": getattr(result, "journaled", False),
        })
    return {"tool": "repro-sweep",
            "ok": exit_code == 0,
            "interrupted": interrupted,
            "journal": journal_dir,
            "exit_code": exit_code,
            "points": points}


def sweep_main(argv: Optional[List[str]] = None) -> int:
    """Run a grid of TG-flow experiments described by a JSON spec.

    Grid points fan out over a supervised process pool and consult the
    on-disk result cache first, so re-running an unchanged sweep
    performs zero simulations.  With ``--journal DIR`` every state
    transition is journalled, crashed/hung workers are replaced, and an
    interrupted sweep (Ctrl-C → exit 8) resumes with ``--resume DIR``
    re-running only the unfinished points (see docs/SWEEPS.md).
    Exit status is 1 when any grid point failed, 0 otherwise.
    """
    import signal
    import threading
    import time as time_module

    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run a sweep of reference+TG experiments from a "
                    "JSON spec (see repro.harness.sweep).")
    parser.add_argument("spec", nargs="?",
                        help="JSON sweep specification file")
    parser.add_argument("--csv", metavar="FILE",
                        help="also write results as CSV (on interrupt: "
                             "the partial results)")
    parser.add_argument("--cache-verify", action="store_true",
                        help="audit the cache directory for corrupt/stale "
                             "entries and exit (no sweep is run)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        metavar="N",
                        help="worker processes (default: all CPUs; "
                             "1 = in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate; neither read nor write "
                             "the result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point wall-clock budget, measured from "
                             "worker pickup; the worker of an exceeded "
                             "point is killed and the point marked failed")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="journal every state transition to "
                             "DIR/sweep.journal.jsonl (created fresh, or "
                             "resumed when it already matches this spec)")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="continue the interrupted sweep journalled "
                             "in DIR; completed points are served from "
                             "the journal, only unfinished ones re-run "
                             "(no spec file needed)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-run a transiently-failed point (worker "
                             "crash, timeout) up to N extra times with "
                             "exponential backoff; a point that exhausts "
                             "the budget is quarantined (default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base of the exponential retry backoff "
                             "(default 0.5)")
    parser.add_argument("--retry-quarantined", action="store_true",
                        help="on --resume, re-run points the journal "
                             "recorded as quarantined or terminally "
                             "failed instead of keeping them failed")
    parser.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="kill and replace a worker that sends no "
                             "heartbeat for this long — presumed hung "
                             "(default 30; 0 disables)")
    parser.add_argument("--diagnostics-json", metavar="FILE",
                        help="write a machine-readable sweep report with "
                             "the per-point failure taxonomy ('-' for "
                             "stdout)")
    args = parser.parse_args(argv)

    from repro.harness import (
        EXIT_INTERRUPTED,
        ResultCache,
        SweepInterrupted,
        SweepJournal,
        SweepSpec,
        default_cache_dir,
        run_sweep_parallel,
        sweep_csv,
        sweep_table,
    )
    from repro.harness.cache import repro_version
    if args.cache_verify:
        cache = ResultCache(args.cache_dir or default_cache_dir())
        issues = cache.verify()
        clean = len(cache) - len(issues)
        for issue in issues:
            print(issue, file=sys.stderr)
        print(f"[cache-verify] {cache.directory}: {clean} ok, "
              f"{sum(1 for i in issues if i.kind == 'corrupt')} corrupt, "
              f"{sum(1 for i in issues if i.kind == 'stale')} stale",
              file=sys.stderr)
        return 1 if issues else 0
    if args.resume and args.journal:
        parser.error("--resume and --journal are mutually exclusive "
                     "(--resume reopens the existing journal)")
    if not args.spec and not args.resume:
        parser.error("spec is required unless --cache-verify or "
                     "--resume DIR is given")

    spec = None
    if args.spec:
        try:
            with open(args.spec) as handle:
                spec = SweepSpec.from_dict(json.load(handle))
        except OSError as error:
            print(f"repro-sweep: error: {error}", file=sys.stderr)
            return EXIT_MISSING_FILE

    journal = None
    journal_dir = args.resume or args.journal
    try:
        if args.resume:
            journal = SweepJournal.resume(
                args.resume, spec.to_dict() if spec is not None else None)
            spec = SweepSpec.from_dict(journal.state.spec)
            done = journal.state.records
            print(f"[sweep] resuming {journal.path}: {done} of "
                  f"{journal.state.total} point(s) already journalled",
                  file=sys.stderr)
        elif args.journal:
            from repro.harness import journal_path
            if journal_path(args.journal).exists():
                journal = SweepJournal.resume(args.journal, spec.to_dict())
                print(f"[sweep] journal matches this spec — resuming "
                      f"{journal.path}", file=sys.stderr)
            else:
                journal = SweepJournal.create(
                    args.journal, spec.to_dict(), spec.points,
                    repro_version())
    except ArtifactError as error:
        print(f"repro-sweep: error: {error}", file=sys.stderr)
        _write_diagnostics(args.diagnostics_json, _diagnostics_payload(
            "repro-sweep", False, error=error))
        return error.exit_code

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    # graceful shutdown: first SIGINT/SIGTERM finishes the journal and
    # terminates the workers; a second one force-raises
    cancel = threading.Event()

    def _interrupt_handler(signum, frame):
        if cancel.is_set():
            raise KeyboardInterrupt
        print("[sweep] interrupt received — journalling in-flight points "
              "and stopping workers (interrupt again to force)",
              file=sys.stderr)
        cancel.set()

    previous_handlers = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, _interrupt_handler)
    except ValueError:
        pass                       # not the main thread (tests)

    interrupted = False
    print(f"running {spec.points} grid point(s)...", file=sys.stderr)
    start = time_module.perf_counter()
    try:
        results = run_sweep_parallel(
            spec, jobs=args.jobs, cache=cache,
            point_timeout_s=args.timeout,
            progress=lambda line: print(line, file=sys.stderr),
            retries=args.retries, retry_backoff_s=args.retry_backoff,
            journal=journal,
            heartbeat_timeout_s=args.heartbeat_timeout or None,
            requeue_failed=args.retry_quarantined, cancel=cancel)
    except SweepInterrupted as stop:
        results = stop.results
        interrupted = True
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        if journal is not None:
            journal.close()
    wall = time_module.perf_counter() - start

    print(sweep_table(results, title=f"Sweep: {spec.benchmark}"))
    simulated = sum(1 for r in results
                    if not r.cached and not getattr(r, "journaled", False)
                    and r.status == "ok")
    cached = sum(1 for r in results if r.cached)
    journaled = sum(1 for r in results
                    if getattr(r, "journaled", False))
    failed = sum(1 for r in results if r.status != "ok")
    segments = [f"{simulated} simulated", f"{cached} cached"]
    if journal is not None:
        segments.append(f"{journaled} journaled")
    segments.append(f"{failed} failed")
    print(f"[sweep] {len(results)} point(s): {', '.join(segments)} "
          f"in {wall:.1f}s", file=sys.stderr)
    for result in results:
        failure = getattr(result, "failure", None)
        if result.status != "ok" and result.traceback and (
                failure is None or failure.kind != "interrupted"):
            kind = f" ({failure.kind})" if failure is not None else ""
            print(f"--- FAILED{kind} {result.benchmark} "
                  f"{result.n_cores}P "
                  f"{result.interconnect}/{result.mode.value} ---\n"
                  f"{result.traceback}", file=sys.stderr)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_csv(results))
        print(f"wrote {args.csv}", file=sys.stderr)

    exit_code = EXIT_INTERRUPTED if interrupted else (1 if failed else 0)
    _write_diagnostics(args.diagnostics_json, _sweep_diagnostics(
        results, interrupted, journal_dir, exit_code))
    if interrupted:
        hint = journal_dir if journal is not None else None
        if hint:
            print(f"[sweep] interrupted — resume with: "
                  f"repro-sweep --resume {hint}", file=sys.stderr)
        else:
            print("[sweep] interrupted — re-run with --journal DIR to "
                  "make sweeps resumable", file=sys.stderr)
    return exit_code


# -------------------------------------------------------------- traceset

def traceset_main(argv: Optional[List[str]] = None) -> int:
    """Operate on trace-set directories (manifest + per-core traces)."""
    parser = argparse.ArgumentParser(
        prog="repro-traceset",
        description="Inspect or translate a trace-set directory.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    info = subparsers.add_parser("info", help="print manifest summary")
    info.add_argument("directory")
    translate = subparsers.add_parser(
        "translate", help="translate every trace to .tgp/.bin")
    translate.add_argument("directory")
    translate.add_argument("--mode", choices=[m.value for m in ReplayMode],
                           default=ReplayMode.REACTIVE.value)
    args = parser.parse_args(argv)

    def body() -> int:
        from repro.trace import load_trace_set, translate_trace_set
        if args.command == "info":
            manifest, traces = load_trace_set(args.directory)
            print(f"benchmark:     "
                  f"{manifest.get('benchmark') or '(unknown)'}")
            print(f"interconnect:  "
                  f"{manifest.get('interconnect') or '(unknown)'}")
            print(f"masters:       {manifest['n_masters']}")
            for master_id, events in sorted(traces.items()):
                print(f"  core {master_id}: {len(events)} events")
            return 0
        programs = translate_trace_set(args.directory,
                                       mode=ReplayMode.from_name(args.mode))
        for master_id, program in sorted(programs.items()):
            print(f"core {master_id}: {len(program)} TG instructions -> "
                  f"core{master_id}.tgp / .bin")
        return 0

    return _guarded("repro-traceset", body)


# ------------------------------------------------------------ experiment

_APPS = {}


def _app_by_name(name: str):
    if not _APPS:
        from repro.apps import cacheloop, des, mp_matrix, sp_matrix
        _APPS.update({"sp_matrix": sp_matrix, "cacheloop": cacheloop,
                      "mp_matrix": mp_matrix, "des": des})
    try:
        return _APPS[name]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown benchmark {name!r}; choose from {sorted(_APPS)}")


def experiment_main(argv: Optional[List[str]] = None) -> int:
    """Run one Table-2 configuration and print the row."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run a reference + TG simulation pair and report "
                    "accuracy and speedup (one Table-2 row).")
    parser.add_argument("benchmark", type=_app_by_name,
                        help="sp_matrix | cacheloop | mp_matrix | des")
    parser.add_argument("-n", "--cores", type=int, default=2)
    parser.add_argument("--interconnect", default="ahb",
                        choices=["ahb", "xpipes", "stbus", "tlm"])
    parser.add_argument("--tg-interconnect", default=None,
                        choices=["ahb", "xpipes", "stbus", "tlm"],
                        help="run the TGs on a different fabric (DSE)")
    parser.add_argument("--mode", choices=[m.value for m in ReplayMode],
                        default=ReplayMode.REACTIVE.value)
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="benchmark parameter, e.g. n=8 or blocks=4")
    parser.add_argument("--save-traces", metavar="DIR",
                        help="archive the reference traces as a trace set")
    parser.add_argument("--fault-spec", metavar="FILE",
                        help="JSON fault specification applied to the TG "
                             "run (see docs/FAULTS.md)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault injector's private RNG "
                             "(default 0; same spec+seed = same faults)")
    parser.add_argument("--retry-attempts", type=int, default=None,
                        metavar="N",
                        help="arm a TG retry policy with N total attempts "
                             "per erroring transaction")
    parser.add_argument("--retry-backoff", type=int, default=2,
                        metavar="CYCLES",
                        help="initial retry backoff in cycles, doubled per "
                             "retry (default 2)")
    parser.add_argument("--on-exhaust", choices=["raise", "degrade"],
                        default="degrade",
                        help="when retries run out: abort the run or "
                             "continue degraded (default degrade)")
    parser.add_argument("--watchdog", type=int, default=None,
                        metavar="CYCLES",
                        help="per-request TG watchdog: abort with "
                             "WatchdogTimeout if a transaction is still "
                             "outstanding after CYCLES cycles")
    parser.add_argument("--progress-window", type=int, default=None,
                        metavar="EVENTS",
                        help="kernel livelock watchdog: abort after EVENTS "
                             "events with no simulated-time progress")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    app_params = {}
    for item in args.param:
        key, _, value = item.partition("=")
        app_params[key] = int(value, 0)

    fault_spec = None
    if args.fault_spec:
        from repro.faults import FaultSpec
        fault_spec = FaultSpec.load(args.fault_spec)
    retry_policy = None
    if args.retry_attempts is not None:
        from repro.faults import RetryPolicy
        retry_policy = RetryPolicy(max_attempts=args.retry_attempts,
                                   backoff=args.retry_backoff,
                                   on_exhaust=args.on_exhaust)

    from repro.harness import table2_row, tg_flow
    result = tg_flow(args.benchmark, args.cores,
                     interconnect=args.interconnect,
                     tg_interconnect=args.tg_interconnect,
                     mode=ReplayMode.from_name(args.mode),
                     app_params=app_params or None,
                     fault_spec=fault_spec,
                     fault_seed=args.fault_seed,
                     retry_policy=retry_policy,
                     watchdog_cycles=args.watchdog,
                     progress_window=args.progress_window)
    if args.save_traces:
        from repro.apps.common import pollable_ranges
        from repro.trace import save_trace_set
        save_trace_set(args.save_traces, result.traces,
                       benchmark=result.benchmark,
                       interconnect=result.interconnect,
                       pollable_ranges=pollable_ranges(result.n_cores))
        print(f"traces archived to {args.save_traces}", file=sys.stderr)
    payload = {
        "benchmark": result.benchmark,
        "n_cores": result.n_cores,
        "interconnect": result.interconnect,
        "mode": result.mode.value,
        "ref_cycles": result.ref_cycles,
        "tg_cycles": result.tg_cycles,
        "error": result.error,
        "ref_wall_s": result.ref_wall,
        "tg_wall_s": result.tg_wall,
        "gain": result.gain,
        "event_gain": result.event_gain,
    }
    resilience = None
    if result.tg_platform is not None and \
            result.tg_platform.fault_injector is not None:
        resilience = result.tg_platform.resilience_counters().as_dict()
        payload["fault_seed"] = args.fault_seed
        payload["resilience"] = resilience
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(table2_row(result))
        if resilience is not None:
            from repro.stats import resilience_report
            print(resilience_report(resilience))
    return 0
