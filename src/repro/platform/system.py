"""System builder and run control."""

from typing import Dict, List, Optional

from repro.kernel import Simulator
from repro.cpu.assembler import AssembledProgram, assemble
from repro.cpu.core_ip import CoreIP
from repro.faults import FaultInjector
from repro.interconnect import (
    AddressMap,
    AmbaAhbBus,
    STBusFabric,
    TlmFabric,
    XpipesNoc,
)
from repro.memory import BarrierDevice, MemorySlave, SemaphoreBank
from repro.ocp import OCPSlavePort
from repro.platform.config import (
    BAR_BASE,
    SEM_BASE,
    SHARED_BASE,
    PlatformConfig,
)
from repro.stats.counters import ResilienceCounters

_FABRICS = {
    "ahb": AmbaAhbBus,
    "xpipes": XpipesNoc,
    "stbus": STBusFabric,
    "tlm": TlmFabric,
}


class MparmPlatform:
    """A complete simulatable system.

    Typical reference-simulation use::

        platform = MparmPlatform(PlatformConfig(n_masters=2))
        platform.add_core(asm_source_for_core0)
        platform.add_core(asm_source_for_core1)
        platform.run()
        print(platform.cumulative_execution_time)

    Masters are added in socket order (socket *i* = master id *i*).  A
    master is any object exposing ``port`` (bound by the platform),
    ``start()``, ``finished`` and ``completion_time`` — armlet cores and
    traffic generators both qualify, which is the interchangeability at the
    heart of the paper.
    """

    def __init__(self, config: PlatformConfig):
        self.config = config
        self.sim = Simulator(backend=config.backend)
        self.address_map = AddressMap()
        self.slave_ports: Dict[str, OCPSlavePort] = {}
        self.private_mems: List[MemorySlave] = []
        for core_id in range(config.n_masters):
            mem = MemorySlave(self.sim, f"priv{core_id}",
                              config.private_base(core_id),
                              config.private_size, config.private_timings)
            self._map(mem)
            self.private_mems.append(mem)
        self.shared_mem = MemorySlave(self.sim, "shared", SHARED_BASE,
                                      config.shared_size,
                                      config.shared_timings)
        self.semaphores = SemaphoreBank(self.sim, "sem", SEM_BASE,
                                        config.semaphores,
                                        config.device_timings)
        self.barriers = BarrierDevice(self.sim, "bar", BAR_BASE,
                                      config.barriers, config.device_timings)
        for slave in (self.shared_mem, self.semaphores, self.barriers):
            self._map(slave)
        try:
            fabric_cls = _FABRICS[config.interconnect]
        except KeyError:
            raise ValueError(
                f"unknown interconnect {config.interconnect!r}; choose from "
                f"{sorted(_FABRICS)}") from None
        self.fabric = fabric_cls(self.sim, address_map=self.address_map,
                                 **config.fabric_kwargs)
        self.fault_injector: Optional[FaultInjector] = None
        if config.fault_spec is not None:
            self.fault_injector = FaultInjector(config.fault_spec,
                                                config.fault_seed)
            self.fabric.fault_injector = self.fault_injector
            for slave in (*self.private_mems, self.shared_mem,
                          self.semaphores, self.barriers):
                slave.fault_injector = self.fault_injector
        self.masters: List = []
        self._started = False

    def _map(self, slave: MemorySlave) -> None:
        port = OCPSlavePort(self.sim, f"{slave.name}.port", slave)
        self.address_map.add(slave.base, slave.size_bytes, port, slave.name)
        self.slave_ports[slave.name] = port

    # ------------------------------------------------------------- masters

    @property
    def next_socket(self) -> int:
        return len(self.masters)

    def add_core(self, program, entry: Optional[int] = None) -> CoreIP:
        """Create an armlet core in the next socket.

        ``program`` is either assembly source text (assembled at the core's
        private base) or an :class:`AssembledProgram` already based there.
        The program image is loaded into the core's private memory.
        """
        core_id = self.next_socket
        if core_id >= self.config.n_masters:
            raise ValueError("all master sockets are occupied")
        base = self.config.private_base(core_id)
        if isinstance(program, str):
            program = assemble(program, base=base)
        if not isinstance(program, AssembledProgram):
            raise TypeError("program must be source text or AssembledProgram")
        self.private_mems[core_id].load(program.base, program.words)
        core = CoreIP(self.sim, f"core{core_id}", core_id,
                      self.config.uncached,
                      icache_config=self.config.icache,
                      dcache_config=self.config.dcache)
        core.set_entry(entry if entry is not None else program.entry)
        self._attach(core, core_id)
        return core

    def add_master(self, master) -> None:
        """Attach a pre-built master (e.g. a traffic generator)."""
        core_id = self.next_socket
        if core_id >= self.config.n_masters:
            raise ValueError("all master sockets are occupied")
        self._attach(master, core_id)

    def _attach(self, master, master_id: int) -> None:
        master.port.bind(self.fabric, master_id)
        if isinstance(self.fabric, XpipesNoc):
            self.fabric.attach_master(master_id)
        self.masters.append(master)

    # ------------------------------------------------------------- running

    def start(self) -> None:
        """Start all masters (and finalise the NoC mesh if needed)."""
        if self._started:
            raise RuntimeError("platform already started")
        if len(self.masters) != self.config.n_masters:
            raise RuntimeError(
                f"{len(self.masters)} master(s) added, config expects "
                f"{self.config.n_masters}")
        if isinstance(self.fabric, XpipesNoc):
            self.fabric.build()
        for master in self.masters:
            master.start()
        self._started = True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None,
            progress_window: Optional[int] = None) -> int:
        """Start (if needed) and run until all masters halt.

        Returns the final simulation time.  Raises if the event queue
        drains with unfinished masters (a deadlocked system) unless a
        ``until``/``max_events`` bound stopped the run first.
        ``progress_window`` arms the kernel livelock watchdog
        (:class:`~repro.kernel.LivelockError` after that many events with
        no simulated-time progress — e.g. every poller spinning on a
        semaphore whose release was dropped).
        """
        if not self._started:
            self.start()
        end = self.sim.run(until=until, max_events=max_events,
                           progress_window=progress_window)
        if until is None and max_events is None:
            stuck = [m for m in self.masters if not m.finished]
            if stuck:
                names = ", ".join(getattr(m, "name", "?") for m in stuck)
                raise RuntimeError(
                    f"simulation drained at cycle {end} with unfinished "
                    f"masters: {names}; blocked processes: "
                    f"{self.sim.blocked_report()}")
        return end

    # ---------------------------------------------------------- checkpoint

    def checkpoint_components(self) -> Dict[str, object]:
        """Ordered registry of every stateful component, by stable name.

        The order (masters, slaves, ports, fabric, injector) is the
        serialisation order; names are stable across rebuilds of the same
        configuration, which is what lets a snapshot taken here apply to
        a freshly-built platform.  Raises if any master is not
        checkpoint-aware (armlet cores hold live caches and pipeline
        state this machinery does not capture — checkpointing is a TG
        feature, like the paper's fast simulation itself).
        """
        from repro.artifacts.errors import SnapshotError
        components: Dict[str, object] = {}
        for master_id, master in enumerate(self.masters):
            if not hasattr(master, "state_dict") \
                    or not hasattr(master, "load_state"):
                raise SnapshotError(
                    f"master {getattr(master, 'name', master_id)!r} is "
                    f"not checkpointable",
                    hint="checkpoint/restore supports TG platforms; "
                         "replace cores with traffic generators")
            components[f"master{master_id}"] = master
        for slave in (*self.private_mems, self.shared_mem,
                      self.semaphores, self.barriers):
            components[f"slave:{slave.name}"] = slave
        for name in sorted(self.slave_ports):
            components[f"port:{name}"] = self.slave_ports[name]
        components["fabric"] = self.fabric
        if self.fault_injector is not None:
            components["injector"] = self.fault_injector
        return components

    def snapshot(self, platform_recipe: Optional[dict] = None,
                 scan_limit: Optional[int] = None) -> dict:
        """Capture a snapshot at the first quiescent cycle >= now.

        May advance simulation time (see
        :func:`repro.kernel.snapshot.advance_to_quiescence`).
        ``platform_recipe`` is stored verbatim for self-contained
        restores (see :mod:`repro.harness.checkpoint`).
        """
        from repro.kernel.snapshot import DEFAULT_SCAN_LIMIT, capture
        return capture(
            self.sim, self.checkpoint_components(),
            platform_recipe if platform_recipe is not None else {},
            scan_limit if scan_limit is not None else DEFAULT_SCAN_LIMIT)

    def apply_snapshot(self, payload: dict,
                       fresh: Optional[List[str]] = None,
                       rederive: Optional[List[str]] = None) -> None:
        """Restore a snapshot onto this freshly-built, un-started
        platform.  ``fresh`` names components that keep their built state
        (fault-campaign branching passes ``["injector"]``); ``rederive``
        names components that adopt only the portable part of the
        captured state and rebuild the rest from quiescence
        (cross-fabric fast-forward passes ``["fabric"]``)."""
        from repro.kernel.snapshot import restore
        restore(self.sim, self.checkpoint_components(), payload,
                fresh=fresh, rederive=rederive)
        self._started = True

    # ------------------------------------------------------------- results

    @property
    def all_finished(self) -> bool:
        return all(master.finished for master in self.masters)

    @property
    def completion_times(self) -> List[Optional[int]]:
        return [master.completion_time for master in self.masters]

    @property
    def cumulative_execution_time(self) -> int:
        """Sum of per-master completion cycles — Table 2's accuracy metric."""
        total = 0
        for master in self.masters:
            if master.completion_time is None:
                raise RuntimeError("a master has not finished")
            total += master.completion_time
        return total

    def resilience_counters(self) -> ResilienceCounters:
        """Merged fault/error/retry counters from injector, slaves and
        masters (all zero on a healthy platform)."""
        counters = ResilienceCounters()
        if self.fault_injector is not None:
            counters.update(self.fault_injector.counters)
        for master in self.masters:
            per_master = getattr(master, "resilience_counters", None)
            if per_master:
                counters.update(per_master)
        return counters

    def stats_summary(self) -> Dict[str, object]:
        """Headline statistics for reports."""
        summary = {
            "cycles": self.sim.now,
            "events": self.sim.events_fired,
            "kernel": self.sim.kernel_counters(),
            "fabric_transactions": self.fabric.stats.transactions,
            "fabric_beats": self.fabric.stats.beats_transferred,
        }
        if isinstance(self.fabric, AmbaAhbBus):
            summary["bus_utilisation"] = round(self.fabric.utilisation(), 4)
        # keys appear only when the fault layer is armed, so healthy-run
        # summaries are unchanged from pre-fault-subsystem behaviour
        if self.fault_injector is not None:
            summary["fault_seed"] = self.fault_injector.seed
            summary["resilience"] = self.resilience_counters().as_dict()
        return summary
