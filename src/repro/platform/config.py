"""Platform configuration and the global memory map."""

from typing import Dict, Optional, Union

from repro.cpu.cache import CacheConfig
from repro.faults.spec import FaultSpec
from repro.kernel.backend import KERNEL_BACKENDS
from repro.memory.slave import SlaveTimings

#: Per-core private memory stride: core *i*'s RAM starts at ``i * stride``.
PRIVATE_STRIDE = 0x0100_0000
#: Shared memory base (uncached from here upward).
SHARED_BASE = 0x1900_0000
#: Hardware semaphore bank base.
SEM_BASE = 0x1A00_0000
#: Barrier/counter device base.
BAR_BASE = 0x1B00_0000

#: Default sizes.
DEFAULT_PRIVATE_SIZE = 0x1_0000       # 64 KiB per core
DEFAULT_SHARED_SIZE = 0x4_0000        # 256 KiB
DEFAULT_SEMAPHORES = 32
DEFAULT_BARRIERS = 16


class PlatformConfig:
    """Everything needed to build a system.

    Args:
        n_masters: Number of master sockets (cores or TGs).
        interconnect: ``"ahb"``, ``"xpipes"``, ``"stbus"`` or ``"tlm"``.
        fabric_kwargs: Extra keyword arguments for the fabric constructor
            (e.g. ``arbiter_policy="round_robin"`` for AHB).
        private_size / shared_size: Memory sizes in bytes.
        private_timings / shared_timings / device_timings: Slave access
            times.
        icache / dcache: Cache geometries for armlet cores.
        fault_spec: Optional :class:`~repro.faults.FaultSpec` (or a plain
            dict parsed as one) describing the degraded-platform scenario;
            ``None`` builds a fully healthy platform with the fault layer
            entirely absent.
        fault_seed: Seed of the injector's private RNG; a ``(spec, seed)``
            pair replays the identical fault sequence on every run.
        backend: Kernel event-dispatch engine — ``"classic"`` (binary
            heap) or ``"fast"`` (batched calendar queue).  Both produce
            bit-identical simulations (see :mod:`repro.kernel.backend`).
    """

    def __init__(self, n_masters: int = 1, interconnect: str = "ahb",
                 fabric_kwargs: Optional[Dict] = None,
                 private_size: int = DEFAULT_PRIVATE_SIZE,
                 shared_size: int = DEFAULT_SHARED_SIZE,
                 semaphores: int = DEFAULT_SEMAPHORES,
                 barriers: int = DEFAULT_BARRIERS,
                 private_timings: Optional[SlaveTimings] = None,
                 shared_timings: Optional[SlaveTimings] = None,
                 device_timings: Optional[SlaveTimings] = None,
                 icache: Optional[CacheConfig] = None,
                 dcache: Optional[CacheConfig] = None,
                 fault_spec: Union[None, Dict, FaultSpec] = None,
                 fault_seed: int = 0,
                 backend: str = "classic"):
        if n_masters < 1:
            raise ValueError("need at least one master")
        if n_masters * PRIVATE_STRIDE > SHARED_BASE:
            raise ValueError(f"too many masters ({n_masters}) for the "
                             f"private-memory window")
        self.n_masters = n_masters
        self.interconnect = interconnect
        self.fabric_kwargs = dict(fabric_kwargs or {})
        # Fixed-priority arbitration starves high-id masters once pollers
        # saturate the bus (observed: core N-1 never fetches code under 5+
        # polling peers).  The paper's AMBA platform scales to 12 cores, so
        # the platform default is fair round-robin; pass arbiter_policy
        # explicitly to study starvation.
        if interconnect == "ahb":
            self.fabric_kwargs.setdefault("arbiter_policy", "round_robin")
        self.private_size = private_size
        self.shared_size = shared_size
        self.semaphores = semaphores
        self.barriers = barriers
        self.private_timings = private_timings or SlaveTimings(1, 1)
        self.shared_timings = shared_timings or SlaveTimings(2, 1)
        self.device_timings = device_timings or SlaveTimings(1, 1)
        self.icache = icache or CacheConfig(lines=128, line_words=4)
        self.dcache = dcache or CacheConfig(lines=128, line_words=4)
        if isinstance(fault_spec, dict):
            fault_spec = FaultSpec.from_dict(fault_spec)
        self.fault_spec = fault_spec
        self.fault_seed = fault_seed
        if backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel backend {backend!r}; choose "
                             f"from {sorted(KERNEL_BACKENDS)}")
        self.backend = backend

    def private_base(self, core_id: int) -> int:
        """Base address of core ``core_id``'s private memory."""
        if not 0 <= core_id < self.n_masters:
            raise ValueError(f"core id {core_id} out of range")
        return core_id * PRIVATE_STRIDE

    def uncached(self, addr: int) -> bool:
        """Cacheability predicate: shared/device space is uncached."""
        return addr >= SHARED_BASE

    def clone(self, **overrides) -> "PlatformConfig":
        """A copy of this config with some fields replaced."""
        fields = dict(
            n_masters=self.n_masters,
            interconnect=self.interconnect,
            fabric_kwargs=dict(self.fabric_kwargs),
            private_size=self.private_size,
            shared_size=self.shared_size,
            semaphores=self.semaphores,
            barriers=self.barriers,
            private_timings=self.private_timings,
            shared_timings=self.shared_timings,
            device_timings=self.device_timings,
            icache=self.icache,
            dcache=self.dcache,
            fault_spec=self.fault_spec,
            fault_seed=self.fault_seed,
            backend=self.backend,
        )
        fields.update(overrides)
        return PlatformConfig(**fields)
