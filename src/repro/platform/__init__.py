"""MPARM-like platform assembly.

Builds complete systems out of the substrates: N master devices (armlet
cores or traffic generators), private memory per core, shared memory, the
hardware semaphore bank and barrier device, all behind a chosen
interconnect.  The memory map follows MPARM's layout style:

========================= =====================================
region                    base
========================= =====================================
private memory, core *i*  ``i * 0x0100_0000``
shared memory             ``0x1900_0000``
semaphore bank            ``0x1A00_0000``
barrier/counter device    ``0x1B00_0000``
========================= =====================================

Everything at or above the shared-memory base is uncached (shared data,
synchronisation devices); private memory is cached.
"""

from repro.platform.config import (
    BAR_BASE,
    PRIVATE_STRIDE,
    SEM_BASE,
    SHARED_BASE,
    PlatformConfig,
)
from repro.platform.system import MparmPlatform

__all__ = [
    "BAR_BASE",
    "MparmPlatform",
    "PRIVATE_STRIDE",
    "PlatformConfig",
    "SEM_BASE",
    "SHARED_BASE",
]
