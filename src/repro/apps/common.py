"""Shared assembly fragments: headers, barriers, semaphore helpers.

The synchronisation idioms here produce exactly the polling patterns the
paper's Section 3 discusses: a tight read/compare/branch loop against a
pollable device, ending with a read whose value satisfies the exit
condition.  The TG translator recognises these at the OCP trace level.
"""

from repro.platform.config import BAR_BASE, SEM_BASE, SHARED_BASE

#: Shared-memory layout used by the multiprocessor apps (byte offsets from
#: SHARED_BASE).  Mailbox *flags* live in their own small window so the
#: translator can mark just that window pollable.
MBOX_FLAGS_OFF = 0x1000
MBOX_DATA_OFF = 0x2000
DES_OUTPUT_OFF = 0x3000
MATRIX_A_OFF = 0x4000
MATRIX_B_OFF = 0x5000
MATRIX_C_OFF = 0x6000
PARTIAL_SUMS_OFF = 0x7000
TOTAL_SUM_OFF = 0x7100
SP_RESULT_OFF = 0x7200


def app_header(core_id: int, n_cores: int) -> str:
    """Standard ``.equ`` prologue giving a program its system constants."""
    return f"""\
.equ SHARED {SHARED_BASE}
.equ SEM {SEM_BASE}
.equ BAR {BAR_BASE}
.equ CORE_ID {core_id}
.equ NPROC {n_cores}
"""


def barrier_wait(label: str, counter_index: int, n_cores: int,
                 addr_reg: str = "r12", tmp_reg: str = "r11") -> str:
    """Barrier among ``n_cores`` masters on barrier counter ``counter_index``.

    Each participant atomically adds 1 to the counter, then polls until the
    count reads ``n_cores``.  Distinct phases must use distinct counters
    (the device is never reset mid-run).
    """
    counter_addr = BAR_BASE + counter_index * 8
    return f"""\
    LI {addr_reg}, {counter_addr}
    MOVI {tmp_reg}, 1
    STR {tmp_reg}, [{addr_reg}]
    .align 16           ; keep the poll loop in one I-cache line
{label}:
    LDR {tmp_reg}, [{addr_reg}]
    CMPI {tmp_reg}, {n_cores}
    BNE {label}
"""


def sem_acquire(label: str, sem_index: int,
                addr_reg: str = "r12", tmp_reg: str = "r11") -> str:
    """Spin on hardware semaphore ``sem_index`` until acquired (reads 1)."""
    sem_addr = SEM_BASE + sem_index * 4
    return f"""\
    LI {addr_reg}, {sem_addr}
    .align 16           ; keep the poll loop in one I-cache line
{label}:
    LDR {tmp_reg}, [{addr_reg}]
    CMPI {tmp_reg}, 1
    BNE {label}
"""


def sem_release(sem_index: int,
                addr_reg: str = "r12", tmp_reg: str = "r11") -> str:
    """Release hardware semaphore ``sem_index`` (write 1)."""
    sem_addr = SEM_BASE + sem_index * 4
    return f"""\
    LI {addr_reg}, {sem_addr}
    MOVI {tmp_reg}, 1
    STR {tmp_reg}, [{addr_reg}]
"""


def pollable_ranges(n_cores: int):
    """Address ranges the translator should treat as pollable resources.

    Returns ``(base, size)`` tuples covering the semaphore bank, the
    barrier device and the mailbox-flag window in shared memory.
    """
    from repro.platform.config import (
        DEFAULT_BARRIERS,
        DEFAULT_SEMAPHORES,
    )
    return [
        (SEM_BASE, DEFAULT_SEMAPHORES * 4),
        (BAR_BASE, DEFAULT_BARRIERS * 8),
        (SHARED_BASE + MBOX_FLAGS_OFF, 0x100),
    ]
