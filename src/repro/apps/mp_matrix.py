"""MP matrix: multiprocessor matrix multiplication over shared memory.

The Table-2 workload that stresses synchronisation and resource contention:

1. core 0 initialises A and B in (uncached) shared memory;
2. **barrier 0** — everyone waits for the data;
3. each core computes the C rows ``core_id, core_id + n, core_id + 2n, …``
   (static strided partition, so addresses/data are interleaving-free) and
   accumulates a private checksum of its rows;
4. each core takes **semaphore 0**, stores its checksum into its own
   per-core slot, releases — realistic lock contention with constant data;
5. **barrier 1** — all partials posted;
6. core 0 sums the partial slots and stores the total.

Every matrix access is an uncached shared-memory transaction, so bus load
grows with the core count and eventually saturates the AHB — reproducing
the paper's observation that congestion first hurts accuracy slightly and
then *improves* it while eating into the TG speedup.
"""

from typing import List

from repro.apps.common import (
    MATRIX_A_OFF,
    MATRIX_B_OFF,
    MATRIX_C_OFF,
    PARTIAL_SUMS_OFF,
    TOTAL_SUM_OFF,
    app_header,
    barrier_wait,
    sem_acquire,
    sem_release,
)
from repro.ocp.types import WORD_MASK

DEFAULT_N = 8

#: Initialisation formulas (must match the assembly in ``_init_block``).
A_MULT, A_ADD = 7, 3
B_MULT, B_ADD = 5, 11


def matrix_a(n: int = DEFAULT_N) -> List[int]:
    return [(index * A_MULT + A_ADD) & 0x7FFF for index in range(n * n)]


def matrix_b(n: int = DEFAULT_N) -> List[int]:
    return [(index * B_MULT + B_ADD) & 0x7FFF for index in range(n * n)]


def expected_product(n: int = DEFAULT_N) -> List[int]:
    a, b = matrix_a(n), matrix_b(n)
    out = []
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i * n + k] * b[k * n + j]) & WORD_MASK
            out.append(acc)
    return out


def expected_partials(n_cores: int, n: int = DEFAULT_N) -> List[int]:
    """Golden per-core checksums under the strided row partition."""
    product = expected_product(n)
    partials = []
    for core in range(n_cores):
        total = 0
        for row in range(core, n, n_cores):
            for j in range(n):
                total = (total + product[row * n + j]) & WORD_MASK
        partials.append(total)
    return partials


def expected_total(n_cores: int, n: int = DEFAULT_N) -> int:
    total = 0
    for value in expected_partials(n_cores, n):
        total = (total + value) & WORD_MASK
    return total


def source(core_id: int, n_cores: int, n: int = DEFAULT_N) -> str:
    """Assembly for core ``core_id`` of ``n_cores``."""
    header = app_header(core_id, n_cores)
    init = _init_block(n) if core_id == 0 else ""
    reduce_block = _reduce_block(n_cores) if core_id == 0 else ""
    return f"""\
{header}
.equ N {n}
.equ MAT_A SHARED+{MATRIX_A_OFF}
.equ MAT_B SHARED+{MATRIX_B_OFF}
.equ MAT_C SHARED+{MATRIX_C_OFF}
.equ PARTIALS SHARED+{PARTIAL_SUMS_OFF}
.equ TOTAL SHARED+{TOTAL_SUM_OFF}
start:
{init}
{barrier_wait("bar_start", 0, n_cores)}
    ; compute rows CORE_ID, CORE_ID+NPROC, ... of C; r0 = running checksum
    MOVI r0, 0
    MOVI r4, CORE_ID    ; current row
row_loop:
    CMPI r4, N
    BGE rows_done
    MOVI r5, 0          ; j
col_loop:
    LI r1, MAT_A
    MOVI r8, N*4
    MUL r6, r4, r8
    ADD r6, r6, r1      ; aptr = &A[row][0]
    LI r2, MAT_B
    LSLI r7, r5, 2
    ADD r7, r7, r2      ; bptr = &B[0][j]
    MOVI r9, 0          ; acc
    MOVI r10, N
inner_k:
    LDR r11, [r6]
    LDR r12, [r7]
    MUL r11, r11, r12
    ADD r9, r9, r11
    ADDI r6, r6, 4
    ADDI r7, r7, N*4
    SUBI r10, r10, 1
    CMPI r10, 0
    BNE inner_k
    LI r3, MAT_C
    MUL r11, r4, r8
    ADD r11, r11, r3
    LSLI r12, r5, 2
    ADD r11, r11, r12
    STR r9, [r11]       ; C[row][j]
    ADD r0, r0, r9      ; checksum
    ADDI r5, r5, 1
    CMPI r5, N
    BNE col_loop
    ADDI r4, r4, NPROC
    B row_loop
rows_done:
{sem_acquire("sem_poll", 0)}
    LI r12, PARTIALS+CORE_ID*4
    STR r0, [r12]       ; my slot, my deterministic value
{sem_release(0)}
{barrier_wait("bar_done", 1, n_cores)}
{reduce_block}
    HALT
"""


def _init_block(n: int) -> str:
    """Core-0 prologue: fill A and B in shared memory.

    ``A[idx] = (idx*{A_MULT}+{A_ADD}) & 0x7FFF`` and similarly for B —
    formulas chosen to be cheap in armlet assembly.
    """
    return f"""\
    ; initialise A
    LI r1, MAT_A
    MOVI r2, 0          ; idx
    MOVI r3, N*N
init_a:
    MOVI r4, {A_MULT}
    MUL r4, r2, r4
    ADDI r4, r4, {A_ADD}
    LI r5, 0x7FFF
    AND r4, r4, r5
    STR r4, [r1]
    ADDI r1, r1, 4
    ADDI r2, r2, 1
    CMP r2, r3
    BNE init_a
    ; initialise B
    LI r1, MAT_B
    MOVI r2, 0
init_b:
    MOVI r4, {B_MULT}
    MUL r4, r2, r4
    ADDI r4, r4, {B_ADD}
    LI r5, 0x7FFF
    AND r4, r4, r5
    STR r4, [r1]
    ADDI r1, r1, 4
    ADDI r2, r2, 1
    CMP r2, r3
    BNE init_b
"""


def _reduce_block(n_cores: int) -> str:
    """Core-0 epilogue: sum the per-core partial slots into TOTAL."""
    return """\
    LI r1, PARTIALS
    MOVI r2, 0          ; sum
    MOVI r3, NPROC
reduce:
    LDR r4, [r1]
    ADD r2, r2, r4
    ADDI r1, r1, 4
    SUBI r3, r3, 1
    CMPI r3, 0
    BNE reduce
    LI r1, TOTAL
    STR r2, [r1]
"""
