"""DES: pipelined block encryption/decryption over shared-memory mailboxes.

A structurally faithful word-level Feistel cipher (see DESIGN.md §5 for the
substitution note): 64-bit blocks as (L, R) word pairs, 16 rounds with a
256-entry S-box table and per-round keys, final half-swap.  Decryption is
the same code with the key schedule reversed, so D(E(x)) = x exactly.

Pipeline structure (the paper's multiprocessor synchronisation stress):

* core 0 reads plaintext blocks from its private table, processes them
  (encrypt), and pushes them into mailbox 0;
* core *i* pops mailbox *i-1*, processes (odd stages decrypt, even stages
  encrypt — so consecutive stage pairs cancel), pushes mailbox *i*;
* the last core stores results to shared memory.

Mailboxes are single-slot: a flag word (in the pollable flag window) plus
a two-word data buffer.  Producers poll for flag==0, consumers for
flag==1 — the polling traffic whose count depends on the interconnect,
i.e. exactly what a reactive TG must regenerate rather than replay.

S-box and key schedule are deterministic formulas shared by the assembly
generator and the Python golden model below.
"""

from typing import List, Tuple

from repro.apps.common import (
    DES_OUTPUT_OFF,
    MBOX_DATA_OFF,
    MBOX_FLAGS_OFF,
    app_header,
)
from repro.ocp.types import WORD_MASK

DEFAULT_BLOCKS = 6

#: Number of Feistel rounds.
ROUNDS = 16


def sbox() -> List[int]:
    """The 256-entry substitution table (Knuth-hash based, deterministic)."""
    return [((i * 2654435761) + 0x9E3779B9) & WORD_MASK for i in range(256)]


def key_schedule() -> List[int]:
    """The 16 round keys (shared by every stage; odd stages reverse them)."""
    return [((r * 0x0123_4567) ^ 0xA5A5_A5A5) & WORD_MASK for r in range(ROUNDS)]


def plaintext_blocks(blocks: int = DEFAULT_BLOCKS) -> List[Tuple[int, int]]:
    """Deterministic (L, R) input blocks."""
    return [((b * 0x1111_1111 + 7) & WORD_MASK,
             (b * 0x2222_2221 + 3) & WORD_MASK) for b in range(blocks)]


def _rotl16(value: int) -> int:
    return ((value << 16) | (value >> 16)) & WORD_MASK


def feistel_f(x: int, table: List[int]) -> int:
    """Round function: two S-box lookups combined with a half-word rotate."""
    return (table[x & 0xFF] ^ _rotl16(table[(x >> 8) & 0xFF])) & WORD_MASK


def process_block(left: int, right: int, keys: List[int],
                  table: List[int]) -> Tuple[int, int]:
    """Run 16 Feistel rounds then swap halves (golden model)."""
    for key in keys:
        left, right = right, left ^ feistel_f(right ^ key, table)
    return right, left


def encrypt_block(left: int, right: int) -> Tuple[int, int]:
    return process_block(left, right, key_schedule(), sbox())

def decrypt_block(left: int, right: int) -> Tuple[int, int]:
    return process_block(left, right, list(reversed(key_schedule())), sbox())


def stage_keys(stage: int) -> List[int]:
    """Key order for pipeline stage ``stage`` (odd stages decrypt)."""
    keys = key_schedule()
    return list(reversed(keys)) if stage % 2 else keys


def expected_output(n_cores: int,
                    blocks: int = DEFAULT_BLOCKS) -> List[Tuple[int, int]]:
    """Golden pipeline output for ``n_cores`` stages."""
    table = sbox()
    out = []
    for left, right in plaintext_blocks(blocks):
        for stage in range(n_cores):
            left, right = process_block(left, right, stage_keys(stage), table)
        out.append((left, right))
    return out


def _mbox_flag(index: int) -> str:
    return f"SHARED+{MBOX_FLAGS_OFF}+{index * 4}"


def _mbox_data(index: int) -> str:
    return f"SHARED+{MBOX_DATA_OFF}+{index * 16}"


def _words_directive(words: List[int]) -> str:
    return "\n".join(f"    .word 0x{w:08x}" for w in words)


def source(core_id: int, n_cores: int, blocks: int = DEFAULT_BLOCKS) -> str:
    """Assembly for pipeline stage ``core_id`` of ``n_cores``."""
    if n_cores < 2:
        raise ValueError("the DES pipeline needs at least 2 cores")
    header = app_header(core_id, n_cores)
    is_first = core_id == 0
    is_last = core_id == n_cores - 1

    if is_first:
        get_block = """\
    ; load next plaintext block from the private table (r13 = pointer)
    LDR r5, [r13]
    LDR r6, [r13, #4]
    ADDI r13, r13, 8
"""
    else:
        get_block = f"""\
    ; pop mailbox {core_id - 1}
    LI r2, {_mbox_flag(core_id - 1)}
    .align 16           ; keep the poll loop in one I-cache line
recv_poll:
    LDR r3, [r2]
    CMPI r3, 1
    BNE recv_poll
    LI r2, {_mbox_data(core_id - 1)}
    LDR r5, [r2]
    LDR r6, [r2, #4]
    LI r2, {_mbox_flag(core_id - 1)}
    MOVI r3, 0
    STR r3, [r2]
"""

    if is_last:
        put_block = """\
    ; store result block (r13 = output pointer)
    STR r5, [r13]
    STR r6, [r13, #4]
    ADDI r13, r13, 8
"""
    else:
        put_block = f"""\
    ; push mailbox {core_id}
    LI r2, {_mbox_flag(core_id)}
    .align 16           ; keep the poll loop in one I-cache line
send_poll:
    LDR r3, [r2]
    CMPI r3, 0
    BNE send_poll
    LI r2, {_mbox_data(core_id)}
    STR r5, [r2]
    STR r6, [r2, #4]
    LI r2, {_mbox_flag(core_id)}
    MOVI r3, 1
    STR r3, [r2]
"""

    if is_first:
        pointer_init = "    LI r13, plaintext"
    elif is_last:
        pointer_init = f"    LI r13, SHARED+{DES_OUTPUT_OFF}"
    else:
        pointer_init = "    ; middle stage needs no block pointer"

    data_section = ""
    if is_first:
        flat = [w for pair in plaintext_blocks(blocks) for w in pair]
        data_section = f"plaintext:\n{_words_directive(flat)}\n"

    return f"""\
{header}
.equ BLOCKS {blocks}
start:
    LI r9, keys
    LI r10, sbox
{pointer_init}
    LI r0, BLOCKS
block_loop:
{get_block}
    BL process
{put_block}
    SUBI r0, r0, 1
    CMPI r0, 0
    BNE block_loop
    HALT

; ---- process: 16 Feistel rounds + final swap --------------------------
; in/out: r5 = L, r6 = R; preserves r0, r9, r10, r13; clobbers r1-r4,
; r7, r8, r11, r12
process:
    MOV r8, lr
    MOVI r11, {ROUNDS}
    MOV r12, r9
round_loop:
    LDR r1, [r12]       ; round key
    EOR r1, r1, r6      ; x = R ^ K
    BL feistel_f
    MOV r7, r6
    EOR r6, r5, r1      ; R' = L ^ F(x)
    MOV r5, r7          ; L' = old R
    ADDI r12, r12, 4
    SUBI r11, r11, 1
    CMPI r11, 0
    BNE round_loop
    MOV r7, r5          ; final half swap
    MOV r5, r6
    MOV r6, r7
    MOV lr, r8
    RET

; ---- feistel_f: r1 = F(r1); clobbers r2-r4 ----------------------------
feistel_f:
    ANDI r2, r1, 0xFF
    LSLI r2, r2, 2
    ADD r2, r2, r10
    LDR r2, [r2]        ; SBOX[x & 0xFF]
    LSRI r3, r1, 8
    ANDI r3, r3, 0xFF
    LSLI r3, r3, 2
    ADD r3, r3, r10
    LDR r3, [r3]        ; SBOX[(x >> 8) & 0xFF]
    LSLI r4, r3, 16     ; rotl16
    LSRI r3, r3, 16
    ORR r3, r3, r4
    EOR r1, r2, r3
    RET

keys:
{_words_directive(stage_keys(core_id))}
sbox:
{_words_directive(sbox())}
{data_section}"""
