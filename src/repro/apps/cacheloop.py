"""Cacheloop: idle loops executing entirely from the I-cache (Table 2).

After the first loop iteration fills the instruction cache, the core
generates *no* bus traffic until the final result store.  The paper uses
this benchmark to measure the raw speedup of replacing cores by TGs when
the interconnect is not the bottleneck — the speedup keeps growing with
the number of processors because the bus never saturates.
"""

from repro.apps.common import app_header
from repro.ocp.types import WORD_MASK

DEFAULT_ITERS = 2000


def expected_result(iters: int = DEFAULT_ITERS) -> int:
    """Golden loop result (3 increments per iteration)."""
    return (3 * iters) & WORD_MASK


def source(core_id: int, n_cores: int, iters: int = DEFAULT_ITERS) -> str:
    """Assembly for core ``core_id``; all cores run the same loop."""
    header = app_header(core_id, n_cores)
    return f"""\
{header}
start:
    MOVI r1, 0
    LI r3, {iters}
loop:
    ADDI r1, r1, 1      ; some in-cache ALU work
    ADDI r1, r1, 1
    ADDI r1, r1, 1
    EORI r2, r1, 0x55
    ORRI r2, r2, 0x3
    SUBI r3, r3, 1
    CMPI r3, 0
    BNE loop
    LI r4, result
    STR r1, [r4]
    HALT
result:
    .word 0
"""
