"""Parametric synthetic-traffic workloads (no trace needed).

The paper's economics argument — evaluate every design alternative on
cheap TG simulations — multiplies with workload diversity: four traced
benchmarks become thousands of scenarios once TG programs can be
*generated* from a declarative description instead of translated from a
reference run.  A :class:`TrafficSpec` names a spatial pattern, a
transaction-size distribution, an offered-load fraction and optional
bursty on/off phases; :func:`generate_programs` turns it into one
:class:`~repro.core.program.TGProgram` per core, built only from the TG
ISA the translator already emits (``SetRegister``/``Idle``/``Read``/
``Write``/``BurstRead``/``BurstWrite``/``Halt``), so the programs
assemble, save and simulate through the existing pipeline unchanged.

Spatial patterns (destinations are other cores' private-memory windows,
globally visible on every fabric; ``hotspot`` adds a configurable-weight
hot slave, by default the shared memory):

* ``uniform`` — uniform random over the other cores;
* ``hotspot`` — uniform plus a hot slave drawing ``hot_weight`` times
  the traffic of an ordinary destination;
* ``transpose`` — ``dst = bit-halves-swapped(src)`` (needs a square
  power-of-two core count);
* ``bit_complement`` — ``dst = ~src`` over the id bits (power of two);
* ``neighbor`` — ``dst = (src + 1) mod n``.

Transaction sizes come from a fixed word count, a uniform word range, or
a CDF file in the Yokumii ``traffic_gen`` format (lines of
``<size_bytes> <cumulative_percent>``, ending at 100), sampled by
inverse transform with linear interpolation.

Offered load is the fraction of a core's request-issue capacity: each
transaction costs ``busy = setup_instructions + words`` cycles of its
own issue pipeline, and the generator inserts ``Idle`` gaps of
``busy * (1 - load) / load`` cycles (with exact fractional carry), so
the *scheduled* load ``busy / (busy + idle)`` matches the spec to
rounding.  Because the TG is a closed-loop master, contention shows up
as transaction latency rather than dropped load — saturation curves
plot latency against offered load.

Everything is driven by one seeded RNG stream per core
(``random.Random(f"{seed}:{core}")``): identical specs produce
byte-identical ``.tgp`` and ``.bin`` artifacts, on any machine, under
any ``--jobs`` parallelism.
"""

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.artifacts.errors import ParseDiagnostic
from repro.core.isa import ADDRREG, DATAREG, TGInstruction, TGOp
from repro.core.modes import ReplayMode
from repro.core.program import TGProgram
from repro.platform.config import (
    DEFAULT_PRIVATE_SIZE,
    DEFAULT_SHARED_SIZE,
    PRIVATE_STRIDE,
    SHARED_BASE,
)

__all__ = [
    "PATTERNS",
    "TrafficSpec",
    "TrafficSpecError",
    "generate",
    "generate_programs",
    "load_cdf",
    "parse_cdf",
    "synthetic_flow",
    "synthetic_programs",
    "SyntheticResult",
]

#: The supported spatial patterns.
PATTERNS = ("uniform", "hotspot", "transpose", "bit_complement", "neighbor")

#: Largest burst the ISA encodes (``b`` field of BurstRead/BurstWrite).
MAX_WORDS = 255


class TrafficSpecError(ParseDiagnostic):
    """A defective traffic spec or CDF file (CLI exit code 4)."""


# --------------------------------------------------------- size models

class _FixedSize:
    """Every transaction moves exactly ``words`` words."""

    kind = "fixed"

    def __init__(self, words: int):
        if not isinstance(words, int) or isinstance(words, bool) \
                or not 1 <= words <= MAX_WORDS:
            raise TrafficSpecError(
                f"fixed size must be an int in [1, {MAX_WORDS}] words, "
                f"got {words!r}")
        self.words = words

    def sample(self, rng: random.Random) -> int:
        return self.words

    def to_dict(self) -> Dict:
        return {"kind": "fixed", "words": self.words}


class _UniformSize:
    """Word counts drawn uniformly from ``[min_words, max_words]``."""

    kind = "uniform"

    def __init__(self, min_words: int, max_words: int):
        for value in (min_words, max_words):
            if not isinstance(value, int) or isinstance(value, bool):
                raise TrafficSpecError(
                    f"uniform size bounds must be ints, got {value!r}")
        if not 1 <= min_words <= max_words <= MAX_WORDS:
            raise TrafficSpecError(
                f"uniform size needs 1 <= min <= max <= {MAX_WORDS}, "
                f"got [{min_words}, {max_words}]")
        self.min_words = min_words
        self.max_words = max_words

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.min_words, self.max_words)

    def to_dict(self) -> Dict:
        return {"kind": "uniform", "min_words": self.min_words,
                "max_words": self.max_words}


class _CdfSize:
    """Sizes drawn from an empirical CDF of transaction sizes in bytes.

    ``points`` is the validated ``[(size_bytes, cumulative_percent)]``
    list from :func:`parse_cdf`; sampling is inverse-transform with
    linear interpolation between points, and the byte size is converted
    to words (ceil, clamped to the ISA's burst range).  The points are
    embedded in :meth:`to_dict`, so a spec that named a CDF *file*
    round-trips through JSON (e.g. into a sweep worker process) without
    the file needing to exist there.
    """

    kind = "cdf"

    def __init__(self, points: List[Tuple[float, float]],
                 file: Optional[str] = None):
        self.points = [(float(size), float(percent))
                       for size, percent in points]
        self.file = file
        if not self.points:
            raise TrafficSpecError("CDF has no points", path=file)

    def sample(self, rng: random.Random) -> int:
        u = rng.uniform(0.0, 100.0)
        prev_size, prev_pct = 0.0, 0.0
        size = self.points[-1][0]
        for point_size, point_pct in self.points:
            if u <= point_pct:
                if point_pct == prev_pct:
                    size = point_size
                else:
                    size = prev_size + (point_size - prev_size) * \
                        (u - prev_pct) / (point_pct - prev_pct)
                break
            prev_size, prev_pct = point_size, point_pct
        # The first bin interpolates from an implicit (0, 0) origin, so a
        # draw landing there — or before a zero-probability leading point —
        # would produce a size *below the distribution's minimum*, a value
        # the empirical data says never occurs.  Clamp to the first
        # recorded size (inline point lists may also carry duplicate
        # sizes, which the equal-percent guard above already handles
        # without dividing by zero).
        min_size = self.points[0][0]
        if size < min_size:
            size = min_size
        words = math.ceil(size / 4.0)
        return max(1, min(MAX_WORDS, words))

    def to_dict(self) -> Dict:
        data: Dict = {"kind": "cdf",
                      "points": [list(p) for p in self.points]}
        if self.file:
            data["file"] = self.file
        return data


def parse_cdf(text: str, path: Optional[str] = None
              ) -> List[Tuple[float, float]]:
    """Parse Yokumii ``traffic_gen``-style CDF text.

    Each non-blank, non-``#`` line is ``<size_bytes> <cumulative_percent>``.
    Sizes must be positive and strictly increasing, percents in
    ``[0, 100]`` and non-decreasing, and the final percent must be 100
    (a normalised distribution).  Violations raise a located
    :class:`TrafficSpecError` (CLI exit code 4).
    """
    points: List[Tuple[float, float]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#")[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 2:
            raise TrafficSpecError(
                "expected '<size_bytes> <cumulative_percent>'",
                path=path, line=line_no, text=raw.strip(),
                hint="one size/percent pair per line")
        try:
            size, percent = float(fields[0]), float(fields[1])
        except ValueError:
            raise TrafficSpecError(
                "size and percent must be numbers",
                path=path, line=line_no, text=raw.strip()) from None
        if size <= 0:
            raise TrafficSpecError(
                f"size must be positive, got {size:g}",
                path=path, line=line_no, text=raw.strip())
        if not 0.0 <= percent <= 100.0:
            raise TrafficSpecError(
                f"cumulative percent must be in [0, 100], got {percent:g}",
                path=path, line=line_no, text=raw.strip())
        if points:
            prev_size, prev_pct = points[-1]
            if size <= prev_size or percent < prev_pct:
                raise TrafficSpecError(
                    "CDF points must be sorted (sizes strictly "
                    "increasing, percents non-decreasing)",
                    path=path, line=line_no, text=raw.strip(),
                    hint="sort the file by size")
        points.append((size, percent))
    if not points:
        raise TrafficSpecError("empty CDF file (no data points)",
                               path=path,
                               hint="one '<size_bytes> <percent>' per line")
    if abs(points[-1][1] - 100.0) > 1e-9:
        raise TrafficSpecError(
            f"CDF is not normalised: last cumulative percent is "
            f"{points[-1][1]:g}, expected 100", path=path,
            hint="the final line must reach 100")
    return points


def load_cdf(path: str) -> List[Tuple[float, float]]:
    """Load and validate a CDF file (see :func:`parse_cdf`)."""
    with open(path) as handle:
        return parse_cdf(handle.read(), path=path)


def _size_from_dict(data: Dict) -> object:
    if not isinstance(data, dict) or "kind" not in data:
        raise TrafficSpecError(
            f"size must be a dict with a 'kind' key, got {data!r}")
    kind = data["kind"]
    if kind == "fixed":
        return _FixedSize(data.get("words", 1))
    if kind == "uniform":
        return _UniformSize(data.get("min_words", 1),
                            data.get("max_words", 1))
    if kind == "cdf":
        points = data.get("points")
        if points is None:
            file = data.get("file")
            if not file:
                raise TrafficSpecError(
                    "cdf size needs a 'file' path or inline 'points'")
            return _CdfSize(load_cdf(file), file=file)
        return _CdfSize([tuple(p) for p in points], file=data.get("file"))
    raise TrafficSpecError(
        f"unknown size kind {kind!r}; choose fixed | uniform | cdf")


# -------------------------------------------------------------- the spec

def _is_pow2(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


class TrafficSpec:
    """A validated, JSON-round-trippable synthetic-workload description.

    Args:
        n_cores: Master sockets (>= 2; destinations are *other* cores).
        pattern: One of :data:`PATTERNS`.
        transactions: OCP transactions each core issues.
        load: Offered-load fraction in ``(0, 1]`` of a core's issue
            capacity; realised as computed ``Idle`` gaps.
        read_fraction: Probability a transaction is a read.
        size: Size-distribution dict (``{"kind": "fixed", "words": 4}``,
            ``{"kind": "uniform", "min_words": .., "max_words": ..}`` or
            ``{"kind": "cdf", "file": ..}`` / inline ``points``).
        burst: Optional ``{"on": N, "off": C}`` — after every ``N``
            transactions the core goes silent for ``C`` extra cycles
            (an on/off bursty phase structure on top of the load gaps).
        hot_target: Hotspot slave — ``"shared"`` (default) or a core id.
        hot_weight: Relative draw weight of the hot slave (>= 1).
        seed: RNG seed; same spec + seed = byte-identical programs.
        mode: Replay mode stamped on the programs (default reactive).
    """

    def __init__(self, n_cores: int, pattern: str = "uniform",
                 transactions: int = 100, load: float = 0.5,
                 read_fraction: float = 0.5,
                 size: Optional[Dict] = None,
                 burst: Optional[Dict] = None,
                 hot_target="shared", hot_weight: float = 4.0,
                 seed: int = 0, mode: str = "reactive"):
        if not isinstance(n_cores, int) or isinstance(n_cores, bool) \
                or n_cores < 2:
            raise TrafficSpecError(
                f"n_cores must be an int >= 2, got {n_cores!r}")
        if n_cores * PRIVATE_STRIDE > SHARED_BASE:
            raise TrafficSpecError(
                f"n_cores={n_cores} exceeds the private-memory window "
                f"({SHARED_BASE // PRIVATE_STRIDE} cores max)")
        if pattern not in PATTERNS:
            raise TrafficSpecError(
                f"unknown pattern {pattern!r}; choose from {PATTERNS}")
        if pattern in ("transpose", "bit_complement") \
                and not _is_pow2(n_cores):
            raise TrafficSpecError(
                f"{pattern} needs a power-of-two core count, "
                f"got {n_cores}")
        if pattern == "transpose" and n_cores.bit_length() % 2 == 0:
            # bit_length of 2^b is b+1, so an odd bit_length means an
            # even number of id bits — the swappable-halves requirement
            raise TrafficSpecError(
                f"transpose needs an even number of id bits (a square "
                f"core count: 4, 16, ...), got {n_cores}")
        if not isinstance(transactions, int) \
                or isinstance(transactions, bool) or transactions < 1:
            raise TrafficSpecError(
                f"transactions must be an int >= 1, got {transactions!r}")
        if not isinstance(load, (int, float)) or isinstance(load, bool) \
                or not 0.0 < float(load) <= 1.0:
            raise TrafficSpecError(
                f"load must be in (0, 1], got {load!r}")
        if not isinstance(read_fraction, (int, float)) \
                or isinstance(read_fraction, bool) \
                or not 0.0 <= float(read_fraction) <= 1.0:
            raise TrafficSpecError(
                f"read_fraction must be in [0, 1], got {read_fraction!r}")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TrafficSpecError(f"seed must be an int, got {seed!r}")
        self.n_cores = n_cores
        self.pattern = pattern
        self.transactions = transactions
        self.load = float(load)
        self.read_fraction = float(read_fraction)
        self.size = _size_from_dict(size or {"kind": "fixed", "words": 4})
        self.burst = self._validated_burst(burst)
        self.hot_target = self._validated_hot_target(hot_target)
        if not isinstance(hot_weight, (int, float)) \
                or isinstance(hot_weight, bool) or hot_weight < 1.0:
            raise TrafficSpecError(
                f"hot_weight must be a number >= 1, got {hot_weight!r}")
        self.hot_weight = float(hot_weight)
        self.seed = seed
        try:
            self.mode = mode if isinstance(mode, ReplayMode) \
                else ReplayMode.from_name(mode)
        except ValueError as error:
            raise TrafficSpecError(str(error)) from None

    def _validated_burst(self, burst: Optional[Dict]) -> Optional[Dict]:
        if burst is None:
            return None
        if not isinstance(burst, dict) \
                or set(burst) - {"on", "off"}:
            raise TrafficSpecError(
                f"burst must be {{'on': N, 'off': C}}, got {burst!r}")
        on, off = burst.get("on"), burst.get("off")
        if not isinstance(on, int) or isinstance(on, bool) or on < 1:
            raise TrafficSpecError(
                f"burst 'on' must be an int >= 1 transactions, got {on!r}")
        if not isinstance(off, int) or isinstance(off, bool) or off < 0:
            raise TrafficSpecError(
                f"burst 'off' must be an int >= 0 cycles, got {off!r}")
        return {"on": on, "off": off}

    def _validated_hot_target(self, target):
        if target == "shared":
            return "shared"
        if isinstance(target, int) and not isinstance(target, bool) \
                and 0 <= target < self.n_cores:
            return target
        raise TrafficSpecError(
            f"hot_target must be 'shared' or a core id in "
            f"[0, {self.n_cores}), got {target!r}")

    @staticmethod
    def from_dict(data: Dict) -> "TrafficSpec":
        known = {"n_cores", "pattern", "transactions", "load",
                 "read_fraction", "size", "burst", "hot_target",
                 "hot_weight", "seed", "mode"}
        if not isinstance(data, dict):
            raise TrafficSpecError(
                f"traffic spec must be a JSON object, got {data!r}")
        unknown = set(data) - known
        if unknown:
            raise TrafficSpecError(
                f"unknown traffic spec keys: {sorted(unknown)}",
                hint=f"known keys: {sorted(known)}")
        if "n_cores" not in data:
            raise TrafficSpecError("traffic spec needs 'n_cores'")
        return TrafficSpec(
            n_cores=data["n_cores"],
            pattern=data.get("pattern", "uniform"),
            transactions=data.get("transactions", 100),
            load=data.get("load", 0.5),
            read_fraction=data.get("read_fraction", 0.5),
            size=data.get("size"),
            burst=data.get("burst"),
            hot_target=data.get("hot_target", "shared"),
            hot_weight=data.get("hot_weight", 4.0),
            seed=data.get("seed", 0),
            mode=data.get("mode", "reactive"))

    def to_dict(self) -> Dict:
        """Canonical JSON form; round-trips via :meth:`from_dict`.

        CDF distributions serialise their *points*, so the dict is
        self-contained (no file access needed to rebuild the spec).
        """
        return {
            "n_cores": self.n_cores,
            "pattern": self.pattern,
            "transactions": self.transactions,
            "load": self.load,
            "read_fraction": self.read_fraction,
            "size": self.size.to_dict(),
            "burst": dict(self.burst) if self.burst else None,
            "hot_target": self.hot_target,
            "hot_weight": self.hot_weight,
            "seed": self.seed,
            "mode": self.mode.value,
        }

    def replace(self, **overrides) -> "TrafficSpec":
        """A copy of this spec with some fields replaced (sweep axes)."""
        data = self.to_dict()
        data.update(overrides)
        return TrafficSpec.from_dict(data)

    def __repr__(self) -> str:
        return (f"<TrafficSpec {self.pattern} {self.n_cores}P "
                f"load={self.load:g} x{self.transactions} "
                f"seed={self.seed}>")


# ----------------------------------------------------------- generation

def _destinations(spec: TrafficSpec, core_id: int
                  ) -> List[Tuple[int, int, float]]:
    """Weighted ``(base, window_bytes, weight)`` candidates for a core.

    Deterministic patterns return a single candidate; random patterns
    return the full weighted set the per-transaction draw picks from.
    """
    def private(dst: int) -> Tuple[int, int, float]:
        return (dst * PRIVATE_STRIDE, DEFAULT_PRIVATE_SIZE, 1.0)

    n = spec.n_cores
    if spec.pattern == "uniform":
        return [private(dst) for dst in range(n) if dst != core_id]
    if spec.pattern == "hotspot":
        candidates = [private(dst) for dst in range(n) if dst != core_id]
        if spec.hot_target == "shared":
            candidates.append((SHARED_BASE, DEFAULT_SHARED_SIZE,
                               spec.hot_weight))
        else:
            candidates.append((spec.hot_target * PRIVATE_STRIDE,
                               DEFAULT_PRIVATE_SIZE, spec.hot_weight))
        return candidates
    if spec.pattern == "transpose":
        bits = n.bit_length() - 1
        half = bits // 2
        low_mask = (1 << half) - 1
        dst = ((core_id & low_mask) << half) | (core_id >> half)
        return [private(dst)]
    if spec.pattern == "bit_complement":
        return [private(core_id ^ (n - 1))]
    # neighbor
    return [private((core_id + 1) % n)]


def _pick(candidates: List[Tuple[int, int, float]], rng: random.Random
          ) -> Tuple[int, int]:
    if len(candidates) == 1:
        return candidates[0][0], candidates[0][1]
    total = sum(weight for _, _, weight in candidates)
    mark = rng.random() * total
    acc = 0.0
    for base, window, weight in candidates:
        acc += weight
        if mark < acc:
            return base, window
    return candidates[-1][0], candidates[-1][1]


def _generate_core(spec: TrafficSpec, core_id: int
                   ) -> Tuple[TGProgram, Dict]:
    """One core's program plus its generator diagnostics."""
    rng = random.Random(f"{spec.seed}:{core_id}")
    program = TGProgram(core_id=core_id, mode=spec.mode)
    candidates = _destinations(spec, core_id)
    burst = spec.burst
    busy_cycles = 0
    idle_cycles = 0
    burst_off_cycles = 0
    words_total = 0
    reads = 0
    carry = 0.0
    for issued in range(spec.transactions):
        base, window = _pick(candidates, rng)
        words = spec.size.sample(rng)
        max_word_offset = window // 4 - words
        offset = rng.randrange(max_word_offset + 1) * 4
        addr = base + offset
        is_read = rng.random() < spec.read_fraction
        setup = [TGInstruction(TGOp.SET_REGISTER, a=ADDRREG, imm=addr)]
        if is_read:
            if words == 1:
                op = TGInstruction(TGOp.READ, a=ADDRREG)
            else:
                op = TGInstruction(TGOp.BURST_READ, a=ADDRREG, b=words)
        else:
            if words == 1:
                setup.append(TGInstruction(
                    TGOp.SET_REGISTER, a=DATAREG,
                    imm=rng.getrandbits(32)))
                op = TGInstruction(TGOp.WRITE, a=ADDRREG, b=DATAREG)
            else:
                pool_offset = program.add_pool(
                    [rng.getrandbits(32) for _ in range(words)])
                op = TGInstruction(TGOp.BURST_WRITE, a=ADDRREG, b=words,
                                   imm=pool_offset)
        busy = len(setup) + words
        # the load gap: idle so that busy / (busy + idle) == load,
        # carrying the fractional remainder into the next transaction
        ideal_gap = busy * (1.0 - spec.load) / spec.load
        acc = ideal_gap + carry
        gap = int(acc)
        carry = acc - gap
        for instr in setup:
            program.append(instr)
        if gap > 0:
            program.append(TGInstruction(TGOp.IDLE, imm=gap))
        program.append(op)
        busy_cycles += busy
        idle_cycles += gap
        words_total += words
        reads += int(is_read)
        if burst is not None and burst["off"] > 0 \
                and (issued + 1) % burst["on"] == 0 \
                and issued + 1 < spec.transactions:
            program.append(TGInstruction(TGOp.IDLE, imm=burst["off"]))
            burst_off_cycles += burst["off"]
    program.append(TGInstruction(TGOp.HALT))
    program.validate()
    active = busy_cycles + idle_cycles
    diagnostics = {
        "core": core_id,
        "instructions": len(program),
        "pool_words": len(program.pool),
        "transactions": spec.transactions,
        "reads": reads,
        "writes": spec.transactions - reads,
        "words": words_total,
        "busy_cycles": busy_cycles,
        "idle_cycles": idle_cycles,
        "burst_off_cycles": burst_off_cycles,
        "scheduled_load": busy_cycles / active if active else 0.0,
    }
    return program, diagnostics


def generate(spec: TrafficSpec
             ) -> Tuple[Dict[int, TGProgram], List[Dict]]:
    """Generate all per-core programs plus per-core diagnostics."""
    programs: Dict[int, TGProgram] = {}
    report: List[Dict] = []
    for core_id in range(spec.n_cores):
        program, diagnostics = _generate_core(spec, core_id)
        programs[core_id] = program
        report.append(diagnostics)
    return programs, report


def generate_programs(spec: TrafficSpec) -> Dict[int, TGProgram]:
    """Generate one :class:`TGProgram` per core from the spec."""
    return generate(spec)[0]


def synthetic_programs(spec: TrafficSpec
                       ) -> Tuple[Dict[int, TGProgram], List[Dict]]:
    """Generate the programs exactly as the simulation flow runs them.

    Generation plus the ``.bin`` assemble/disassemble round-trip — the
    TG executes the binary image, and the ``.tgp`` text of the
    round-tripped program is what snapshot recipes embed.  The sweep
    driver and its workers both build programs through this helper, so
    a warm-up snapshot taken by the driver byte-matches the recipe a
    worker derives independently (see
    :func:`repro.harness.checkpoint.ensure_recipe_compatible`).
    """
    from repro.core.assembler import assemble_binary, disassemble_binary
    programs, report = generate(spec)
    programs = {core: disassemble_binary(assemble_binary(program))
                for core, program in programs.items()}
    return programs, report


# ------------------------------------------------------------ execution

class SyntheticResult:
    """Outcome of one synthetic-traffic simulation.

    Mirrors enough of :class:`~repro.harness.experiments.TGFlowResult`'s
    surface (``benchmark``/``n_cores``/``interconnect``/``mode``/
    ``status``/``tg_*``) for the sweep renderers, plus the load-curve
    metrics: offered vs. scheduled vs. realised load, transaction
    latency statistics and delivered throughput.
    """

    def __init__(self, spec: TrafficSpec, interconnect: str):
        self.benchmark = "synthetic"
        self.spec = spec
        self.n_cores = spec.n_cores
        self.interconnect = interconnect
        self.mode = spec.mode
        self.pattern = spec.pattern
        self.offered_load = spec.load
        self.status = "ok"
        self.failure = None
        self.ref_cycles = 0
        self.ref_wall = 0.0
        self.ref_events = 0
        self.scheduled_load = 0.0
        self.realised_load = 0.0
        self.tg_cycles = 0
        self.tg_wall = 0.0
        self.tg_events = 0
        self.issued = 0
        self.words = 0
        self.latency_avg = 0.0
        self.latency_max = 0
        self.throughput_wpkc = 0.0
        # set on fast-forwarded runs: the quiescent cycle the warm-up
        # snapshot was captured at, and the fabric it ran on
        self.warmup_cycle: Optional[int] = None
        self.warmup_fabric: Optional[str] = None
        self.generator_report: List[Dict] = []
        self.tg_platform = None

    # reference-comparison columns are meaningless for synthetic
    # workloads (there is no ARM run to compare against) but the
    # renderers expect them on every row
    @property
    def error(self) -> float:
        return 0.0

    @property
    def gain(self) -> float:
        return 0.0

    @property
    def event_gain(self) -> float:
        return 0.0

    def summary(self) -> Dict[str, object]:
        """Picklable scalar view (sweep workers / result cache).

        The warm-up keys appear only on fast-forwarded runs, so
        cold-run summaries are byte-identical to what older versions
        produced.
        """
        data = {
            "benchmark": self.benchmark,
            "n_cores": self.n_cores,
            "interconnect": self.interconnect,
            "mode": self.mode.value,
            "pattern": self.pattern,
            "offered_load": self.offered_load,
            "scheduled_load": self.scheduled_load,
            "realised_load": self.realised_load,
            "tg_cycles": self.tg_cycles,
            "tg_wall": self.tg_wall,
            "tg_events": self.tg_events,
            "issued": self.issued,
            "words": self.words,
            "latency_avg": self.latency_avg,
            "latency_max": self.latency_max,
            "throughput_wpkc": self.throughput_wpkc,
        }
        if self.warmup_cycle is not None:
            data["warmup_cycle"] = self.warmup_cycle
            data["warmup_fabric"] = self.warmup_fabric
        return data

    def __repr__(self) -> str:
        return (f"<SyntheticResult {self.pattern} {self.n_cores}P "
                f"{self.interconnect} load={self.offered_load:g} "
                f"lat={self.latency_avg:.1f}>")


def synthetic_flow(spec: TrafficSpec, interconnect: str = "tlm",
                   config_overrides: Optional[Dict] = None,
                   backend: Optional[str] = None,
                   checkpoint_every: Optional[int] = None,
                   checkpoint_dir=None,
                   checkpoint_keep: Optional[int] = None,
                   warmup_cycles: Optional[int] = None,
                   warmup_fabric: str = "tlm",
                   warmup_payload: Optional[Dict] = None
                   ) -> SyntheticResult:
    """Generate, assemble and simulate one synthetic workload.

    The programs are pushed through the ``.bin`` assemble/disassemble
    cycle (the TG executes the binary image, mirroring the trace flow),
    then run on an all-TG platform on the requested fabric.  Latency
    statistics come from the per-TG OCP counters.  ``backend`` picks the
    kernel dispatch engine (results are bit-identical across backends).
    ``checkpoint_every``/``checkpoint_dir``/``checkpoint_keep`` arm
    crash-durable auto-checkpointing exactly as in
    :func:`~repro.harness.experiments.tg_flow`.

    ``warmup_cycles`` arms mixed-fidelity fast-forward: the workload's
    first quiescent cycle at or after that boundary is simulated on
    ``warmup_fabric`` (default: the cheap contention-free TLM model),
    snapshotted, and the run continues cycle-true on ``interconnect``
    from there — with fault injection arming at the restore point.
    ``warmup_payload`` supplies an already-captured warm-up snapshot
    (the warm-up-shared sweep path); it is verified against this
    workload's recipe before restoring, so a stale or foreign snapshot
    is a typed error, never a wrong result.  See docs/CHECKPOINT.md.
    """
    from repro.harness.experiments import build_tg_platform
    import time

    if backend is not None:
        config_overrides = dict(config_overrides or {})
        config_overrides["backend"] = backend
    warmup = warmup_cycles is not None or warmup_payload is not None
    if warmup and checkpoint_every is not None:
        raise ValueError("warm-up fast-forward and auto-checkpointing "
                         "are mutually exclusive")
    result = SyntheticResult(spec, interconnect)
    if warmup_payload is not None:
        # restore path: the platform is rebuilt from the snapshot's
        # byte-compared recipe, so the assemble round-trip is skipped —
        # ``.tgp`` text is canonical across it, making the generated
        # programs' recipe byte-identical to the round-tripped one
        programs, report = generate(spec)
    else:
        programs, report = synthetic_programs(spec)
    result.generator_report = report
    if warmup:
        from repro.harness.checkpoint import (
            fast_forward,
            platform_recipe,
            warmup_snapshot,
        )
        expected = platform_recipe(programs, spec.n_cores, interconnect,
                                   config_overrides)
        payload = warmup_payload
        if payload is None:
            payload = warmup_snapshot(programs, spec.n_cores,
                                      warmup_cycles, warmup_fabric,
                                      config_overrides)
        # the restore (but not the warm-up itself) counts into tg_wall:
        # shared warm-ups run once in the sweep driver, so per-point
        # wall clocks stay comparable between shared and cold execution
        start = time.perf_counter()
        platform = fast_forward(
            payload, interconnect=interconnect,
            config_overrides=config_overrides, expected_recipe=expected,
            programs=programs if warmup_payload is not None else None)
        platform.run()
        result.warmup_cycle = payload["cycle"]
        result.warmup_fabric = payload["platform"]["interconnect"]
    else:
        platform = build_tg_platform(programs, spec.n_cores, interconnect,
                                     config_overrides)
        start = time.perf_counter()
        if checkpoint_every is not None:
            from repro.harness.checkpoint import (
                DEFAULT_KEEP,
                CheckpointManager,
                checkpointed_run,
                platform_recipe,
            )
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires "
                                 "checkpoint_dir")
            recipe = platform_recipe(programs, spec.n_cores, interconnect,
                                     config_overrides)
            manager = CheckpointManager(
                checkpoint_dir,
                keep=checkpoint_keep if checkpoint_keep else DEFAULT_KEEP)
            checkpointed_run(platform, recipe, manager, checkpoint_every)
        else:
            platform.run()
    result.tg_wall = time.perf_counter() - start
    result.tg_platform = platform
    result.tg_events = platform.sim.events_fired
    result.tg_cycles = platform.cumulative_execution_time

    latency_total = 0
    realised = []
    for master, diagnostics in zip(platform.masters, report):
        result.issued += master.ocp_transactions
        result.words += master.ocp_beats
        latency_total += master.ocp_latency_cycles
        result.latency_max = max(result.latency_max,
                                 master.ocp_latency_max)
        # per-core issue-side activity: completion minus the cycles the
        # core spent *blocked beyond its own beats* is busy + idle time;
        # exact for reads (posted writes unblock before their beats)
        blocked = master.ocp_latency_cycles - master.ocp_beats
        denominator = master.completion_time - blocked
        if denominator > 0:
            realised.append(diagnostics["busy_cycles"] / denominator)
    result.latency_avg = latency_total / result.issued \
        if result.issued else 0.0
    result.realised_load = sum(realised) / len(realised) \
        if realised else 0.0
    scheduled = [d["scheduled_load"] for d in report]
    result.scheduled_load = sum(scheduled) / len(scheduled)
    makespan = max(t for t in platform.completion_times)
    result.throughput_wpkc = (result.words * 1000.0 /
                              (makespan * spec.n_cores)) if makespan else 0.0
    return result
