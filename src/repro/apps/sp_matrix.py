"""SP matrix: single-processor matrix multiplication (Table 2, first row).

C = A × B over ``n × n`` 32-bit matrices held in private (cached) memory,
followed by a checksum pass whose result is written to shared memory.  The
workload exercises cache refills (burst reads), write-through stores and a
long compute phase — the paper's "simplest environment" for validating
accuracy and speedup.
"""

from typing import List

from repro.apps.common import SP_RESULT_OFF, app_header
from repro.ocp.types import WORD_MASK

DEFAULT_N = 8


def matrix_a(n: int = DEFAULT_N) -> List[int]:
    """Deterministic input matrix A, row-major."""
    return [((i * 7 + j * 13 + 1) & 0x7FFF) for i in range(n) for j in range(n)]


def matrix_b(n: int = DEFAULT_N) -> List[int]:
    """Deterministic input matrix B, row-major."""
    return [((i * 5 + j * 11 + 2) & 0x7FFF) for i in range(n) for j in range(n)]


def expected_product(n: int = DEFAULT_N) -> List[int]:
    """Golden C = A × B (32-bit wrap-around), row-major."""
    a, b = matrix_a(n), matrix_b(n)
    out = []
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i * n + k] * b[k * n + j]) & WORD_MASK
            out.append(acc)
    return out


def expected_checksum(n: int = DEFAULT_N) -> int:
    """Golden checksum: 32-bit sum of all C elements."""
    total = 0
    for value in expected_product(n):
        total = (total + value) & WORD_MASK
    return total


def _words_directive(words: List[int]) -> str:
    return "\n".join(f"    .word 0x{w:08x}" for w in words)


def source(core_id: int = 0, n_cores: int = 1, n: int = DEFAULT_N) -> str:
    """Assembly for the (single) core.  ``core_id`` must be 0."""
    if core_id != 0:
        raise ValueError("sp_matrix is a single-processor benchmark")
    if n * 4 > 0xFFFF or n * n > 0xFFFF:
        raise ValueError(f"matrix size {n} too large for MOVI immediates")
    header = app_header(core_id, n_cores)
    return f"""\
{header}
.equ N {n}
start:
    LI r1, mat_a
    LI r2, mat_b
    LI r3, mat_c
    MOVI r4, 0          ; i
outer_i:
    MOVI r5, 0          ; j
outer_j:
    MOVI r8, N*4        ; row stride in bytes
    MUL r6, r4, r8
    ADD r6, r6, r1      ; aptr = &A[i][0]
    LSLI r7, r5, 2
    ADD r7, r7, r2      ; bptr = &B[0][j]
    MOVI r9, 0          ; acc
    MOVI r10, N         ; k counter
inner_k:
    LDR r11, [r6]
    LDR r12, [r7]
    MUL r11, r11, r12
    ADD r9, r9, r11
    ADDI r6, r6, 4
    ADDI r7, r7, N*4
    SUBI r10, r10, 1
    CMPI r10, 0
    BNE inner_k
    MUL r11, r4, r8     ; C[i][j] = acc
    ADD r11, r11, r3
    LSLI r12, r5, 2
    ADD r11, r11, r12
    STR r9, [r11]
    ADDI r5, r5, 1
    CMPI r5, N
    BNE outer_j
    ADDI r4, r4, 1
    CMPI r4, N
    BNE outer_i
    ; checksum over C
    LI r1, mat_c
    MOVI r9, 0
    MOVI r10, N*N
checksum:
    LDR r11, [r1]
    ADD r9, r9, r11
    ADDI r1, r1, 4
    SUBI r10, r10, 1
    CMPI r10, 0
    BNE checksum
    LI r2, SHARED+{SP_RESULT_OFF}
    STR r9, [r2]
    HALT
mat_a:
{_words_directive(matrix_a(n))}
mat_b:
{_words_directive(matrix_b(n))}
mat_c:
    .space N*N*4
"""
