"""Benchmark applications (armlet assembly).

The four workloads of the paper's evaluation (Section 6):

* :mod:`repro.apps.sp_matrix` — single-processor matrix manipulation;
* :mod:`repro.apps.cacheloop` — in-cache idle loops, minimal bus traffic;
* :mod:`repro.apps.mp_matrix` — multiprocessor matrix manipulation with
  barrier synchronisation and semaphore-protected reporting;
* :mod:`repro.apps.des` — pipelined DES encryption/decryption over shared-
  memory mailboxes.

Each module exposes ``source(core_id, n_cores, **params)`` returning the
per-core assembly text, plus Python golden models used by tests and the
experiment harness to verify functional correctness of the simulated runs.

All programs are written so that the addresses and data of their
communication events are independent of transaction interleaving (static
work partitioning, per-core result slots, constant synchronisation
payloads).  Polling counts still vary with the interconnect — that is the
reactive behaviour the TG must regenerate — but the translated TG programs
are identical across interconnects, which experiment E7 checks.
"""

from repro.apps import cacheloop, des, mp_matrix, sp_matrix
from repro.apps.common import app_header, barrier_wait, sem_acquire, sem_release

__all__ = [
    "app_header",
    "barrier_wait",
    "cacheloop",
    "des",
    "mp_matrix",
    "sem_acquire",
    "sem_release",
    "sp_matrix",
]
