"""TGMaster execution semantics: timing, polling reactivity, modes."""


from repro.core import (
    Cond,
    ReplayMode,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
)
from repro.core.isa import ADDRREG, DATAREG, RDREG, TEMPREG
from repro.platform import MparmPlatform, PlatformConfig, SEM_BASE, SHARED_BASE


def make_platform(n_masters=1, **kwargs):
    return MparmPlatform(PlatformConfig(n_masters=n_masters, **kwargs))


def tg_with(platform, instructions, pool=None, mode=ReplayMode.REACTIVE):
    program = TGProgram(core_id=platform.next_socket,
                        instructions=list(instructions),
                        pool=pool or [], mode=mode)
    tg = TGMaster(platform.sim, f"tg{platform.next_socket}", program)
    platform.add_master(tg)
    return tg


def I(op, **kwargs):  # noqa: E743 - terse helper for tests
    return TGInstruction(op, **kwargs)


class TestBasicExecution:
    def test_idle_then_halt(self):
        platform = make_platform()
        tg = tg_with(platform, [I(TGOp.IDLE, imm=25), I(TGOp.HALT)])
        platform.run()
        assert tg.finished
        assert tg.completion_time == 25

    def test_set_register_costs_one_cycle(self):
        platform = make_platform()
        tg = tg_with(platform, [
            I(TGOp.SET_REGISTER, a=5, imm=42),
            I(TGOp.SET_REGISTER, a=6, imm=43),
            I(TGOp.HALT),
        ])
        platform.run()
        assert tg.completion_time == 2
        assert tg.regs[5] == 42
        assert tg.regs[6] == 43

    def test_write_then_read_roundtrip(self):
        platform = make_platform()
        addr = SHARED_BASE + 0x40
        tg = tg_with(platform, [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=addr),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=0xBEEF),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.READ, a=ADDRREG),
            I(TGOp.HALT),
        ])
        platform.run()
        assert tg.regs[RDREG] == 0xBEEF
        assert platform.shared_mem.peek(addr) == 0xBEEF

    def test_burst_write_from_pool_and_burst_read(self):
        platform = make_platform()
        addr = SHARED_BASE + 0x100
        tg = tg_with(platform, [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=addr),
            I(TGOp.BURST_WRITE, a=ADDRREG, b=4, imm=0),
            I(TGOp.BURST_READ, a=ADDRREG, b=4),
            I(TGOp.HALT),
        ], pool=[10, 20, 30, 40])
        platform.run()
        assert platform.shared_mem.peek_block(addr, 4) == [10, 20, 30, 40]
        assert tg.regs[RDREG] == 40  # last beat

    def test_jump_loops(self):
        platform = make_platform()
        # count down r5 from 3 using If/Jump
        tg = tg_with(platform, [
            I(TGOp.SET_REGISTER, a=5, imm=3),
            I(TGOp.SET_REGISTER, a=TEMPREG, imm=0),
            I(TGOp.SET_REGISTER, a=6, imm=0),          # 2: loop head
            I(TGOp.IDLE, imm=2),
            I(TGOp.SET_REGISTER, a=5, imm=0),          # crude: one pass
            I(TGOp.IF, a=5, b=TEMPREG, cond=int(Cond.NE), imm=2),
            I(TGOp.HALT),
        ])
        platform.run()
        assert tg.finished

    def test_read_blocks_for_response(self):
        platform = make_platform()
        tg = tg_with(platform, [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.READ, a=ADDRREG),
            I(TGOp.HALT),
        ])
        platform.run()
        # setreg(1) + read round trip (> 2 cycles on AHB) -> well past 3
        assert tg.completion_time > 3

    def test_instructions_executed_counted(self):
        platform = make_platform()
        tg = tg_with(platform, [I(TGOp.IDLE, imm=1), I(TGOp.HALT)])
        platform.run()
        assert tg.instructions_executed == 2


class TestReactivePolling:
    def poll_program(self, sem_addr, idle_first=0):
        """TG that acquires a semaphore by polling, then halts."""
        return [
            I(TGOp.IDLE, imm=idle_first),
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=sem_addr),
            I(TGOp.SET_REGISTER, a=TEMPREG, imm=1),
            # loop: Read; If(rdreg != tempreg) -> loop
            I(TGOp.READ, a=ADDRREG),                       # index 3
            I(TGOp.IF, a=RDREG, b=TEMPREG, cond=int(Cond.NE), imm=3),
            I(TGOp.HALT),
        ]

    def test_single_tg_acquires_first_try(self):
        platform = make_platform()
        tg = tg_with(platform, self.poll_program(SEM_BASE))
        platform.run()
        assert tg.regs[RDREG] == 1
        assert platform.semaphores.failed_polls == 0

    def test_two_tgs_contend_reactively(self):
        """The loser polls again — transaction count adapts to contention."""
        platform = make_platform(2)
        release_addr = SEM_BASE
        winner = tg_with(platform, [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=release_addr),
            I(TGOp.SET_REGISTER, a=TEMPREG, imm=1),
            I(TGOp.READ, a=ADDRREG),                       # acquires
            I(TGOp.IDLE, imm=60),                          # hold it
            I(TGOp.SET_REGISTER, a=DATAREG, imm=1),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),           # release
            I(TGOp.HALT),
        ])
        loser = tg_with(platform, self.poll_program(SEM_BASE, idle_first=10))
        platform.run()
        assert loser.regs[RDREG] == 1
        assert platform.semaphores.acquisitions == 2
        assert platform.semaphores.failed_polls > 0
        assert loser.completion_time > winner.completion_time - 60

    def test_poll_count_differs_across_hold_times(self):
        """Longer critical section => more polls: reactiveness in action."""
        def run_with_hold(hold):
            platform = make_platform(2)
            tg_with(platform, [
                I(TGOp.SET_REGISTER, a=ADDRREG, imm=SEM_BASE),
                I(TGOp.SET_REGISTER, a=TEMPREG, imm=1),
                I(TGOp.READ, a=ADDRREG),
                I(TGOp.IDLE, imm=hold),
                I(TGOp.SET_REGISTER, a=DATAREG, imm=1),
                I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
                I(TGOp.HALT),
            ])
            tg_with(platform, self.poll_program(SEM_BASE, idle_first=5))
            platform.run()
            return platform.semaphores.failed_polls

        assert run_with_hold(200) > run_with_hold(40)


class TestCloningMode:
    def test_cloning_does_not_block_on_reads(self):
        """In CLONING mode the program's halt time ignores read latency
        except for queue drain."""
        instrs = [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.READ, a=ADDRREG),
            I(TGOp.READ, a=ADDRREG),
            I(TGOp.READ, a=ADDRREG),
            I(TGOp.HALT),
        ]
        clone_platform = make_platform()
        clone = tg_with(clone_platform, instrs, mode=ReplayMode.CLONING)
        clone_platform.run()
        react_platform = make_platform()
        react = tg_with(react_platform, instrs, mode=ReplayMode.REACTIVE)
        react_platform.run()
        # both end after the drain, but the cloning program itself raced
        # ahead; the completion times still include queue drain, so the
        # real observable difference is per-transaction issue spacing
        assert clone.finished and react.finished

    def test_cloning_write_data_snapshot(self):
        """Writes must carry the data value at program-execution time."""
        platform = make_platform()
        addr = SHARED_BASE + 0x10
        tg_with(platform, [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=addr),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=111),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=222),  # overwrites quickly
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=addr + 4),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.HALT),
        ], mode=ReplayMode.CLONING)
        platform.run()
        assert platform.shared_mem.peek(addr) == 111
        assert platform.shared_mem.peek(addr + 4) == 222


class TestInterchangeability:
    def test_tg_and_core_coexist(self):
        """A TG and an armlet core can share the same platform."""
        from repro.apps import cacheloop
        platform = make_platform(2)
        platform.add_core(cacheloop.source(0, 2, iters=30))
        tg_with(platform, [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=7),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.HALT),
        ])
        platform.run()
        assert platform.all_finished
        assert platform.shared_mem.peek(SHARED_BASE) == 7
