"""Stochastic TG baseline tests: fitting, determinism, inferiority."""

import pytest
from hypothesis import given, strategies as st

from repro.apps import mp_matrix
from repro.core import SeededRandom, StochasticTGMaster, TrafficProfile
from repro.harness import reference_run
from repro.ocp.types import OCPCommand
from repro.platform import MparmPlatform, PlatformConfig
from repro.trace import group_events


class TestSeededRandom:
    def test_deterministic_by_seed(self):
        a = SeededRandom(42)
        b = SeededRandom(42)
        assert [a.randint(0, 100) for _ in range(20)] \
            == [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SeededRandom(1)
        b = SeededRandom(2)
        assert [a.randint(0, 10**6) for _ in range(5)] \
            != [b.randint(0, 10**6) for _ in range(5)]

    @given(st.integers(0, 2**32), st.integers(0, 50),
           st.integers(51, 100))
    def test_randint_in_range(self, seed, lo, hi):
        rng = SeededRandom(seed)
        for _ in range(10):
            assert lo <= rng.randint(lo, hi) <= hi

    @given(st.integers(0, 2**32))
    def test_uniform_in_unit_interval(self, seed):
        rng = SeededRandom(seed)
        for _ in range(10):
            assert 0.0 <= rng.uniform() < 1.0

    def test_geometric_gap_mean_roughly_matches(self):
        rng = SeededRandom(7)
        samples = [rng.geometric_gap(20.0) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 15 < mean < 25

    def test_choice_respects_weights(self):
        rng = SeededRandom(3)
        picks = [rng.choice([("a", 0.95), ("b", 0.05)])
                 for _ in range(200)]
        assert picks.count("a") > picks.count("b")


@pytest.fixture(scope="module")
def reference_trace():
    _, collectors, _ = reference_run(mp_matrix, 2, app_params={"n": 4})
    return group_events(collectors[0].events)


class TestProfileFitting:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrafficProfile.fit([])

    def test_fit_fields(self, reference_trace):
        profile = TrafficProfile.fit(reference_trace)
        assert profile.transactions == len(reference_trace)
        assert abs(sum(profile.mix.values()) - 1.0) < 1e-9
        assert profile.mean_gap >= 0
        assert OCPCommand.READ in profile.address_pools

    def test_pools_only_real_addresses(self, reference_trace):
        profile = TrafficProfile.fit(reference_trace)
        traced = {txn.addr for txn in reference_trace}
        for pool in profile.address_pools.values():
            assert set(pool) <= traced


class TestStochasticMaster:
    def run_stochastic(self, profile, seed):
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        master = StochasticTGMaster(platform.sim, "stg", profile,
                                    seed=seed)
        platform.add_master(master)
        platform.run()
        return platform, master

    def test_generates_profile_count(self, reference_trace):
        profile = TrafficProfile.fit(reference_trace)
        _, master = self.run_stochastic(profile, seed=5)
        assert master.finished
        assert master.transactions_generated == profile.transactions

    def test_seed_reproducible(self, reference_trace):
        profile = TrafficProfile.fit(reference_trace)
        _, a = self.run_stochastic(profile, seed=9)
        _, b = self.run_stochastic(profile, seed=9)
        assert a.completion_time == b.completion_time

    def test_seeds_vary_timing(self, reference_trace):
        profile = TrafficProfile.fit(reference_trace)
        times = {self.run_stochastic(profile, seed=s)[1].completion_time
                 for s in range(4)}
        assert len(times) > 1
