"""Multitask TG tests: timeslice preemption, sleep/wake, consolidation."""

import pytest

from repro.core import (
    MultitaskTGMaster,
    ReplayMode,
    TGError,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
)
from repro.core.isa import ADDRREG, DATAREG
from repro.platform import MparmPlatform, PlatformConfig, SHARED_BASE


def I(op, **kwargs):  # noqa: E743
    return TGInstruction(op, **kwargs)


def writer_task(slot, values, gap=5):
    """Writes ``values`` to SHARED + slot*0x100 + i*4, pausing between."""
    instrs = []
    for index, value in enumerate(values):
        instrs.append(I(TGOp.SET_REGISTER, a=ADDRREG,
                        imm=SHARED_BASE + slot * 0x100 + index * 4))
        instrs.append(I(TGOp.SET_REGISTER, a=DATAREG, imm=value))
        instrs.append(I(TGOp.WRITE, a=ADDRREG, b=DATAREG))
        instrs.append(I(TGOp.IDLE, imm=gap))
    instrs.append(I(TGOp.HALT))
    return TGProgram(core_id=0, instructions=instrs)


def idle_task(idle=200):
    return TGProgram(core_id=0, instructions=[
        I(TGOp.IDLE, imm=idle), I(TGOp.HALT)])


def build(programs, idle_fill=True, **kwargs):
    platform = MparmPlatform(PlatformConfig(n_masters=2))
    multitask = MultitaskTGMaster(platform.sim, "mt0", programs, **kwargs)
    platform.add_master(multitask)
    filler = TGMaster(platform.sim, "tg1", TGProgram(
        core_id=1, instructions=[I(TGOp.HALT)]))
    platform.add_master(filler)
    return platform, multitask


class TestValidation:
    def test_needs_programs(self):
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        with pytest.raises(TGError):
            MultitaskTGMaster(platform.sim, "mt", [])

    def test_unknown_scheduler(self):
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        with pytest.raises(TGError):
            MultitaskTGMaster(platform.sim, "mt", [idle_task()],
                              scheduler="lottery")

    def test_cloning_rejected(self):
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        program = idle_task()
        program.mode = ReplayMode.CLONING
        with pytest.raises(TGError):
            MultitaskTGMaster(platform.sim, "mt", [program])

    def test_bad_quantum(self):
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        with pytest.raises(TGError):
            MultitaskTGMaster(platform.sim, "mt", [idle_task()],
                              timeslice=0)


class TestTimeslice:
    def test_all_tasks_complete(self):
        platform, mt = build([writer_task(0, [1, 2, 3]),
                              writer_task(1, [4, 5, 6])])
        platform.run()
        assert mt.finished
        assert all(t is not None for t in mt.task_completion_times)
        for slot, base_vals in ((0, [1, 2, 3]), (1, [4, 5, 6])):
            got = platform.shared_mem.peek_block(
                SHARED_BASE + slot * 0x100, 3)
            assert got == base_vals

    def test_preemption_interleaves_tasks(self):
        """With a small quantum, long idles are sliced and tasks overlap."""
        platform, mt = build([idle_task(300), idle_task(300)],
                             timeslice=50, context_switch_cycles=2)
        platform.run()
        assert mt.context_switches >= 4
        # two 300-cycle idles time-share one processor: total is at least
        # the serial 600 (one core!) but switching happened throughout
        assert mt.completion_time >= 600

    def test_large_quantum_runs_to_completion(self):
        platform, mt = build([writer_task(0, [1]), writer_task(1, [2])],
                             timeslice=10_000)
        platform.run()
        assert mt.context_switches == 1  # one hand-over only

    def test_context_switch_cost_counts(self):
        fast_platform, fast = build([idle_task(100), idle_task(100)],
                                    timeslice=20, context_switch_cycles=0)
        fast_platform.run()
        slow_platform, slow = build([idle_task(100), idle_task(100)],
                                    timeslice=20, context_switch_cycles=10)
        slow_platform.run()
        assert slow.completion_time > fast.completion_time

    def test_deterministic(self):
        results = []
        for _ in range(2):
            platform, mt = build([writer_task(0, [7, 8]), idle_task(120)],
                                 timeslice=30)
            platform.run()
            results.append((mt.completion_time, mt.context_switches))
        assert results[0] == results[1]


class TestSleepScheduler:
    def test_sleep_overlaps_idle_with_work(self):
        """Run-to-block hides one task's idle behind the other's work."""
        tasks = [writer_task(0, list(range(8)), gap=40),
                 writer_task(1, list(range(8)), gap=40)]
        serial_platform, serial = build(
            [writer_task(0, list(range(8)), gap=40)])
        serial_platform.run()
        single = serial.completion_time

        platform, mt = build(tasks, scheduler="sleep", sleep_threshold=10,
                             context_switch_cycles=2)
        platform.run()
        # two tasks on one socket finish in far less than 2x a single
        # task, because each sleeps through the other's activity
        assert mt.completion_time < 2 * single * 0.8

    def test_sleeping_task_wakes_at_recorded_time(self):
        platform, mt = build([idle_task(500)], scheduler="sleep",
                             sleep_threshold=10)
        platform.run()
        assert mt.completion_time >= 500

    def test_short_idles_do_not_sleep(self):
        platform, mt = build([writer_task(0, [1, 2], gap=3)],
                             scheduler="sleep", sleep_threshold=100)
        platform.run()
        assert mt.context_switches == 0


class TestConsolidationOfSynchronisedTasks:
    """Consolidating tasks that synchronise *with each other* is only
    safe under preemptive scheduling: a polling loop never executes a
    long Idle, so under run-to-block ("sleep") scheduling the polling
    task monopolises the processor and the task that would satisfy the
    poll never runs — a classic consolidation livelock."""

    def des_programs(self):
        from repro.apps import des
        from repro.harness import reference_run, translate_traces
        _, collectors, _ = reference_run(des, 2, app_params={"blocks": 2})
        return translate_traces(collectors, 2)

    def test_timeslice_preemption_resolves_cross_task_polling(self):
        programs = self.des_programs()
        platform = MparmPlatform(PlatformConfig(n_masters=2))
        multitask = MultitaskTGMaster(
            platform.sim, "pipeline_on_one_core",
            [programs[0], programs[1]],
            scheduler="timeslice", timeslice=64, context_switch_cycles=4)
        platform.add_master(multitask)
        platform.add_master(TGMaster(platform.sim, "filler", TGProgram(
            core_id=1, instructions=[I(TGOp.HALT)])))
        platform.run(until=2_000_000)
        assert multitask.finished
        # the consumer stage polls the producer's mailbox; switches
        # happened mid-poll to let the producer fill it
        assert multitask.context_switches > 2

    def test_sleep_scheduling_livelocks_on_cross_task_polling(self):
        """Documented limitation: poll loops never sleep, so run-to-block
        scheduling cannot consolidate mutually-synchronised tasks."""
        programs = self.des_programs()
        platform = MparmPlatform(PlatformConfig(n_masters=2))
        multitask = MultitaskTGMaster(
            platform.sim, "pipeline_on_one_core",
            [programs[1], programs[0]],  # consumer first: it polls forever
            scheduler="sleep", sleep_threshold=16)
        platform.add_master(multitask)
        platform.add_master(TGMaster(platform.sim, "filler", TGProgram(
            core_id=1, instructions=[I(TGOp.HALT)])))
        platform.run(until=100_000)
        assert not multitask.finished


class TestConsolidation:
    def test_two_traced_cores_on_one_socket(self):
        """The future-work scenario: translate two cores' traces, run
        both programs as tasks of a single TG."""
        from repro.apps import cacheloop
        from repro.harness import reference_run, translate_traces
        _, collectors, _ = reference_run(cacheloop, 2,
                                         app_params={"iters": 100})
        programs = translate_traces(collectors, 2)
        platform = MparmPlatform(PlatformConfig(n_masters=2))
        multitask = MultitaskTGMaster(
            platform.sim, "consolidated", [programs[0], programs[1]],
            scheduler="sleep", sleep_threshold=32)
        platform.add_master(multitask)
        platform.add_master(TGMaster(platform.sim, "tg1", TGProgram(
            core_id=1, instructions=[I(TGOp.HALT)])))
        platform.run()
        assert multitask.finished
        assert all(t is not None
                   for t in multitask.task_completion_times)
