"""TGProgram.stats() footprint summary and the tgdump --stats CLI."""

import json

import pytest

from repro.cli import tgasm_main, tgdump_main
from repro.core import TGInstruction, TGOp, TGProgram
from repro.core.assembler import assemble_binary
from repro.core.isa import ADDRREG


def I(op, **kwargs):  # noqa: E743
    return TGInstruction(op, **kwargs)


def sample():
    program = TGProgram(core_id=1)
    program.append(I(TGOp.SET_REGISTER, a=ADDRREG, imm=0x100))
    program.append(I(TGOp.IDLE, imm=5))
    program.append(I(TGOp.READ, a=ADDRREG))
    program.append(I(TGOp.READ, a=ADDRREG))
    program.add_pool([1, 2, 3])
    program.append(I(TGOp.BURST_WRITE, a=ADDRREG, b=3, imm=0))
    program.append(I(TGOp.HALT))
    return program


class TestStats:
    def test_histogram(self):
        stats = sample().stats()
        assert stats["histogram"] == {
            "BURST_WRITE": 1, "HALT": 1, "IDLE": 1, "READ": 2,
            "SET_REGISTER": 1}

    def test_image_size_matches_binary(self):
        program = sample()
        stats = program.stats()
        assert stats["image_bytes"] == len(assemble_binary(program))
        assert stats["image_words"] * 4 == stats["image_bytes"]

    def test_counts(self):
        stats = sample().stats()
        assert stats["instructions"] == 6
        assert stats["pool_words"] == 3
        assert stats["mode"] == "reactive"


class TestTgdumpStats:
    def test_cli_stats_json(self, tmp_path, capsys):
        program = sample()
        tgp = tmp_path / "p.tgp"
        image = tmp_path / "p.bin"
        tgp.write_text(program.to_tgp())
        tgasm_main([str(tgp), "-o", str(image)])
        capsys.readouterr()
        assert tgdump_main([str(image), "--stats"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["instructions"] == 6
        assert data["image_bytes"] == len(assemble_binary(program))


class TestMultitaskOooRejection:
    def test_multitask_rejects_ooo_ops_at_runtime(self):
        from repro.core import MultitaskTGMaster, TGError
        from repro.platform import MparmPlatform, PlatformConfig
        program = TGProgram(core_id=0, instructions=[
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=0x1900_0000),
            I(TGOp.READ_NB, a=ADDRREG),
            I(TGOp.HALT),
        ])
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        multitask = MultitaskTGMaster(platform.sim, "mt", [program])
        platform.add_master(multitask)
        with pytest.raises(TGError):
            platform.run()
