"""TGProgram container, .tgp text round-trip, .bin round-trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Cond,
    ReplayMode,
    TGError,
    TGInstruction,
    TGOp,
    TGProgram,
    assemble_binary,
    disassemble_binary,
    parse_tgp,
)
from repro.core.isa import ADDRREG, DATAREG, TEMPREG


def sample_program():
    program = TGProgram(core_id=3, thread_id=1)
    program.append(TGInstruction(TGOp.IDLE, imm=11))
    program.append(TGInstruction(TGOp.SET_REGISTER, a=ADDRREG, imm=0x104))
    program.append(TGInstruction(TGOp.READ, a=ADDRREG))
    program.append(TGInstruction(TGOp.SET_REGISTER, a=ADDRREG, imm=0x20))
    program.append(TGInstruction(TGOp.SET_REGISTER, a=DATAREG, imm=0x111))
    program.append(TGInstruction(TGOp.WRITE, a=ADDRREG, b=DATAREG))
    program.append(TGInstruction(TGOp.SET_REGISTER, a=TEMPREG, imm=1))
    loop = program.label_next("Semchk_1")
    program.append(TGInstruction(TGOp.READ, a=ADDRREG))
    program.append(TGInstruction(TGOp.IDLE, imm=3))
    program.append(TGInstruction(TGOp.IF, a=0, b=TEMPREG,
                                 cond=int(Cond.NE), imm=loop))
    pool_off = program.add_pool([1, 2, 3, 4])
    program.append(TGInstruction(TGOp.BURST_WRITE, a=ADDRREG, b=4,
                                 imm=pool_off))
    program.append(TGInstruction(TGOp.BURST_READ, a=ADDRREG, b=4))
    program.append(TGInstruction(TGOp.HALT))
    return program


class TestProgramContainer:
    def test_append_returns_index(self):
        program = TGProgram()
        assert program.append(TGInstruction(TGOp.HALT)) == 0

    def test_validate_empty_rejected(self):
        with pytest.raises(TGError):
            TGProgram().validate()

    def test_validate_requires_halt(self):
        program = TGProgram()
        program.append(TGInstruction(TGOp.IDLE, imm=1))
        with pytest.raises(TGError):
            program.validate()

    def test_valid_program_passes(self):
        sample_program().validate()

    def test_equality_semantics(self):
        assert sample_program() == sample_program()
        other = sample_program()
        other.instructions[0] = TGInstruction(TGOp.IDLE, imm=12)
        assert other != sample_program()

    def test_equality_ignores_labels(self):
        a = sample_program()
        b = sample_program()
        b.labels = {}
        assert a == b

    def test_mode_in_equality(self):
        a = sample_program()
        b = sample_program()
        b.mode = ReplayMode.CLONING
        assert a != b

    def test_add_pool_offsets(self):
        program = TGProgram()
        assert program.add_pool([1, 2]) == 0
        assert program.add_pool([3]) == 2
        assert program.pool == [1, 2, 3]


class TestTgpText:
    def test_roundtrip(self):
        program = sample_program()
        text = program.to_tgp()
        parsed = parse_tgp(text)
        assert parsed == program

    def test_text_contains_paper_style_lines(self):
        text = sample_program().to_tgp()
        assert "MASTER[3,1]" in text
        assert "REGISTER rdreg 0" in text
        assert "Semchk_1:" in text
        assert "If(rdreg != tempreg) Semchk_1" in text
        assert "BEGIN" in text and "END" in text

    def test_emitted_text_is_stable(self):
        program = sample_program()
        assert program.to_tgp() == parse_tgp(program.to_tgp()).to_tgp()

    def test_parse_bad_instruction(self):
        with pytest.raises(TGError):
            parse_tgp("MASTER[0,0]\nBEGIN\n    Frobnicate(r1)\nEND\n")

    def test_parse_undefined_label(self):
        with pytest.raises(TGError):
            parse_tgp("MASTER[0,0]\nBEGIN\n    Jump(nowhere)\n    Halt\nEND\n")

    def test_parse_duplicate_label(self):
        text = ("MASTER[0,0]\nBEGIN\nx:\n    Idle(1)\nx:\n    Halt\nEND\n")
        with pytest.raises(TGError):
            parse_tgp(text)

    def test_mode_header_roundtrip(self):
        program = sample_program()
        program.mode = ReplayMode.TIMESHIFTING
        assert parse_tgp(program.to_tgp()).mode == ReplayMode.TIMESHIFTING


class TestBinary:
    def test_roundtrip(self):
        program = sample_program()
        image = assemble_binary(program)
        assert disassemble_binary(image) == program

    def test_magic_checked(self):
        image = bytearray(assemble_binary(sample_program()))
        image[0] ^= 0xFF
        with pytest.raises(TGError):
            disassemble_binary(bytes(image))

    def test_truncated_rejected(self):
        image = assemble_binary(sample_program())
        with pytest.raises(TGError):
            disassemble_binary(image[:-4])

    def test_size_matches_header(self):
        program = sample_program()
        image = assemble_binary(program)
        expected_words = 5 + 2 * len(program.instructions) + len(program.pool)
        assert len(image) == expected_words * 4

    def test_empty_image_rejected(self):
        with pytest.raises(TGError):
            disassemble_binary(b"")


def _program_strategy():
    """Random valid programs exercising the full round-trip chain."""
    body = st.lists(st.one_of(
        st.builds(lambda i: TGInstruction(TGOp.IDLE, imm=i),
                  st.integers(0, 10_000)),
        st.builds(lambda r, v: TGInstruction(TGOp.SET_REGISTER, a=r, imm=v),
                  st.integers(0, 15), st.integers(0, 0xFFFF_FFFF)),
        st.builds(lambda r: TGInstruction(TGOp.READ, a=r),
                  st.integers(0, 15)),
        st.builds(lambda a, d: TGInstruction(TGOp.WRITE, a=a, b=d),
                  st.integers(0, 15), st.integers(0, 15)),
    ), min_size=0, max_size=30)

    def finish(instrs):
        program = TGProgram(core_id=1)
        for instr in instrs:
            program.append(instr)
        program.append(TGInstruction(TGOp.HALT))
        return program

    return body.map(finish)


class TestRoundTripProperties:
    @settings(max_examples=50)
    @given(_program_strategy())
    def test_text_binary_text(self, program):
        via_text = parse_tgp(program.to_tgp())
        via_binary = disassemble_binary(assemble_binary(program))
        assert via_text == program
        assert via_binary == program
