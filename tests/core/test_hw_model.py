"""Behavioural-vs-microarchitectural TG equivalence (co-simulation).

``TGMaster`` is the specification; ``TGHardwareModel`` executes the raw
``.bin`` image.  Both run the same program on identical platforms and
must produce identical OCP event streams and completion times.
"""

import pytest

from repro.apps import des, mp_matrix
from repro.core import (
    ReplayMode,
    TGError,
    TGHardwareModel,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
)
from repro.core.assembler import assemble_binary
from repro.core.isa import ADDRREG, DATAREG
from repro.harness import reference_run, translate_traces
from repro.ocp import RecordingMonitor
from repro.platform import MparmPlatform, PlatformConfig, SHARED_BASE


def I(op, **kwargs):  # noqa: E743
    return TGInstruction(op, **kwargs)


def run_with(master_cls_or_factory, program):
    platform = MparmPlatform(PlatformConfig(n_masters=1))
    if master_cls_or_factory is TGMaster:
        master = TGMaster(platform.sim, "dut", program)
    else:
        master = TGHardwareModel(platform.sim, "dut",
                                 assemble_binary(program))
    monitor = RecordingMonitor()
    master.port.attach_monitor(monitor)
    platform.add_master(master)
    platform.run()
    return master, monitor


def event_signature(monitor):
    out = []
    for event in monitor.events:
        kind, time, request = event[0], event[1], event[2]
        out.append((kind, time, request.cmd, request.addr,
                    request.burst_len))
    return out


def assert_equivalent(program):
    behavioural, b_monitor = run_with(TGMaster, program)
    hardware, h_monitor = run_with(TGHardwareModel, program)
    assert event_signature(b_monitor) == event_signature(h_monitor)
    assert behavioural.completion_time == hardware.completion_time
    assert behavioural.instructions_executed == hardware.instructions_executed


class TestImageValidation:
    def test_bad_magic(self):
        image = bytearray(assemble_binary(TGProgram(
            instructions=[I(TGOp.HALT)])))
        image[3] ^= 0xFF
        with pytest.raises(TGError):
            TGHardwareModel(MparmPlatform(PlatformConfig(1)).sim, "x",
                            bytes(image))

    def test_truncated(self):
        with pytest.raises(TGError):
            TGHardwareModel(MparmPlatform(PlatformConfig(1)).sim, "x",
                            b"\x00" * 8)

    def test_cloning_rejected(self):
        program = TGProgram(instructions=[I(TGOp.HALT)],
                            mode=ReplayMode.CLONING)
        with pytest.raises(TGError):
            TGHardwareModel(MparmPlatform(PlatformConfig(1)).sim, "x",
                            assemble_binary(program))

    def test_header_fields_parsed(self):
        program = TGProgram(core_id=5, thread_id=2,
                            instructions=[I(TGOp.HALT)])
        model = TGHardwareModel(MparmPlatform(PlatformConfig(1)).sim, "x",
                                assemble_binary(program))
        assert model.core_id == 5
        assert model.n_instructions == 1


class TestEquivalenceSynthetic:
    def test_simple_traffic(self):
        program = TGProgram(instructions=[
            I(TGOp.IDLE, imm=7),
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=0xAB),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.IDLE, imm=3),
            I(TGOp.READ, a=ADDRREG),
            I(TGOp.HALT),
        ])
        assert_equivalent(program)

    def test_bursts_from_pool(self):
        program = TGProgram(instructions=[
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE + 0x40),
            I(TGOp.BURST_WRITE, a=ADDRREG, b=4, imm=0),
            I(TGOp.BURST_READ, a=ADDRREG, b=4),
            I(TGOp.HALT),
        ], pool=[5, 6, 7, 8])
        assert_equivalent(program)

    def test_loops(self):
        program = TGProgram(instructions=[
            I(TGOp.SET_REGISTER, a=5, imm=0),
            I(TGOp.SET_REGISTER, a=6, imm=0),
            I(TGOp.IDLE, imm=4),                       # 2: loop body
            I(TGOp.IF, a=5, b=6, cond=1, imm=2),       # never taken (5==6)
            I(TGOp.HALT),
        ])
        assert_equivalent(program)

    def test_ooo_reads(self):
        program = TGProgram(instructions=[
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.READ_NB, a=ADDRREG),
            I(TGOp.READ_NB, a=ADDRREG),
            I(TGOp.FENCE),
            I(TGOp.HALT),
        ])
        assert_equivalent(program)


class TestEquivalenceTranslated:
    @pytest.mark.parametrize("app,params", [
        (mp_matrix, {"n": 4}),
        (des, {"blocks": 2}),
    ])
    def test_translated_system_equivalence(self, app, params):
        """Whole TG systems (all sockets) behave identically whether built
        from behavioural or microarchitectural TGs."""
        _, collectors, _ = reference_run(app, 2, app_params=params)
        programs = translate_traces(collectors, 2)

        def run_system(use_hardware):
            platform = MparmPlatform(PlatformConfig(n_masters=2))
            monitors = []
            for master_id in range(2):
                if use_hardware:
                    master = TGHardwareModel(
                        platform.sim, f"hw{master_id}",
                        assemble_binary(programs[master_id]))
                else:
                    master = TGMaster(platform.sim, f"tg{master_id}",
                                      programs[master_id])
                monitor = RecordingMonitor()
                master.port.attach_monitor(monitor)
                platform.add_master(master)
                monitors.append(monitor)
            platform.run()
            return platform, monitors

        b_platform, b_monitors = run_system(use_hardware=False)
        h_platform, h_monitors = run_system(use_hardware=True)
        for b_monitor, h_monitor in zip(b_monitors, h_monitors):
            assert event_signature(b_monitor) == event_signature(h_monitor)
        assert (b_platform.cumulative_execution_time
                == h_platform.cumulative_execution_time)
