"""Priority scheduling policy for the multitask TG."""

import pytest

from repro.core import (
    MultitaskTGMaster,
    TGError,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
)
from repro.core.isa import ADDRREG, DATAREG
from repro.platform import MparmPlatform, PlatformConfig, SHARED_BASE


def I(op, **kwargs):  # noqa: E743
    return TGInstruction(op, **kwargs)


def writer_task(slot, count, gap):
    instrs = []
    for index in range(count):
        instrs.append(I(TGOp.SET_REGISTER, a=ADDRREG,
                        imm=SHARED_BASE + slot * 0x100 + index * 4))
        instrs.append(I(TGOp.SET_REGISTER, a=DATAREG, imm=index + 1))
        instrs.append(I(TGOp.WRITE, a=ADDRREG, b=DATAREG))
        if gap:
            instrs.append(I(TGOp.IDLE, imm=gap))
    instrs.append(I(TGOp.HALT))
    return TGProgram(core_id=0, instructions=instrs)


def build(programs, priorities, **kwargs):
    platform = MparmPlatform(PlatformConfig(n_masters=2))
    multitask = MultitaskTGMaster(platform.sim, "mt0", programs,
                                  scheduler="priority",
                                  priorities=priorities, **kwargs)
    platform.add_master(multitask)
    platform.add_master(TGMaster(platform.sim, "filler", TGProgram(
        core_id=1, instructions=[I(TGOp.HALT)])))
    platform.run()
    return multitask


class TestPriorityPolicy:
    def test_priorities_length_checked(self):
        platform = MparmPlatform(PlatformConfig(n_masters=1))
        with pytest.raises(TGError):
            MultitaskTGMaster(platform.sim, "mt",
                              [writer_task(0, 1, 0)],
                              scheduler="priority", priorities=[1, 2])

    def test_high_priority_finishes_first(self):
        """With no sleeps, the high-priority task runs to completion
        before the low-priority one starts."""
        multitask = build(
            [writer_task(0, 5, gap=0), writer_task(1, 5, gap=0)],
            priorities=[0, 10], context_switch_cycles=0)
        times = multitask.task_completion_times
        assert times[1] < times[0]

    def test_equal_priorities_tie_break_by_id(self):
        multitask = build(
            [writer_task(0, 3, gap=0), writer_task(1, 3, gap=0)],
            priorities=[5, 5], context_switch_cycles=0)
        times = multitask.task_completion_times
        assert times[0] < times[1]

    def test_low_priority_runs_while_high_sleeps(self):
        """A long Idle in the high-priority task is a sleep; the low
        task fills the gap instead of the processor idling."""
        high = TGProgram(core_id=0, instructions=[
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=1),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.IDLE, imm=400),           # sleeps
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.HALT),
        ])
        low = writer_task(1, 10, gap=2)
        multitask = build([high, low], priorities=[10, 0],
                          sleep_threshold=50, context_switch_cycles=1)
        times = multitask.task_completion_times
        # low finished inside high's sleep window
        assert times[1] < times[0]
        assert times[0] >= 400

    def test_wakeup_preempts_low_priority(self):
        """When the high task wakes, the low task is preempted promptly."""
        high = TGProgram(core_id=0, instructions=[
            I(TGOp.IDLE, imm=100),           # sleep first
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.SET_REGISTER, a=DATAREG, imm=7),
            I(TGOp.WRITE, a=ADDRREG, b=DATAREG),
            I(TGOp.HALT),
        ])
        low = TGProgram(core_id=0, instructions=(
            [I(TGOp.SET_REGISTER, a=5, imm=0)] * 600 + [I(TGOp.HALT)]))
        multitask = build([high, low], priorities=[10, 0],
                          sleep_threshold=50, context_switch_cycles=1)
        times = multitask.task_completion_times
        # high wakes at ~100 and completes well before low's 600 setregs
        assert times[0] < times[1]
        assert times[0] < 200

    def test_all_tasks_complete(self):
        multitask = build(
            [writer_task(0, 4, gap=30), writer_task(1, 4, gap=30)],
            priorities=[1, 2], sleep_threshold=10)
        assert multitask.finished
        assert all(t is not None for t in multitask.task_completion_times)
