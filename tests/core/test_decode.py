"""The batched program decode feeding TGMaster._run_fast.

``decode_program`` lowers a TG program once into parallel plain-int
columns — via a vectorised numpy pass over the assembled binary when
available, via a scalar Python loop otherwise.  The two lowerings must
be *identical* (same columns, same bound condition callables) because
the fast interpreter's behaviour may never depend on which one ran.
"""

import pytest
from hypothesis import given, strategies as st

import repro.core.decode
from repro.core.decode import (
    COND_FUNCS,
    decode_program,
    _lower_numpy,
    _lower_python,
)
from repro.core.isa import Cond, TGInstruction, TGOp
from repro.core.program import TGProgram

needs_numpy = pytest.mark.skipif(
    repro.core.decode._np is None,
    reason="parity needs the numpy lowering (no-numpy CI leg runs "
           "the scalar path everywhere else)")


def full_coverage_program() -> TGProgram:
    """One program touching every field-extraction path."""
    program = TGProgram(core_id=1, thread_id=0)
    program.add_pool([0xDEADBEEF, 0x12345678, 7, 9])
    program.append(TGInstruction(TGOp.SET_REGISTER, a=2, imm=0x8000))
    program.append(TGInstruction(TGOp.SET_REGISTER, a=3, imm=0xCAFE))
    program.append(TGInstruction(TGOp.READ, a=2))
    program.append(TGInstruction(TGOp.WRITE, a=2, b=3))
    program.append(TGInstruction(TGOp.BURST_READ, a=2, b=4))
    program.append(TGInstruction(TGOp.BURST_WRITE, a=2, b=4, imm=0))
    program.append(TGInstruction(TGOp.IDLE, imm=123))
    program.append(TGInstruction(TGOp.IF, a=2, b=3, cond=int(Cond.NE),
                                 imm=0))
    program.append(TGInstruction(TGOp.JUMP, imm=9))
    program.append(TGInstruction(TGOp.HALT))
    return program


class TestLoweringParity:
    @needs_numpy
    def test_numpy_and_python_lowerings_agree(self):
        program = full_coverage_program()
        assert _lower_numpy(program) == _lower_python(program)

    def test_columns_match_source_fields(self):
        program = full_coverage_program()
        decoded = decode_program(program)
        assert len(decoded) == len(program.instructions)
        assert decoded.ops == [int(i.op) for i in program.instructions]
        assert decoded.a == [i.a for i in program.instructions]
        assert decoded.b == [i.b for i in program.instructions]
        assert decoded.imm == [i.imm for i in program.instructions]
        assert decoded.pool == list(program.pool)

    def test_cond_column_binds_callables_on_if_rows_only(self):
        decoded = decode_program(full_coverage_program())
        if_index = 7
        assert decoded.conds[if_index] is COND_FUNCS[int(Cond.NE)]
        for index, cond in enumerate(decoded.conds):
            if index != if_index:
                assert cond is None

    @given(st.lists(
        st.one_of(
            st.builds(TGInstruction, st.just(TGOp.IDLE), a=st.just(0),
                      b=st.just(0), cond=st.just(0),
                      imm=st.integers(0, 0xFFFFFFFF)),
            st.builds(TGInstruction, st.just(TGOp.SET_REGISTER),
                      a=st.integers(0, 15), b=st.just(0), cond=st.just(0),
                      imm=st.integers(0, 0xFFFFFFFF)),
            st.builds(TGInstruction, st.just(TGOp.READ),
                      a=st.integers(0, 15), b=st.just(0), cond=st.just(0),
                      imm=st.just(0)),
        ),
        max_size=40))
    @needs_numpy
    def test_lowerings_agree_on_random_programs(self, body):
        program = TGProgram(instructions=body
                            + [TGInstruction(TGOp.HALT)])
        assert _lower_numpy(program) == _lower_python(program)


class TestFallbacks:
    def test_non_encodable_program_falls_back_to_python(self):
        """An Idle beyond 32 bits cannot be assembled into a binary
        image, but runs fine in memory — decode_program must not raise."""
        program = TGProgram()
        program.append(TGInstruction(TGOp.IDLE, imm=2 ** 40))
        program.append(TGInstruction(TGOp.HALT))
        decoded = decode_program(program)
        assert decoded.imm[0] == 2 ** 40
        assert decoded == _lower_python(program)

    def test_cond_funcs_mirror_cond_evaluate(self):
        for cond in Cond:
            func = COND_FUNCS[int(cond)]
            for a, b in ((4, 5), (5, 5), (6, 5)):
                assert func(a, b) is cond.evaluate(a, b)


class TestFastInterpreterGating:
    def test_fast_backend_uses_fast_interpreter(self):
        from repro.core.tg_master import TGMaster
        from repro.kernel import Simulator

        program = TGProgram(instructions=[TGInstruction(TGOp.HALT)])
        for backend, runner in (("classic", "_run"), ("fast", "_run_fast")):
            sim = Simulator(backend=backend)
            master = TGMaster(sim, "tg0", program)
            master.start()
            spawned = [p.generator.gi_code.co_name
                       for p in sim.live_processes]
            assert runner in spawned, (backend, spawned)

    def test_cloning_mode_matches_across_backends(self):
        """CLONING replays recorded waits verbatim through the reference
        interpreter even on the fast backend — results must agree."""
        from repro.apps import cacheloop
        from repro.core import ReplayMode
        from repro.harness import tg_flow

        classic = tg_flow(cacheloop, 2, mode=ReplayMode.CLONING,
                          app_params={"iters": 60}, backend="classic")
        fast = tg_flow(cacheloop, 2, mode=ReplayMode.CLONING,
                       app_params={"iters": 60}, backend="fast")
        assert classic.tg_cycles == fast.tg_cycles
        assert classic.tg_events == fast.tg_events
