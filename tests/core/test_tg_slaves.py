"""Slave TG entities: shared-memory TG and dummy-response TG."""


from repro.core import TGDummySlave, TGSharedMemorySlave
from repro.kernel import Simulator
from repro.memory import SlaveTimings
from repro.ocp import OCPCommand, Request


def drive(sim, gen):
    process = sim.spawn(gen)
    sim.run()
    return process.result


class TestSharedMemoryTG:
    def make(self):
        sim = Simulator()
        slave = TGSharedMemorySlave(sim, "tg_mem", 0x1000, 0x100,
                                    SlaveTimings(2, 1))
        return sim, slave

    def test_behaves_like_memory(self):
        sim, slave = self.make()

        def script():
            yield from slave.access(Request(OCPCommand.WRITE, 0x1010, 55))
            resp = yield from slave.access(Request(OCPCommand.READ, 0x1010))
            return resp.word

        assert drive(sim, script()) == 55

    def test_counts_transactions(self):
        sim, slave = self.make()

        def script():
            yield from slave.access(Request(OCPCommand.WRITE, 0x1000, 1))
            yield from slave.access(Request(OCPCommand.READ, 0x1000))

        drive(sim, script())
        assert slave.transactions_served == 2

    def test_data_affects_masters(self):
        """The defining property: values read back are real, because 'the
        values read by the masters may affect the sequence of
        transactions'."""
        sim, slave = self.make()

        def script():
            yield from slave.access(Request(OCPCommand.WRITE, 0x1020, 0xAB))
            first = yield from slave.access(Request(OCPCommand.READ, 0x1020))
            yield from slave.access(Request(OCPCommand.WRITE, 0x1020, 0xCD))
            second = yield from slave.access(Request(OCPCommand.READ, 0x1020))
            return first.word, second.word

        assert drive(sim, script()) == (0xAB, 0xCD)


class TestDummySlaveTG:
    def make(self, dummy_value=0xDEAD_BEEF):
        sim = Simulator()
        slave = TGDummySlave(sim, "tg_dummy", 0x2000, 0x100,
                             SlaveTimings(3, 1), dummy_value=dummy_value)
        return sim, slave

    def test_reads_return_dummy(self):
        sim, slave = self.make(dummy_value=0x42)

        def script():
            resp = yield from slave.access(Request(OCPCommand.READ, 0x2000))
            return resp.word

        assert drive(sim, script()) == 0x42

    def test_writes_discarded(self):
        sim, slave = self.make(dummy_value=0x42)

        def script():
            yield from slave.access(Request(OCPCommand.WRITE, 0x2004, 77))
            resp = yield from slave.access(Request(OCPCommand.READ, 0x2004))
            return resp.word

        assert drive(sim, script()) == 0x42

    def test_burst_read_all_dummy(self):
        sim, slave = self.make(dummy_value=9)

        def script():
            resp = yield from slave.access(
                Request(OCPCommand.BURST_READ, 0x2000, burst_len=4))
            return resp.words

        assert drive(sim, script()) == [9, 9, 9, 9]

    def test_takes_access_time(self):
        sim, slave = self.make()

        def script():
            yield from slave.access(Request(OCPCommand.READ, 0x2000))

        drive(sim, script())
        assert sim.now == 3


class TestAllTgPlatform:
    def test_master_tg_with_dummy_private_memory(self):
        """A test-chip-style configuration: master TG + dummy slave only
        (the TG never interprets non-polling read data, so dummy values
        are sufficient — exactly the paper's argument)."""
        from repro.core import TGInstruction, TGMaster, TGOp, TGProgram
        from repro.core.isa import ADDRREG
        from repro.interconnect import AddressMap, AmbaAhbBus
        from repro.ocp import OCPSlavePort

        sim = Simulator()
        amap = AddressMap()
        dummy = TGDummySlave(sim, "dummy", 0x0, 0x10000, SlaveTimings(1, 1))
        amap.add(dummy.base, dummy.size_bytes,
                 OCPSlavePort(sim, "dummy.port", dummy), "dummy")
        bus = AmbaAhbBus(sim, address_map=amap)
        program = TGProgram(core_id=0, instructions=[
            TGInstruction(TGOp.SET_REGISTER, a=ADDRREG, imm=0x40),
            TGInstruction(TGOp.BURST_READ, a=ADDRREG, b=4),
            TGInstruction(TGOp.IDLE, imm=10),
            TGInstruction(TGOp.READ, a=ADDRREG),
            TGInstruction(TGOp.HALT),
        ])
        tg = TGMaster(sim, "tg0", program)
        tg.port.bind(bus, 0)
        tg.start()
        sim.run()
        assert tg.finished
        assert dummy.transactions_served == 2
