"""TG ISA tests: encoding round-trips and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.isa import (
    Cond,
    TGError,
    TGInstruction,
    TGOp,
    decode_instruction,
    encode_instruction,
    reg_index,
    reg_name,
)


class TestRegisters:
    def test_special_names(self):
        assert reg_name(0) == "rdreg"
        assert reg_name(1) == "tempreg"
        assert reg_name(2) == "addr"
        assert reg_name(3) == "data"
        assert reg_name(7) == "r7"

    def test_reg_index_inverse(self):
        for index in range(16):
            assert reg_index(reg_name(index)) == index

    def test_bad_name(self):
        with pytest.raises(TGError):
            reg_index("bogus")
        with pytest.raises(TGError):
            reg_index("r16")


class TestCond:
    def test_symbols_roundtrip(self):
        for cond in Cond:
            assert Cond.from_symbol(cond.symbol) == cond

    def test_unknown_symbol(self):
        with pytest.raises(TGError):
            Cond.from_symbol("<>")

    @pytest.mark.parametrize("cond,a,b,expected", [
        (Cond.EQ, 5, 5, True), (Cond.EQ, 5, 6, False),
        (Cond.NE, 5, 6, True), (Cond.NE, 5, 5, False),
        (Cond.LT, 4, 5, True), (Cond.LT, 5, 5, False),
        (Cond.GE, 5, 5, True), (Cond.GE, 4, 5, False),
        (Cond.GT, 6, 5, True), (Cond.GT, 5, 5, False),
        (Cond.LE, 5, 5, True), (Cond.LE, 6, 5, False),
    ])
    def test_evaluate(self, cond, a, b, expected):
        assert cond.evaluate(a, b) is expected


class TestValidation:
    def test_read_register_range(self):
        with pytest.raises(TGError):
            TGInstruction(TGOp.READ, a=16).validate(1, 0)

    def test_burst_count_range(self):
        with pytest.raises(TGError):
            TGInstruction(TGOp.BURST_READ, a=2, b=1).validate(1, 0)
        with pytest.raises(TGError):
            TGInstruction(TGOp.BURST_READ, a=2, b=256).validate(1, 0)

    def test_burst_write_pool_bounds(self):
        instr = TGInstruction(TGOp.BURST_WRITE, a=2, b=4, imm=2)
        with pytest.raises(TGError):
            instr.validate(1, 4)  # needs pool[2:6], pool has 4
        instr.validate(1, 6)

    def test_branch_target_bounds(self):
        with pytest.raises(TGError):
            TGInstruction(TGOp.JUMP, imm=5).validate(5, 0)
        TGInstruction(TGOp.JUMP, imm=4).validate(5, 0)

    def test_if_condition_code(self):
        with pytest.raises(TGError):
            TGInstruction(TGOp.IF, a=0, b=1, cond=99, imm=0).validate(1, 0)

    def test_set_register_value_32bit(self):
        with pytest.raises(TGError):
            TGInstruction(TGOp.SET_REGISTER, a=0,
                          imm=1 << 32).validate(1, 0)


def _tg_instruction_strategy():
    regs = st.integers(0, 15)
    imm32 = st.integers(0, 0xFFFF_FFFF)
    count = st.integers(2, 255)
    return st.one_of(
        st.builds(lambda a: TGInstruction(TGOp.READ, a=a), regs),
        st.builds(lambda a, b: TGInstruction(TGOp.WRITE, a=a, b=b),
                  regs, regs),
        st.builds(lambda a, c: TGInstruction(TGOp.BURST_READ, a=a, b=c),
                  regs, count),
        st.builds(lambda a, c, i: TGInstruction(TGOp.BURST_WRITE, a=a, b=c,
                                                imm=i),
                  regs, count, imm32),
        st.builds(lambda a, i: TGInstruction(TGOp.SET_REGISTER, a=a, imm=i),
                  regs, imm32),
        st.builds(lambda i: TGInstruction(TGOp.IDLE, imm=i), imm32),
        st.builds(lambda a, b, c, i: TGInstruction(TGOp.IF, a=a, b=b,
                                                   cond=int(c), imm=i),
                  regs, regs, st.sampled_from(list(Cond)), imm32),
        st.builds(lambda i: TGInstruction(TGOp.JUMP, imm=i), imm32),
        st.just(TGInstruction(TGOp.HALT)),
    )


class TestEncoding:
    @given(_tg_instruction_strategy())
    def test_roundtrip(self, instr):
        word0, word1 = encode_instruction(instr)
        assert decode_instruction(word0, word1) == instr

    def test_field_overflow_rejected(self):
        with pytest.raises(TGError):
            encode_instruction(TGInstruction(TGOp.READ, a=256))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(TGError):
            decode_instruction(0xFF << 24, 0)

    def test_repr_smoke(self):
        assert "Read(addr)" == repr(TGInstruction(TGOp.READ, a=2))
        assert "Halt" == repr(TGInstruction(TGOp.HALT))
        assert "!=" in repr(TGInstruction(TGOp.IF, a=0, b=1,
                                          cond=int(Cond.NE), imm=3))
