"""Out-of-order transaction extension (paper §7 future work):
non-blocking reads (ReadNB) and the Fence barrier."""

import pytest

from repro.core import (
    TGError,
    TGInstruction,
    TGMaster,
    TGOp,
    TGProgram,
    parse_tgp,
)
from repro.core.assembler import assemble_binary, disassemble_binary
from repro.core.isa import ADDRREG
from repro.platform import MparmPlatform, PlatformConfig, SHARED_BASE


def I(op, **kwargs):  # noqa: E743
    return TGInstruction(op, **kwargs)


def build(instructions, n_masters=1, interconnect="xpipes"):
    platform = MparmPlatform(PlatformConfig(n_masters=n_masters,
                                            interconnect=interconnect))
    program = TGProgram(core_id=0, instructions=list(instructions))
    tg = TGMaster(platform.sim, "tg0", program)
    platform.add_master(tg)
    return platform, tg


def reads_program(op, count=6):
    """count reads to distinct shared addresses, then halt."""
    instrs = []
    for index in range(count):
        instrs.append(I(TGOp.SET_REGISTER, a=ADDRREG,
                        imm=SHARED_BASE + index * 4))
        instrs.append(I(op, a=ADDRREG))
    if op == TGOp.READ_NB:
        instrs.append(I(TGOp.FENCE))
    instrs.append(I(TGOp.HALT))
    return instrs


class TestFormats:
    def program(self):
        return TGProgram(core_id=0, instructions=[
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=0x100),
            I(TGOp.READ_NB, a=ADDRREG),
            I(TGOp.FENCE),
            I(TGOp.HALT),
        ])

    def test_tgp_text_roundtrip(self):
        program = self.program()
        text = program.to_tgp()
        assert "ReadNB(addr)" in text
        assert "Fence" in text
        assert parse_tgp(text) == program

    def test_binary_roundtrip(self):
        program = self.program()
        assert disassemble_binary(assemble_binary(program)) == program

    def test_validation_checks_register(self):
        with pytest.raises(TGError):
            I(TGOp.READ_NB, a=99).validate(1, 0)


class TestSemantics:
    def test_nb_reads_overlap_on_noc(self):
        """Pipelined reads finish faster than blocking ones on the NoC."""
        blocking_platform, blocking = build(reads_program(TGOp.READ))
        blocking_platform.run()
        nb_platform, nonblocking = build(reads_program(TGOp.READ_NB))
        nb_platform.run()
        assert nonblocking.completion_time < blocking.completion_time
        assert nonblocking.max_outstanding_observed >= 2

    def test_fence_waits_for_all(self):
        """After the fence, every issued read has retired."""
        platform, tg = build(reads_program(TGOp.READ_NB))
        platform.run()
        assert tg.finished
        assert all(not p.alive for p in tg._outstanding) or \
            tg._outstanding == []
        # all reads reached the fabric
        assert platform.fabric.stats.read_transactions == 6

    def test_halt_is_implicit_fence(self):
        """A program ending without Fence still drains its reads."""
        instrs = [
            I(TGOp.SET_REGISTER, a=ADDRREG, imm=SHARED_BASE),
            I(TGOp.READ_NB, a=ADDRREG),
            I(TGOp.READ_NB, a=ADDRREG),
            I(TGOp.HALT),
        ]
        platform, tg = build(instrs)
        platform.run()
        assert platform.fabric.stats.read_transactions == 2
        # completion waited for both responses (well past 2 issue cycles)
        assert tg.completion_time > 4

    def test_works_on_ahb_via_queued_requests(self):
        """The entry-based arbiter serves overlapping requests in order."""
        platform, tg = build(reads_program(TGOp.READ_NB),
                             interconnect="ahb")
        platform.run()
        assert tg.finished
        assert platform.fabric.stats.read_transactions == 6

    def test_ordering_still_in_flight_counted(self):
        platform, tg = build(reads_program(TGOp.READ_NB, count=4))
        platform.run()
        assert tg.instructions_executed == 4 * 2 + 2  # setregs+reads+fence+halt
