#!/usr/bin/env python
"""Deterministic mutation fuzzer for the artifact pipeline.

Feeds mutated ``.trc`` / ``.tgp`` / ``.bin`` bytes to the hardened
loaders and asserts the failure contract of docs/ARTIFACTS.md: every
input either parses cleanly or raises a typed
:class:`~repro.artifacts.errors.ArtifactError` — never an ``IndexError``,
``struct.error``, ``UnicodeDecodeError`` or any other escape.  A mutant
whose integrity header still verifies must additionally reserialize to
the identical payload (no silent wrong parse).

The mutation stream is a pure function of ``(seed, kind)``, so a CI
failure reproduces locally with the same seed::

    python tests/artifacts/fuzz.py --seed 20260805 --mutants 300
    python tests/artifacts/fuzz.py --kind bin --report fuzz.json

Also collected by pytest (``-m artifacts``).
"""

import argparse
import json
import random
import sys
import warnings
from pathlib import Path

try:
    import repro  # noqa: F401 - probe only; script mode fixes sys.path
except ImportError:  # pragma: no cover - script invocation from repo root
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.artifacts import ArtifactError, load_artifact_bytes, reserialize

DEFAULT_SEED = 20260805
DEFAULT_MUTANTS = 300
KINDS = ("trc", "tgp", "bin", "snap")


# -------------------------------------------------------------- baselines

def _baseline_trc_text() -> str:
    lines = ["; repro .trc v1", "; master 1"]
    time = 50
    for index in range(24):
        addr = 0x1A000000 + 4 * index
        if index % 3 == 2:
            lines.append(f"REQ WR 0x{addr:08x} 0x{index:08x} @{time}ns")
            lines.append(f"ACC WR 0x{addr:08x} @{time + 5}ns")
            time += 12
        else:
            lines.append(f"REQ RD 0x{addr:08x} @{time}ns")
            lines.append(f"ACC RD 0x{addr:08x} @{time + 5}ns")
            lines.append(f"RESP RD 0x{addr:08x} 0x{0x1000 + index:08x} "
                         f"@{time + 15}ns")
            time += 20
    lines.append(f"REQ BRD 0x00001000 len=4 @{time}ns")
    lines.append(f"ACC BRD 0x00001000 @{time + 5}ns")
    lines.append("RESP BRD 0x00001000 "
                 "0x00000001,0x00000002,0x00000003,0x00000004 "
                 f"@{time + 25}ns")
    return "\n".join(lines) + "\n"


def _baseline_snap() -> bytes:
    """A real mid-run checkpoint of a tiny all-TG platform."""
    from repro.apps.synthetic import TrafficSpec, generate
    from repro.artifacts.snap import dump_snap
    from repro.harness import build_tg_platform, platform_recipe

    spec = TrafficSpec.from_dict({"n_cores": 2, "transactions": 8,
                                  "pattern": "uniform", "load": 0.5,
                                  "seed": 7})
    programs, _ = generate(spec)
    platform = build_tg_platform(programs, 2, "ahb")
    platform.run(until=40)
    payload = platform.snapshot(platform_recipe(programs, 2, "ahb"))
    return dump_snap(payload).encode("utf-8")


def make_baseline(kind: str) -> bytes:
    """A small but representative well-formed artifact of ``kind``."""
    from repro.artifacts import dump_bin, dump_tgp, dump_trc
    from repro.trace import Translator, TranslatorOptions
    from repro.trace.trc_format import parse_trc

    if kind == "snap":
        return _baseline_snap()
    master_id, events = parse_trc(_baseline_trc_text())
    if kind == "trc":
        return dump_trc(events, master_id=master_id).encode("utf-8")
    program = Translator(TranslatorOptions()).translate_events(
        events, master_id)
    if kind == "tgp":
        return dump_tgp(program).encode("utf-8")
    return dump_bin(program)


# --------------------------------------------------------------- mutators

def mutate_truncate(rng: random.Random, data: bytes) -> bytes:
    if len(data) < 2:
        return data
    return data[:rng.randrange(1, len(data))]


def mutate_bit_flip(rng: random.Random, data: bytes) -> bytes:
    blob = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        index = rng.randrange(len(blob))
        blob[index] ^= 1 << rng.randrange(8)
    return bytes(blob)


def mutate_line_shuffle(rng: random.Random, data: bytes) -> bytes:
    lines = data.split(b"\n")
    if len(lines) < 3:
        return data
    rng.shuffle(lines)
    return b"\n".join(lines)


def mutate_field_mangle(rng: random.Random, data: bytes) -> bytes:
    tokens = data.split(b" ")
    if len(tokens) < 2:
        return mutate_bit_flip(rng, data)
    index = rng.randrange(len(tokens))
    junk = bytes(rng.choice(b"0123456789abcdefxXZ@,;ns=")
                 for _ in range(rng.randint(1, 12)))
    tokens[index] = junk
    return b" ".join(tokens)


def mutate_header_forge(rng: random.Random, data: bytes) -> bytes:
    """Rewrite bytes inside the header region only."""
    if data[:4] == b"RTGA":
        region = 32
    else:
        newline = data.find(b"\n")
        region = newline if newline > 0 else min(len(data), 40)
    blob = bytearray(data)
    for _ in range(rng.randint(1, 4)):
        index = rng.randrange(min(region, len(blob)))
        blob[index] = rng.randrange(256)
    return bytes(blob)


MUTATORS = {
    "truncate": mutate_truncate,
    "bit_flip": mutate_bit_flip,
    "line_shuffle": mutate_line_shuffle,
    "field_mangle": mutate_field_mangle,
    "header_forge": mutate_header_forge,
}


# ---------------------------------------------------------------- harness

def fuzz_format(kind: str, seed: int = DEFAULT_SEED,
                mutants: int = DEFAULT_MUTANTS) -> dict:
    """Fuzz one format; returns the outcome tally plus any escapes."""
    rng = random.Random(f"{seed}:{kind}")
    base = make_baseline(kind)
    names = sorted(MUTATORS)
    outcomes = {"clean": 0}
    escapes = []
    roundtrip_failures = []
    for index in range(mutants):
        name = names[index % len(names)]
        mutant = MUTATORS[name](rng, base)
        # .trc alternates strict/permissive; permissive must uphold the
        # same contract (it only downgrades record-level defects)
        strict = kind != "trc" or index % 2 == 0
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                artifact = load_artifact_bytes(kind, mutant, strict=strict)
        except ArtifactError as error:
            label = type(error).__name__
            outcomes[label] = outcomes.get(label, 0) + 1
        except Exception as error:  # the contract violation we hunt
            escapes.append({
                "index": index,
                "mutator": name,
                "strict": strict,
                "error": f"{type(error).__name__}: {error}",
                "mutant_prefix": repr(mutant[:80]),
            })
        else:
            outcomes["clean"] += 1
            if artifact.header is not None and not artifact.report:
                if reserialize(artifact) != artifact.payload:
                    roundtrip_failures.append({
                        "index": index,
                        "mutator": name,
                        "detail": "verified header but payload does not "
                                  "round-trip identically",
                    })
    return {
        "kind": kind,
        "seed": seed,
        "mutants": mutants,
        "outcomes": outcomes,
        "escapes": escapes,
        "roundtrip_failures": roundtrip_failures,
    }


def _summary_line(result: dict) -> str:
    tally = ", ".join(f"{name}={count}" for name, count
                      in sorted(result["outcomes"].items()))
    return (f"[fuzz:{result['kind']}] seed={result['seed']} "
            f"{result['mutants']} mutants: {tally}; "
            f"{len(result['escapes'])} escape(s), "
            f"{len(result['roundtrip_failures'])} round-trip failure(s)")


# ----------------------------------------------------------------- pytest

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.artifacts

    @pytest.mark.parametrize("kind", KINDS)
    def test_fuzz_contract(kind):
        result = fuzz_format(kind)
        assert result["escapes"] == [], _summary_line(result)
        assert result["roundtrip_failures"] == [], _summary_line(result)
        assert sum(result["outcomes"].values()) == DEFAULT_MUTANTS
        # the mutators must actually exercise the typed-error paths
        assert sum(count for name, count in result["outcomes"].items()
                   if name != "clean") > 0


# ----------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Deterministic mutation fuzzer for the artifact "
                    "loaders (see docs/ARTIFACTS.md).")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--mutants", type=int, default=DEFAULT_MUTANTS,
                        help=f"mutants per format "
                             f"(default {DEFAULT_MUTANTS})")
    parser.add_argument("--kind", action="append", choices=KINDS,
                        help="format(s) to fuzz (default: all)")
    parser.add_argument("--report", metavar="FILE",
                        help="write the full JSON report")
    args = parser.parse_args(argv)

    results = [fuzz_format(kind, seed=args.seed, mutants=args.mutants)
               for kind in (args.kind or KINDS)]
    for result in results:
        print(_summary_line(result))
    failed = any(result["escapes"] or result["roundtrip_failures"]
                 for result in results)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump({"ok": not failed, "results": results}, handle,
                      indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    for result in results:
        for escape in result["escapes"]:
            print(f"ESCAPE {result['kind']}#{escape['index']} "
                  f"({escape['mutator']}): {escape['error']}",
                  file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
